#![warn(missing_docs)]

//! # Engine telemetry: query profiles, a metrics registry, a slow-query log
//!
//! Dependency-free observability primitives for the SGB engine, mirroring
//! the layering of the query governor: the *handle* ([`Telemetry`]) is
//! threaded through the hot paths, and when no profile sink is installed
//! every instrumentation site is a branch on a `None` — no clock reads, no
//! atomic traffic, nothing measurable (the `telemetry` bench bin gates
//! this at < 2% on the SGB-Any grid row, exactly like the governor gate).
//!
//! Three pieces:
//!
//! * [`Telemetry`] / [`QueryProfile`] — a per-query profile: monotonic
//!   phase timers ([`Phase`]: validate, cache probe, index build,
//!   join/scan, DSU merge, aggregation) plus engine counters
//!   ([`Counter`]: candidate pairs visited, cells probed, governor polls,
//!   cache hits/misses, threads used, groups/outliers produced, deltas
//!   applied/rejected). The state is shared (`Arc` + relaxed atomics) so
//!   the relational executor can keep recording into the same profile
//!   after the core operator returns.
//! * [`MetricsRegistry`] — session-scoped monotone counters and
//!   fixed-bucket latency histograms with a hand-rolled Prometheus
//!   text-exposition renderer ([`MetricsRegistry::render`]).
//! * [`SlowQueryLog`] — a bounded ring buffer of statements that overran
//!   the session's `SLOW_QUERY_MS` threshold.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Phases and counters
// ---------------------------------------------------------------------------

/// One monotonic phase timer of a [`QueryProfile`]. The phases follow the
/// source paper's own cost decomposition (index build vs. join vs.
/// grouping), extended with the engine's cache and aggregation stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Coordinate validation (the finite check over every point).
    Validate = 0,
    /// Shared-work cache probe (fingerprint, result lookup).
    CacheProbe = 1,
    /// Spatial-index construction (ε-grid, R-tree, center index).
    IndexBuild = 2,
    /// The candidate join / scan (ε-join, all-pairs scan, center assign).
    Join = 3,
    /// Union-Find merging and group materialisation.
    Merge = 4,
    /// Relational aggregation over the grouping's member lists.
    Aggregate = 5,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 6] = [
        Phase::Validate,
        Phase::CacheProbe,
        Phase::IndexBuild,
        Phase::Join,
        Phase::Merge,
        Phase::Aggregate,
    ];

    /// Stable snake_case name (used in renderings and metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Validate => "validate",
            Phase::CacheProbe => "cache_probe",
            Phase::IndexBuild => "index_build",
            Phase::Join => "join",
            Phase::Merge => "merge",
            Phase::Aggregate => "aggregate",
        }
    }
}

/// One monotone engine counter of a [`QueryProfile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Candidate pairs visited by the join (before exact verification).
    CandidatePairs = 0,
    /// Grid cells (or index nodes) probed.
    CellsProbed = 1,
    /// Cooperative governor polls (deadline / cancellation checks).
    GovernorPolls = 2,
    /// Shared-work cache hits (indexes + whole results).
    CacheHits = 3,
    /// Shared-work cache misses.
    CacheMisses = 4,
    /// Worker threads the execution actually used (high-water mark).
    ThreadsUsed = 5,
    /// Answer groups produced.
    Groups = 6,
    /// Outliers produced (radius-bounded AROUND).
    Outliers = 7,
    /// Incremental maintenance deltas applied.
    DeltasApplied = 8,
    /// Incremental maintenance deltas rejected (fault or governor).
    DeltasRejected = 9,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 10] = [
        Counter::CandidatePairs,
        Counter::CellsProbed,
        Counter::GovernorPolls,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::ThreadsUsed,
        Counter::Groups,
        Counter::Outliers,
        Counter::DeltasApplied,
        Counter::DeltasRejected,
    ];

    /// Stable snake_case name (used in renderings and metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            Counter::CandidatePairs => "candidate_pairs",
            Counter::CellsProbed => "cells_probed",
            Counter::GovernorPolls => "governor_polls",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::ThreadsUsed => "threads_used",
            Counter::Groups => "groups",
            Counter::Outliers => "outliers",
            Counter::DeltasApplied => "deltas_applied",
            Counter::DeltasRejected => "deltas_rejected",
        }
    }
}

const PHASES: usize = Phase::ALL.len();
const COUNTERS: usize = Counter::ALL.len();

/// Shared accumulation state behind an enabled [`Telemetry`] handle.
///
/// All updates are relaxed atomics: the profile is a monotone statistical
/// record, not a synchronisation structure, so parallel shards may add
/// into it concurrently without ordering constraints.
#[derive(Debug, Default)]
pub struct ProfileState {
    phases: [AtomicU64; PHASES],
    counters: [AtomicU64; COUNTERS],
}

impl ProfileState {
    fn snapshot(&self) -> QueryProfile {
        let mut p = QueryProfile::default();
        for (i, slot) in self.phases.iter().enumerate() {
            p.phase_nanos[i] = slot.load(Ordering::Relaxed);
        }
        for (i, slot) in self.counters.iter().enumerate() {
            p.counters[i] = slot.load(Ordering::Relaxed);
        }
        p
    }
}

// ---------------------------------------------------------------------------
// The telemetry handle
// ---------------------------------------------------------------------------

/// The per-query telemetry handle threaded through the engine.
///
/// [`Telemetry::off`] (the default) carries no state: every recording
/// method is an inlined branch on `None` and no clock is ever read — the
/// zero-cost invariant the `telemetry` bench gate pins. [`Telemetry::new`]
/// installs a shared [`ProfileState`] sink; clones share the sink, so the
/// same profile accumulates across layers (core operator, relational
/// executor) and across worker threads.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    state: Option<Arc<ProfileState>>,
}

/// Two handles are equal when their enabled-ness matches. (The handle
/// rides inside query builders that derive `PartialEq`; the accumulated
/// numbers are a statistical record, not part of query identity.)
impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        self.is_enabled() == other.is_enabled()
    }
}

impl Eq for Telemetry {}

impl Telemetry {
    /// A disabled handle: every recording call is a no-op branch.
    #[inline]
    #[must_use]
    pub fn off() -> Self {
        Self { state: None }
    }

    /// An enabled handle with a fresh profile sink.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Some(Arc::new(ProfileState::default())),
        }
    }

    /// Whether a profile sink is installed.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Adds `n` to a counter. No-op when disabled.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(state) = &self.state {
            state.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises a counter to at least `n` (high-water mark, e.g. threads
    /// used). No-op when disabled.
    #[inline]
    pub fn record_max(&self, counter: Counter, n: u64) {
        if let Some(state) = &self.state {
            state.counters[counter as usize].fetch_max(n, Ordering::Relaxed);
        }
    }

    /// Starts a phase timer; the elapsed time is added to the phase when
    /// the returned guard drops. When disabled the guard is inert and the
    /// clock is never read.
    #[inline]
    pub fn phase(&self, phase: Phase) -> PhaseTimer<'_> {
        PhaseTimer {
            target: self
                .state
                .as_deref()
                .map(|state| (state, phase, Instant::now())),
        }
    }

    /// Adds raw nanoseconds to a phase (for callers that already hold an
    /// elapsed duration). No-op when disabled.
    #[inline]
    pub fn record_phase_nanos(&self, phase: Phase, nanos: u64) {
        if let Some(state) = &self.state {
            state.phases[phase as usize].fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// An owned snapshot of the accumulated profile; `None` when disabled.
    pub fn profile(&self) -> Option<QueryProfile> {
        self.state.as_deref().map(ProfileState::snapshot)
    }
}

/// RAII phase timer returned by [`Telemetry::phase`]; records on drop.
#[derive(Debug)]
pub struct PhaseTimer<'a> {
    target: Option<(&'a ProfileState, Phase, Instant)>,
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if let Some((state, phase, start)) = self.target.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            state.phases[phase as usize].fetch_add(nanos, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// QueryProfile snapshots
// ---------------------------------------------------------------------------

/// An owned snapshot of one query's phase timings and engine counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryProfile {
    phase_nanos: [u64; PHASES],
    counters: [u64; COUNTERS],
}

impl QueryProfile {
    /// Nanoseconds accumulated in a phase.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase as usize]
    }

    /// Duration accumulated in a phase.
    pub fn phase(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.phase_nanos(phase))
    }

    /// Value of a counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Sum of every phase timer, in nanoseconds.
    pub fn total_phase_nanos(&self) -> u64 {
        self.phase_nanos.iter().copied().sum()
    }

    /// Whether nothing was recorded at all.
    pub fn is_empty(&self) -> bool {
        self.total_phase_nanos() == 0 && self.counters.iter().all(|&c| c == 0)
    }

    /// One-line summary of the non-zero phases, e.g.
    /// `validate 0.1ms, join 2.3ms, merge 0.4ms`.
    pub fn phase_summary(&self) -> String {
        let parts: Vec<String> = Phase::ALL
            .iter()
            .filter(|&&p| self.phase_nanos(p) > 0)
            .map(|&p| format!("{} {:.3}ms", p.name(), self.phase_nanos(p) as f64 / 1e6))
            .collect();
        parts.join(", ")
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Histogram bucket upper bounds, in milliseconds, for every latency
/// histogram in the registry (fixed buckets keep the registry
/// allocation-free per observation and the exposition stable).
pub const LATENCY_BUCKETS_MS: [f64; 10] =
    [0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0];

const BUCKETS: usize = LATENCY_BUCKETS_MS.len() + 1; // + the +Inf bucket

#[derive(Clone, Debug, Default)]
struct Histogram {
    buckets: [u64; BUCKETS],
    sum_ms: f64,
    count: u64,
}

/// `(metric name, rendered label pairs)` — the label string is already in
/// exposition form (`operator="any",algorithm="Grid"`), empty when the
/// metric has no labels. BTreeMap keeps the rendering deterministic.
type MetricKey = (String, String);

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

/// Session-scoped metrics: monotone counters keyed by
/// operator/algorithm/error-class plus fixed-bucket latency histograms,
/// rendered as Prometheus text exposition ([`MetricsRegistry::render`]).
///
/// ```
/// use sgb_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// registry.inc("sgb_statements_total", &[("outcome", "ok")], 1);
/// registry.observe_ms("sgb_statement_ms", &[], 0.42);
/// let text = registry.render();
/// assert!(text.contains("# TYPE sgb_statements_total counter"));
/// assert!(text.contains("sgb_statements_total{outcome=\"ok\"} 1"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

/// Renders label pairs in exposition form, escaping `\`, `"` and newlines
/// in values per the Prometheus text format.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Poison-tolerant lock: the registry holds plain data, so a panic
    /// mid-update can at worst lose that update, never corrupt the map.
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `by` to the counter `name{labels}` (creating it at zero).
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        let key = (name.to_owned(), render_labels(labels));
        let mut inner = self.lock();
        *inner.counters.entry(key).or_insert(0) += by;
    }

    /// Raises the counter `name{labels}` to `value` if it is below it —
    /// for counters mirrored from an external monotone source (the
    /// shared-work `CacheStats` fold-in), so the registry view can never
    /// run ahead of or disagree with the source.
    pub fn record_absolute(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let key = (name.to_owned(), render_labels(labels));
        let mut inner = self.lock();
        let slot = inner.counters.entry(key).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Records one observation, in milliseconds, into the fixed-bucket
    /// latency histogram `name{labels}`.
    pub fn observe_ms(&self, name: &str, labels: &[(&str, &str)], ms: f64) {
        let ms = if ms.is_finite() && ms >= 0.0 { ms } else { 0.0 };
        let key = (name.to_owned(), render_labels(labels));
        let mut inner = self.lock();
        let h = inner.histograms.entry(key).or_default();
        let slot = LATENCY_BUCKETS_MS
            .iter()
            .position(|&le| ms <= le)
            .unwrap_or(BUCKETS - 1);
        h.buckets[slot] += 1;
        h.sum_ms += ms;
        h.count += 1;
    }

    /// Current value of the counter `name{labels}` (0 when never touched).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = (name.to_owned(), render_labels(labels));
        self.lock().counters.get(&key).copied().unwrap_or(0)
    }

    /// Sum of every counter series of `name` across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.lock()
            .counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Number of observations recorded into the histogram series of
    /// `name` across label sets.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.lock()
            .histograms
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, h)| h.count)
            .sum()
    }

    /// Renders the registry as Prometheus text exposition (version 0.0.4):
    /// one `# TYPE` line per metric family, then its series in
    /// deterministic (sorted) order. Histograms render the cumulative
    /// `_bucket` series with `le` labels, plus `_sum` and `_count`.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let mut last_family = "";
        for ((name, labels), value) in &inner.counters {
            if name != last_family {
                out.push_str(&format!("# TYPE {name} counter\n"));
                last_family = name;
            }
            if labels.is_empty() {
                out.push_str(&format!("{name} {value}\n"));
            } else {
                out.push_str(&format!("{name}{{{labels}}} {value}\n"));
            }
        }
        for ((name, labels), h) in &inner.histograms {
            if name != last_family {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                last_family = name;
            }
            let prefix = |extra: &str| -> String {
                if labels.is_empty() && extra.is_empty() {
                    String::new()
                } else if labels.is_empty() {
                    format!("{{{extra}}}")
                } else if extra.is_empty() {
                    format!("{{{labels}}}")
                } else {
                    format!("{{{labels},{extra}}}")
                }
            };
            let mut cumulative = 0u64;
            for (i, &le) in LATENCY_BUCKETS_MS.iter().enumerate() {
                cumulative += h.buckets[i];
                out.push_str(&format!(
                    "{name}_bucket{} {cumulative}\n",
                    prefix(&format!("le=\"{le}\""))
                ));
            }
            cumulative += h.buckets[BUCKETS - 1];
            out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                prefix("le=\"+Inf\"")
            ));
            out.push_str(&format!("{name}_sum{} {}\n", prefix(""), h.sum_ms));
            out.push_str(&format!("{name}_count{} {}\n", prefix(""), h.count));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// Default capacity of the slow-query ring buffer.
pub const SLOW_LOG_CAPACITY: usize = 64;

/// One entry of the slow-query log.
#[derive(Clone, Debug, PartialEq)]
pub struct SlowQuery {
    /// The statement text as submitted.
    pub statement: String,
    /// Wall-clock execution time, milliseconds.
    pub millis: f64,
    /// Outcome note (`ok`, or the error class of a failed statement).
    pub outcome: String,
}

/// A bounded ring buffer of statements that overran the session's
/// slow-query threshold; the oldest entry is dropped once the buffer is
/// full.
#[derive(Debug)]
pub struct SlowQueryLog {
    inner: Mutex<VecDeque<SlowQuery>>,
    capacity: usize,
}

impl Default for SlowQueryLog {
    fn default() -> Self {
        Self::with_capacity(SLOW_LOG_CAPACITY)
    }
}

impl SlowQueryLog {
    /// A log holding at most `capacity` entries (at least 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<SlowQuery>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn record(&self, entry: SlowQuery) {
        let mut ring = self.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// The logged entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.lock().iter().cloned().collect()
    }

    /// Number of logged entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_reads_no_clock() {
        let tel = Telemetry::off();
        assert!(!tel.is_enabled());
        tel.add(Counter::CandidatePairs, 10);
        tel.record_max(Counter::ThreadsUsed, 4);
        tel.record_phase_nanos(Phase::Join, 1_000);
        {
            let _guard = tel.phase(Phase::Validate);
        }
        assert_eq!(tel.profile(), None);
    }

    #[test]
    fn enabled_handle_accumulates_across_clones() {
        let tel = Telemetry::new();
        let clone = tel.clone();
        tel.add(Counter::CandidatePairs, 3);
        clone.add(Counter::CandidatePairs, 4);
        tel.record_max(Counter::ThreadsUsed, 2);
        clone.record_max(Counter::ThreadsUsed, 1); // high-water mark stays 2
        tel.record_phase_nanos(Phase::Join, 500);
        let profile = tel.profile().unwrap();
        assert_eq!(profile.counter(Counter::CandidatePairs), 7);
        assert_eq!(profile.counter(Counter::ThreadsUsed), 2);
        assert_eq!(profile.phase_nanos(Phase::Join), 500);
        assert!(!profile.is_empty());
        assert!(profile.phase_summary().contains("join"));
    }

    #[test]
    fn phase_timer_records_on_drop() {
        let tel = Telemetry::new();
        {
            let _guard = tel.phase(Phase::Validate);
            std::thread::sleep(Duration::from_millis(1));
        }
        let profile = tel.profile().unwrap();
        assert!(profile.phase_nanos(Phase::Validate) > 0);
        assert_eq!(profile.phase_nanos(Phase::Join), 0);
    }

    #[test]
    fn handles_compare_by_enabledness_only() {
        assert_eq!(Telemetry::off(), Telemetry::off());
        assert_eq!(Telemetry::new(), Telemetry::new());
        assert_ne!(Telemetry::new(), Telemetry::off());
        let a = Telemetry::new();
        a.add(Counter::Groups, 5);
        assert_eq!(a, Telemetry::new());
    }

    #[test]
    fn registry_counters_and_render() {
        let r = MetricsRegistry::new();
        r.inc("sgb_queries_total", &[("operator", "any")], 2);
        r.inc("sgb_queries_total", &[("operator", "all")], 1);
        r.inc("plain_total", &[], 7);
        assert_eq!(
            r.counter_value("sgb_queries_total", &[("operator", "any")]),
            2
        );
        assert_eq!(r.counter_total("sgb_queries_total"), 3);
        let text = r.render();
        assert!(text.contains("# TYPE sgb_queries_total counter"));
        assert!(text.contains("sgb_queries_total{operator=\"any\"} 2"));
        assert!(text.contains("plain_total 7"));
        // One TYPE line per family, not per series.
        assert_eq!(text.matches("# TYPE sgb_queries_total").count(), 1);
    }

    #[test]
    fn registry_absolute_counters_are_monotone() {
        let r = MetricsRegistry::new();
        r.record_absolute("sgb_cache_result_hits_total", &[], 5);
        r.record_absolute("sgb_cache_result_hits_total", &[], 3); // never regresses
        assert_eq!(r.counter_value("sgb_cache_result_hits_total", &[]), 5);
        r.record_absolute("sgb_cache_result_hits_total", &[], 9);
        assert_eq!(r.counter_value("sgb_cache_result_hits_total", &[]), 9);
    }

    #[test]
    fn registry_histograms_render_cumulative_buckets() {
        let r = MetricsRegistry::new();
        r.observe_ms("sgb_statement_ms", &[], 0.07); // 0.1 bucket
        r.observe_ms("sgb_statement_ms", &[], 2.0); // 5.0 bucket
        r.observe_ms("sgb_statement_ms", &[], 5_000.0); // +Inf bucket
        assert_eq!(r.histogram_count("sgb_statement_ms"), 3);
        let text = r.render();
        assert!(text.contains("# TYPE sgb_statement_ms histogram"));
        assert!(text.contains("sgb_statement_ms_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("sgb_statement_ms_bucket{le=\"1000\"} 2"));
        assert!(text.contains("sgb_statement_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("sgb_statement_ms_count 3"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.inc("m_total", &[("msg", "say \"hi\"\\now\n")], 1);
        let text = r.render();
        assert!(text.contains(r#"m_total{msg="say \"hi\"\\now\n"} 1"#));
    }

    #[test]
    fn slow_log_is_a_bounded_ring() {
        let log = SlowQueryLog::with_capacity(2);
        assert!(log.is_empty());
        for i in 0..3 {
            log.record(SlowQuery {
                statement: format!("q{i}"),
                millis: i as f64,
                outcome: "ok".into(),
            });
        }
        let entries = log.entries();
        assert_eq!(log.len(), 2);
        assert_eq!(entries[0].statement, "q1"); // q0 evicted
        assert_eq!(entries[1].statement, "q2");
    }
}
