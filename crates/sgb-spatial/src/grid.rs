//! Uniform epsilon-grid spatial partitioning (hashed cells).
//!
//! The similarity operators are all ε-bounded: every probe asks "which
//! stored elements can be within ε of this point?". A uniform grid with
//! cell side = ε answers that with a constant number of hash lookups — the
//! point's own cell plus its immediate neighbours (the classic
//! neighbours-of-27-cells scan used to run groupwise ε-joins inside a
//! DBMS) — with no tree descent, no node splits, and no rebalancing.
//!
//! Cells are keyed by `floor(coord / cell)` per dimension and stored in a
//! hash map, so only occupied cells cost memory and the domain never needs
//! bounds. Two query shapes are provided:
//!
//! * [`Grid::for_each_within`] — the ε-probe. It visits a guaranteed
//!   **superset** of the entries satisfying the canonical predicate
//!   [`Metric::within`]; callers verify each hit exactly like
//!   `VerifyPoints` of the paper's Procedure 8. The cell window is padded
//!   by one whole cell per side, which makes the superset guarantee robust
//!   against floating-point rounding of the `coord / cell` quantisation
//!   (no epsilon-juggling proofs required — the pad absorbs a full cell of
//!   error where the actual error is a few ulps).
//! * [`Grid::nearest_one`] — expanding-ring nearest-neighbour search for
//!   SGB-Around. Distances are the canonical [`Metric::distance`] values
//!   and exact ties resolve by ascending payload, bit-compatible with
//!   [`crate::RTree::nearest_one_with`].

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::ControlFlow;

use sgb_geom::{Metric, Point};

/// Cell coordinates: `floor(coord / cell)` per dimension.
pub type CellKey<const D: usize> = [i64; D];

/// A fast multiplicative hasher for cell keys. Cell keys are small arrays
/// of small integers probed several times per input point, so the default
/// SipHash is measurable overhead; this folds 8-byte chunks with the
/// standard Fibonacci multiplier + xor-rotate mix (keys are derived from
/// data coordinates, not attacker-controlled, so DoS hardening is not a
/// concern here).
#[derive(Default)]
pub struct CellHasher {
    state: u64,
}

impl Hasher for CellHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            let v = u64::from_le_bytes(buf);
            self.state = (self.state ^ v)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(23);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low bits (the map's bucket index) depend
        // on every input chunk.
        let mut h = self.state;
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 32;
        h
    }
}

type CellMap<const D: usize, T> =
    HashMap<CellKey<D>, Vec<(Point<D>, T)>, BuildHasherDefault<CellHasher>>;

/// Execution tally of one bulk ε-join, filled in by the `*_tallied` join
/// variants: how many candidate comparisons the join performed (pairs
/// whose cells were close enough to be examined, before the exact
/// [`Metric::within`] check) and how many cell jobs it visited (one per
/// occupied owned cell for the intra-cell scan, plus one per admitted
/// unordered cell pair). Purely observational — the tally never changes
/// which pairs a join visits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinTally {
    /// Candidate pair comparisons performed.
    pub candidate_pairs: u64,
    /// Cell jobs (intra-cell scans + cross-cell pairings) visited.
    pub cells_visited: u64,
}

impl JoinTally {
    /// Folds another tally into this one (for merging per-shard tallies).
    pub fn merge(&mut self, other: &JoinTally) {
        self.candidate_pairs += other.candidate_pairs;
        self.cells_visited += other.cells_visited;
    }
}

/// A uniform hashed grid over `D`-dimensional points with payloads `T`.
///
/// ```
/// use sgb_spatial::Grid;
/// use sgb_geom::{Metric, Point};
///
/// let mut grid: Grid<2, usize> = Grid::new(1.0);
/// grid.insert(Point::new([0.2, 0.2]), 0);
/// grid.insert(Point::new([0.9, 0.2]), 1);
/// grid.insert(Point::new([5.0, 5.0]), 2);
/// let mut hits = Vec::new();
/// grid.for_each_within(&Point::new([0.0, 0.0]), 1.0, Metric::L2, |p, &id| {
///     if Metric::L2.within(p, &Point::new([0.0, 0.0]), 1.0) {
///         hits.push(id); // caller-side verification, as the SGB operators do
///     }
/// });
/// hits.sort();
/// assert_eq!(hits, vec![0, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct Grid<const D: usize, T> {
    cell: f64,
    cells: CellMap<D, T>,
    /// Occupied-cell bounding box (valid only when `len > 0`); bounds the
    /// expanding-ring search of [`nearest_one`](Self::nearest_one).
    lo: CellKey<D>,
    hi: CellKey<D>,
    len: usize,
}

impl<const D: usize, T> Grid<D, T> {
    /// An empty grid with the given cell side length.
    pub fn new(cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell side must be finite and positive"
        );
        Self {
            cell,
            cells: CellMap::default(),
            lo: [0; D],
            hi: [0; D],
            len: 0,
        }
    }

    /// The cell side to use for an ε-probe grid: ε itself, or `1.0` when
    /// ε = 0 (any positive side works there — points at distance zero are
    /// coordinate-identical and always share a cell).
    #[inline]
    pub fn side_for_eps(eps: f64) -> f64 {
        if eps > 0.0 {
            eps
        } else {
            1.0
        }
    }

    /// A cell side sized for nearest-neighbour probes over `points`
    /// (SGB-Around centers): the population bounding box divided so the
    /// grid holds roughly one point per cell — `extent / ceil(n^(1/D))` —
    /// falling back to `1.0` for degenerate (single-point / zero-extent)
    /// populations.
    pub fn side_for_points(points: &[Point<D>]) -> f64 {
        let mut extent = 0.0f64;
        if let Some(first) = points.first() {
            let mut lo = *first;
            let mut hi = *first;
            for p in points {
                lo = lo.min(p);
                hi = hi.max(p);
            }
            for d in 0..D {
                extent = extent.max(hi.coord(d) - lo.coord(d));
            }
        }
        let cells_per_dim = (points.len().max(1) as f64).powf(1.0 / D as f64).ceil();
        let side = extent / cells_per_dim.max(1.0);
        if side.is_finite() && side > 0.0 {
            side
        } else {
            1.0
        }
    }

    /// Builds a grid from a complete point set.
    pub fn from_points(cell: f64, points: impl IntoIterator<Item = (Point<D>, T)>) -> Self {
        let mut grid = Self::new(cell);
        for (p, item) in points {
            grid.insert(p, item);
        }
        grid
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the grid stores nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured cell side length.
    #[inline]
    pub fn cell_side(&self) -> f64 {
        self.cell
    }

    /// Number of occupied cells.
    #[inline]
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// The cell containing `p`. The `f64 → i64` cast saturates at the
    /// integer extremes, so even absurd coordinate/cell ratios stay safe —
    /// far-apart points may then share a (saturated) cell, which only
    /// costs filter precision, never correctness (callers verify hits).
    #[inline]
    pub fn cell_of(&self, p: &Point<D>) -> CellKey<D> {
        let mut key = [0i64; D];
        for (d, k) in key.iter_mut().enumerate() {
            *k = (p.coord(d) / self.cell).floor() as i64;
        }
        key
    }

    /// Inserts an entry.
    pub fn insert(&mut self, p: Point<D>, item: T) {
        debug_assert!(p.is_finite(), "grid points must be finite");
        let key = self.cell_of(&p);
        if self.len == 0 {
            self.lo = key;
            self.hi = key;
        } else {
            for (d, &k) in key.iter().enumerate() {
                self.lo[d] = self.lo[d].min(k);
                self.hi[d] = self.hi[d].max(k);
            }
        }
        self.cells.entry(key).or_default().push((p, item));
        self.len += 1;
    }

    /// Removes one entry matching `p` and `item` exactly (coordinate
    /// equality per dimension, payload equality); returns `true` when an
    /// entry was removed. When the entry was the last of its cell the cell itself is
    /// dropped, so a long insert/delete workload never accumulates empty
    /// cells (an empty cell would still widen `occupied_cells` and the
    /// occupied-scan fallback of the probes, never correctness).
    ///
    /// The occupied bounding box is **not** shrunk: recomputing it exactly
    /// would cost a scan of the occupied set, and a conservative
    /// (too-large) box only admits extra candidate cells — every probe
    /// verifies hits against the canonical predicate anyway.
    pub fn remove(&mut self, p: &Point<D>, item: &T) -> bool
    where
        T: PartialEq,
    {
        let key = self.cell_of(p);
        let Some(entries) = self.cells.get_mut(&key) else {
            return false;
        };
        let Some(idx) = entries
            .iter()
            .position(|(q, t)| q.coords() == p.coords() && t == item)
        else {
            return false;
        };
        entries.swap_remove(idx);
        if entries.is_empty() {
            self.cells.remove(&key);
        }
        self.len -= 1;
        true
    }

    /// The ε-probe: invokes `visit` for every entry stored in a cell that
    /// could hold a point within `eps` of `center` — a guaranteed superset
    /// of the canonical predicate [`Metric::within`] under every metric
    /// (the visited window covers `[center − eps, center + eps]` per
    /// dimension, padded by one full cell against quantisation rounding).
    /// Callers verify each hit with `Metric::within`, exactly like
    /// `VerifyPoints` of Procedure 8; the probe itself allocates nothing.
    pub fn for_each_within<F: FnMut(&Point<D>, &T)>(
        &self,
        center: &Point<D>,
        eps: f64,
        _metric: Metric,
        mut visit: F,
    ) {
        if self.len == 0 {
            return;
        }
        let mut lo = [0i64; D];
        let mut hi = [0i64; D];
        let mut volume = 1usize;
        for d in 0..D {
            let c = center.coord(d);
            // One-cell pad on each side: the float window arithmetic and
            // the floor quantisation err by ulps, the pad absorbs a whole
            // cell.
            let l = (((c - eps) / self.cell).floor() as i64)
                .saturating_sub(1)
                .max(self.lo[d]);
            let h = (((c + eps) / self.cell).floor() as i64)
                .saturating_add(1)
                .min(self.hi[d]);
            if l > h {
                return;
            }
            lo[d] = l;
            hi[d] = h;
            // Width in i128: with saturated keys the span can exceed i64.
            let width = (h as i128 - l as i128 + 1).min(usize::MAX as i128) as usize;
            volume = volume.saturating_mul(width);
        }
        if volume <= self.cells.len() {
            for_each_key_in_box(&lo, &hi, |key| {
                if let Some(entries) = self.cells.get(key) {
                    for (p, item) in entries {
                        visit(p, item);
                    }
                }
            });
        } else {
            // The window covers more cells than are occupied: walking the
            // occupied set is cheaper than probing every window cell.
            for (key, entries) in &self.cells {
                if (0..D).all(|d| lo[d] <= key[d] && key[d] <= hi[d]) {
                    for (p, item) in entries {
                        visit(p, item);
                    }
                }
            }
        }
    }

    /// Bulk ε-join: invokes `visit` once for every unordered pair of
    /// entries whose cells lie within the padded ε-window of each other —
    /// a guaranteed superset of the pairs satisfying the canonical
    /// predicate; callers verify each pair with [`Metric::within`].
    ///
    /// This is the batch counterpart of per-point
    /// [`for_each_within`](Self::for_each_within) probes: instead of
    /// `len × window` hash lookups it pays a constant number of lookups
    /// per **occupied cell** (each unordered cell pair is joined exactly
    /// once via lexicographically-positive offsets), which is what makes
    /// the one-shot SGB-Any ε-join fast. Offsets whose minimum inter-cell
    /// distance under `metric` exceeds the (slack-padded) threshold are
    /// pruned up front — e.g. the corner cells of the window under `L2`.
    ///
    /// `eps` may exceed the grid's cell side: the join widens its probe
    /// window to `ceil(eps / cell) + 1` neighbour rings, visiting every
    /// close pair regardless of the ratio. This is the contract the
    /// shared-work cache's ε-superset reuse relies on — one grid built
    /// for a small ε serves any larger ε′ query bit-identically (the
    /// widened window only grows the candidate set; the exact `within`
    /// check is unchanged).
    pub fn for_each_close_pair<F: FnMut(&Point<D>, &T, &Point<D>, &T)>(
        &self,
        eps: f64,
        metric: Metric,
        visit: F,
    ) {
        self.for_each_close_pair_sharded(eps, metric, 0, 1, visit);
    }

    /// Fallible bulk ε-join: like
    /// [`for_each_close_pair`](Self::for_each_close_pair), but `visit` may
    /// return an error, which stops the join promptly (within the current
    /// cell's hit scan) and is propagated to the caller. With an
    /// always-`Ok` visitor the visited pair sequence is identical to the
    /// infallible join — the infallible methods are thin wrappers over
    /// this one, so there is only one join driver to trust.
    ///
    /// This is the governance hook: the similarity operators pass a
    /// visitor that ticks a deadline/cancellation pacer and returns the
    /// governor's error to abandon the join mid-flight.
    ///
    /// # Errors
    ///
    /// Returns the first error `visit` reports.
    pub fn try_for_each_close_pair<E, F>(&self, eps: f64, metric: Metric, visit: F) -> Result<(), E>
    where
        F: FnMut(&Point<D>, &T, &Point<D>, &T) -> Result<(), E>,
    {
        self.try_for_each_close_pair_sharded(eps, metric, 0, 1, visit)
    }

    /// One shard of the bulk ε-join: like
    /// [`for_each_close_pair`](Self::for_each_close_pair), but only for
    /// candidate pairs **owned** by shard `shard` of a `shards`-way
    /// partition of the cell space (ownership by hashed cell key: an
    /// intra-cell pair belongs to its cell, a cross-cell pair to the cell
    /// from which the offset to the other is lexicographically positive).
    ///
    /// Every candidate pair is owned by exactly one shard, so the union of
    /// the pair sets over shards `0..shards` equals the unsharded join's
    /// pair set with each pair surfacing exactly once — which is what lets
    /// parallel callers run one shard per worker over a shared `&Grid` and
    /// merge the results without deduplication.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or `shard >= shards`.
    pub fn for_each_close_pair_sharded<F: FnMut(&Point<D>, &T, &Point<D>, &T)>(
        &self,
        eps: f64,
        metric: Metric,
        shard: usize,
        shards: usize,
        mut visit: F,
    ) {
        self.try_for_each_close_pair_sharded::<std::convert::Infallible, _>(
            eps,
            metric,
            shard,
            shards,
            |pa, ta, pb, tb| {
                visit(pa, ta, pb, tb);
                Ok(())
            },
        )
        .unwrap_or(());
    }

    /// One shard of the fallible bulk ε-join: the sharded counterpart of
    /// [`try_for_each_close_pair`](Self::try_for_each_close_pair), with
    /// the ownership partition of
    /// [`for_each_close_pair_sharded`](Self::for_each_close_pair_sharded).
    ///
    /// # Errors
    ///
    /// Returns the first error `visit` reports.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or `shard >= shards`.
    pub fn try_for_each_close_pair_sharded<E, F>(
        &self,
        eps: f64,
        metric: Metric,
        shard: usize,
        shards: usize,
        mut visit: F,
    ) -> Result<(), E>
    where
        F: FnMut(&Point<D>, &T, &Point<D>, &T) -> Result<(), E>,
    {
        let flow = self.for_each_cell_join(eps, metric, shard, shards, |_, entries, other| {
            match other {
                None => {
                    for i in 0..entries.len() {
                        let (pa, ta) = &entries[i];
                        for (pb, tb) in &entries[i + 1..] {
                            if let Err(e) = visit(pa, ta, pb, tb) {
                                return ControlFlow::Break(e);
                            }
                        }
                    }
                }
                Some((_, others)) => {
                    for (pa, ta) in entries {
                        for (pb, tb) in others {
                            if let Err(e) = visit(pa, ta, pb, tb) {
                                return ControlFlow::Break(e);
                            }
                        }
                    }
                }
            }
            ControlFlow::Continue(())
        });
        match flow {
            ControlFlow::Continue(()) => Ok(()),
            ControlFlow::Break(e) => Err(e),
        }
    }

    /// Exact bulk ε-join: invokes `visit` once for every unordered pair of
    /// entries satisfying the canonical predicate [`Metric::within`] —
    /// the verified counterpart of the candidate-pair join
    /// [`for_each_close_pair`](Self::for_each_close_pair), with the
    /// verification run inside the grid over a structure-of-arrays mirror
    /// of the cell contents, so the per-pair distance loops read
    /// contiguous coordinate columns instead of strided `(Point, T)`
    /// tuples. The accepted pair set is bit-identical to filtering the
    /// candidate join through `Metric::within`.
    pub fn for_each_pair_within<F: FnMut(&T, &T)>(&self, eps: f64, metric: Metric, visit: F) {
        self.for_each_pair_within_sharded(eps, metric, 0, 1, visit);
    }

    /// Fallible exact bulk ε-join: like
    /// [`for_each_pair_within`](Self::for_each_pair_within), but `visit`
    /// may return an error, which stops the join promptly and is
    /// propagated. With an always-`Ok` visitor the accepted pair sequence
    /// is identical to the infallible join.
    ///
    /// # Errors
    ///
    /// Returns the first error `visit` reports.
    pub fn try_for_each_pair_within<E, F>(
        &self,
        eps: f64,
        metric: Metric,
        visit: F,
    ) -> Result<(), E>
    where
        F: FnMut(&T, &T) -> Result<(), E>,
    {
        self.try_for_each_pair_within_sharded(eps, metric, 0, 1, visit)
    }

    /// Exact bulk ε-join with the governance check hoisted *out* of the
    /// hot loop: `visit` stays infallible — the per-pair codegen is the
    /// same as [`for_each_pair_within`](Self::for_each_pair_within) — and
    /// `pace` runs at cell-row boundaries instead, at least once every
    /// `interval` candidate comparisons. The first error `pace` reports
    /// stops the join promptly (one cell row is the response-time
    /// granularity: bounded by the occupancy of a single cell). With a
    /// never-`Err` `pace` the accepted pair sequence is identical to the
    /// infallible join.
    ///
    /// # Errors
    ///
    /// Returns the first error `pace` reports.
    pub fn try_for_each_pair_within_paced<E, F, P>(
        &self,
        eps: f64,
        metric: Metric,
        visit: F,
        interval: usize,
        pace: P,
    ) -> Result<(), E>
    where
        F: FnMut(&T, &T),
        P: FnMut() -> Result<(), E>,
    {
        self.try_for_each_pair_within_sharded_paced(eps, metric, 0, 1, visit, interval, pace)
    }

    /// One shard of the paced exact bulk ε-join: the sharded counterpart
    /// of
    /// [`try_for_each_pair_within_paced`](Self::try_for_each_pair_within_paced),
    /// with the ownership partition of
    /// [`for_each_pair_within_sharded`](Self::for_each_pair_within_sharded).
    ///
    /// # Errors
    ///
    /// Returns the first error `pace` reports.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or `shard >= shards`.
    #[allow(clippy::too_many_arguments)]
    pub fn try_for_each_pair_within_sharded_paced<E, F, P>(
        &self,
        eps: f64,
        metric: Metric,
        shard: usize,
        shards: usize,
        visit: F,
        interval: usize,
        pace: P,
    ) -> Result<(), E>
    where
        F: FnMut(&T, &T),
        P: FnMut() -> Result<(), E>,
    {
        self.try_for_each_pair_within_sharded_paced_tallied(
            eps, metric, shard, shards, visit, interval, pace, None,
        )
    }

    /// One shard of the paced exact bulk ε-join with an optional execution
    /// [`JoinTally`]: identical pair sequence and pacing behaviour to
    /// [`try_for_each_pair_within_sharded_paced`](Self::try_for_each_pair_within_sharded_paced),
    /// but when `tally` is `Some` the join additionally counts candidate
    /// comparisons and visited cell jobs into it. Passing `None` costs
    /// nothing: the counting branches constant-fold away, which is the
    /// telemetry subsystem's zero-cost-when-disabled contract at this
    /// layer. On an `Err` return the tally holds the partial counts
    /// accumulated before the join stopped.
    ///
    /// # Errors
    ///
    /// Returns the first error `pace` reports.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or `shard >= shards`.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn try_for_each_pair_within_sharded_paced_tallied<E, F, P>(
        &self,
        eps: f64,
        metric: Metric,
        shard: usize,
        shards: usize,
        mut visit: F,
        interval: usize,
        mut pace: P,
        mut tally: Option<&mut JoinTally>,
    ) -> Result<(), E>
    where
        F: FnMut(&T, &T),
        P: FnMut() -> Result<(), E>,
    {
        if self.len == 0 {
            assert!(shards >= 1 && shard < shards, "shard out of range");
            return Ok(());
        }
        let soa = SoaCells::build(self);
        let interval = interval.max(1);
        // Candidate comparisons until the next `pace` call; a row longer
        // than the remaining budget saturates it to zero.
        let mut budget = interval;
        let flow = self.for_each_cell_join(eps, metric, shard, shards, |key, entries, other| {
            if let Some(t) = tally.as_deref_mut() {
                t.cells_visited += 1;
            }
            match other {
                None => {
                    let slot = soa.slots[key];
                    for (a, (pa, ta)) in entries.iter().enumerate() {
                        soa.for_each_hit(slot, a + 1, pa, eps, metric, |b| {
                            visit(ta, &entries[b].1);
                        });
                        let row = entries.len() - a - 1;
                        if let Some(t) = tally.as_deref_mut() {
                            t.candidate_pairs += row as u64;
                        }
                        budget = budget.saturating_sub(row);
                        if budget == 0 {
                            budget = interval;
                            if let Err(e) = pace() {
                                return ControlFlow::Break(e);
                            }
                        }
                    }
                }
                Some((nkey, others)) => {
                    let nslot = soa.slots[nkey];
                    for (pa, ta) in entries {
                        soa.for_each_hit(nslot, 0, pa, eps, metric, |b| {
                            visit(ta, &others[b].1);
                        });
                        if let Some(t) = tally.as_deref_mut() {
                            t.candidate_pairs += others.len() as u64;
                        }
                        budget = budget.saturating_sub(others.len());
                        if budget == 0 {
                            budget = interval;
                            if let Err(e) = pace() {
                                return ControlFlow::Break(e);
                            }
                        }
                    }
                }
            }
            ControlFlow::Continue(())
        });
        match flow {
            ControlFlow::Continue(()) => Ok(()),
            ControlFlow::Break(e) => Err(e),
        }
    }

    /// One shard of the exact bulk ε-join: the pairs of
    /// [`for_each_pair_within`](Self::for_each_pair_within) owned by shard
    /// `shard` of a `shards`-way partition of the cell space (same
    /// hashed-cell-key ownership as
    /// [`for_each_close_pair_sharded`](Self::for_each_close_pair_sharded):
    /// each within-ε pair surfaces in exactly one shard).
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or `shard >= shards`.
    pub fn for_each_pair_within_sharded<F: FnMut(&T, &T)>(
        &self,
        eps: f64,
        metric: Metric,
        shard: usize,
        shards: usize,
        mut visit: F,
    ) {
        self.try_for_each_pair_within_sharded::<std::convert::Infallible, _>(
            eps,
            metric,
            shard,
            shards,
            |ta, tb| {
                visit(ta, tb);
                Ok(())
            },
        )
        .unwrap_or(());
    }

    /// One shard of the fallible exact bulk ε-join: the sharded
    /// counterpart of
    /// [`try_for_each_pair_within`](Self::try_for_each_pair_within), with
    /// the ownership partition of
    /// [`for_each_pair_within_sharded`](Self::for_each_pair_within_sharded).
    ///
    /// # Errors
    ///
    /// Returns the first error `visit` reports.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or `shard >= shards`.
    pub fn try_for_each_pair_within_sharded<E, F>(
        &self,
        eps: f64,
        metric: Metric,
        shard: usize,
        shards: usize,
        mut visit: F,
    ) -> Result<(), E>
    where
        F: FnMut(&T, &T) -> Result<(), E>,
    {
        if self.len == 0 {
            assert!(shards >= 1 && shard < shards, "shard out of range");
            return Ok(());
        }
        let soa = SoaCells::build(self);
        // `for_each_hit` is infallible, so the error is parked in a slot
        // and the join breaks at the next cell-pair boundary — prompt
        // enough for governance (one cell's hit scan is bounded work).
        let mut err: Option<E> = None;
        let flow = self.for_each_cell_join(eps, metric, shard, shards, |key, entries, other| {
            match other {
                None => {
                    let slot = soa.slots[key];
                    for (a, (pa, ta)) in entries.iter().enumerate() {
                        soa.for_each_hit(slot, a + 1, pa, eps, metric, |b| {
                            if err.is_none() {
                                err = visit(ta, &entries[b].1).err();
                            }
                        });
                        if let Some(e) = err.take() {
                            return ControlFlow::Break(e);
                        }
                    }
                }
                Some((nkey, others)) => {
                    let nslot = soa.slots[nkey];
                    for (pa, ta) in entries {
                        soa.for_each_hit(nslot, 0, pa, eps, metric, |b| {
                            if err.is_none() {
                                err = visit(ta, &others[b].1).err();
                            }
                        });
                        if let Some(e) = err.take() {
                            return ControlFlow::Break(e);
                        }
                    }
                }
            }
            ControlFlow::Continue(())
        });
        match flow {
            ControlFlow::Continue(()) => Ok(()),
            ControlFlow::Break(e) => Err(e),
        }
    }

    /// Shared driver of the bulk ε-joins: invokes `cell_job` once with
    /// `(key, entries, None)` for the intra-cell join of every owned cell
    /// and once with `(key, entries, Some((nkey, nentries)))` for every
    /// unordered pair of occupied cells that could hold a within-ε pair,
    /// attributed to the cell from which the offset is lexicographically
    /// positive. `shard`/`shards` restrict ownership to one shard of the
    /// hashed-cell-key partition (`0`/`1` ⇒ everything). `cell_job` may
    /// break with a value, which stops the enumeration immediately and is
    /// returned (the hook behind the fallible `try_*` joins).
    fn for_each_cell_join<'g, B, F>(
        &'g self,
        eps: f64,
        metric: Metric,
        shard: usize,
        shards: usize,
        mut cell_job: F,
    ) -> ControlFlow<B>
    where
        F: FnMut(
            &'g CellKey<D>,
            &'g [(Point<D>, T)],
            Option<(&CellKey<D>, &'g [(Point<D>, T)])>,
        ) -> ControlFlow<B>,
    {
        assert!(shards >= 1 && shard < shards, "shard out of range");
        if self.len == 0 {
            return ControlFlow::Continue(());
        }
        let owned = |key: &CellKey<D>| shards == 1 || shard_of(key, shards) == shard;
        let relaxed = eps * (1.0 + 4.0 * f64::EPSILON);
        // One pad cell against quantisation rounding, as in the per-point
        // probe; the prune below gets an absolute slack of `cell · 1e-5`,
        // far above the coordinate rounding of any `|coord|/cell` ratio
        // this engine targets (< 2³²) and far below the one-cell
        // granularity the prune operates at.
        let reach = (((eps / self.cell).ceil() as i64).max(0)).saturating_add(1);
        // Clamp the probe window to the occupied span per dimension: an
        // offset larger than the span can never connect two occupied
        // cells, and without the clamp a degenerate ε ≫ cell ratio makes
        // the window enumeration explode (or saturate `reach` at
        // `i64::MAX`) even over a handful of points.
        let mut lo_off = [0i64; D];
        let mut hi_off = [0i64; D];
        let mut window = 1.0f64;
        for d in 0..D {
            let span = (self.hi[d] as i128 - self.lo[d] as i128).min(i64::MAX as i128) as i64;
            let r = reach.min(span);
            lo_off[d] = -r;
            hi_off[d] = r;
            window *= 2.0 * r as f64 + 1.0;
        }
        let slack = self.cell * 1e-5;
        let min_dist_of = |gaps: &[f64; D]| match metric {
            Metric::L1 => gaps.iter().sum(),
            Metric::L2 => gaps.iter().map(|g| g * g).sum::<f64>().sqrt(),
            Metric::LInf => gaps.iter().fold(0.0f64, |a, &g| a.max(g)),
        };
        if window <= self.cells.len() as f64 {
            // Window enumeration: one offset list, probed from every owned
            // cell (the regular regime — for the ε-sized cells the
            // operators use, the window is 5^D).
            let mut offsets: Vec<CellKey<D>> = Vec::new();
            for_each_key_in_box(&lo_off, &hi_off, |off| {
                // Keep each unordered cell pair once: strictly positive in
                // the first non-zero component.
                let lex_positive = off
                    .iter()
                    .find(|&&c| c != 0)
                    .is_some_and(|&first| first > 0);
                if !lex_positive {
                    return;
                }
                // Minimum possible distance between points of two cells
                // separated by `off`: per-dimension gaps of (|off| − 1)
                // cells.
                let mut gaps = [0.0; D];
                for d in 0..D {
                    gaps[d] = (off[d].abs() - 1).max(0) as f64 * self.cell;
                }
                if min_dist_of(&gaps) <= relaxed + slack {
                    offsets.push(*off);
                }
            });
            for (key, entries) in &self.cells {
                if !owned(key) {
                    continue;
                }
                cell_job(key, entries, None)?;
                'offsets: for off in &offsets {
                    let mut neighbour = *key;
                    for d in 0..D {
                        let Some(nk) = key[d].checked_add(off[d]) else {
                            continue 'offsets;
                        };
                        if nk < self.lo[d] || nk > self.hi[d] {
                            continue 'offsets;
                        }
                        neighbour[d] = nk;
                    }
                    if let Some(other) = self.cells.get(&neighbour) {
                        cell_job(key, entries, Some((&neighbour, other)))?;
                    }
                }
            }
        } else {
            // The window holds more cells than are occupied (ε ≫ cell, or
            // saturated keys): scanning all unordered occupied-cell pairs
            // is cheaper than enumerating the window, and produces the
            // same candidate set (each pair attributed to the same owner).
            let cells: Vec<(&CellKey<D>, &Vec<(Point<D>, T)>)> = self.cells.iter().collect();
            for &(key, entries) in &cells {
                if owned(key) {
                    cell_job(key, entries, None)?;
                }
            }
            for (i, &(ka, ea)) in cells.iter().enumerate() {
                for &(kb, eb) in &cells[i + 1..] {
                    // Key differences in i128: saturated keys can differ
                    // by more than i64::MAX.
                    let mut diff = [0i128; D];
                    for d in 0..D {
                        diff[d] = kb[d] as i128 - ka[d] as i128;
                    }
                    let mut gaps = [0.0; D];
                    for d in 0..D {
                        gaps[d] = (diff[d].abs() - 1).max(0) as f64 * self.cell;
                    }
                    if min_dist_of(&gaps) > relaxed + slack {
                        continue;
                    }
                    // Owner = the cell from which the offset to the other
                    // is lexicographically positive, exactly as in the
                    // window path.
                    let a_owns = diff
                        .iter()
                        .find(|&&c| c != 0)
                        .is_some_and(|&first| first > 0);
                    let (okey, oentries, nkey, nentries) = if a_owns {
                        (ka, ea, kb, eb)
                    } else {
                        (kb, eb, ka, ea)
                    };
                    if owned(okey) {
                        cell_job(okey, oentries, Some((nkey, nentries)))?;
                    }
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// The entry nearest to `q` under `metric`, as `(distance, payload)` —
    /// expanding-ring search over cells. Reported distances are the
    /// canonical [`Metric::distance`] values and exact ties resolve to the
    /// smallest payload, so the result is bit-identical to a brute-force
    /// `(distance, payload)`-lexicographic argmin (and to
    /// [`crate::RTree::nearest_one_with`] over point entries).
    pub fn nearest_one(&self, q: &Point<D>, metric: Metric) -> Option<(f64, T)>
    where
        T: Ord + Clone,
    {
        if self.len == 0 {
            return None;
        }
        let qc = self.cell_of(q);
        // Rings beyond the occupied bounding box hold nothing.
        let mut max_ring = 0i64;
        for (d, &qcd) in qc.iter().enumerate() {
            let lo_gap = (qcd as i128 - self.lo[d] as i128).unsigned_abs();
            let hi_gap = (qcd as i128 - self.hi[d] as i128).unsigned_abs();
            let gap = lo_gap.max(hi_gap).min(i64::MAX as u128) as i64;
            max_ring = max_ring.max(gap);
        }
        let mut best: Option<(f64, &T)> = None;
        for k in 0..=max_ring {
            if let Some((bd, _)) = best {
                // Any point in ring k is at least (k − 1) cells away under
                // L∞ (and δ₁ ≥ δ₂ ≥ δ∞); one extra cell of slack makes the
                // cut-off immune to the quantisation rounding of `cell_of`.
                if (k as f64 - 2.0) * self.cell > bd {
                    break;
                }
            }
            self.for_each_ring_cell(&qc, k, |entries| {
                for (p, item) in entries {
                    let d = metric.distance(q, p);
                    let better = match best {
                        None => true,
                        Some((bd, bt)) => d < bd || (d == bd && item < bt),
                    };
                    if better {
                        best = Some((d, item));
                    }
                }
            });
        }
        best.map(|(d, item)| (d, item.clone()))
    }

    /// Invokes `f` with the entry list of every occupied cell at Chebyshev
    /// cell-distance exactly `k` from `qc`, clamped to the occupied
    /// bounding box.
    ///
    /// Walks only the ring **shell**, never the cube interior: for each
    /// dimension `d` the two faces `c_d = qc_d ± k` are enumerated, with
    /// dimensions before `d` restricted to the open interval
    /// `(qc − k, qc + k)` so face intersections (edges/corners) are
    /// visited exactly once. The per-ring cost is therefore proportional
    /// to the clamped ring surface, not to the clamped bounding box — a
    /// query far from the population pays O(surface) per ring instead of
    /// re-enumerating the whole occupied box every ring.
    fn for_each_ring_cell<'a, F: FnMut(&'a [(Point<D>, T)])>(
        &'a self,
        qc: &CellKey<D>,
        k: i64,
        mut f: F,
    ) {
        if k == 0 {
            if (0..D).all(|d| self.lo[d] <= qc[d] && qc[d] <= self.hi[d]) {
                if let Some(entries) = self.cells.get(qc) {
                    f(entries);
                }
            }
            return;
        }
        let mut lo = [0i64; D];
        let mut hi = [0i64; D];
        for face_dim in 0..D {
            for face in [
                qc[face_dim].saturating_sub(k),
                qc[face_dim].saturating_add(k),
            ] {
                if face < self.lo[face_dim] || face > self.hi[face_dim] {
                    continue;
                }
                let mut empty = false;
                for d in 0..D {
                    if d == face_dim {
                        lo[d] = face;
                        hi[d] = face;
                        continue;
                    }
                    // Earlier dimensions already contributed their own
                    // ±k faces; keep them strictly inside the ring there.
                    let slack = if d < face_dim { k - 1 } else { k };
                    let l = qc[d].saturating_sub(slack).max(self.lo[d]);
                    let h = qc[d].saturating_add(slack).min(self.hi[d]);
                    if l > h {
                        empty = true;
                        break;
                    }
                    lo[d] = l;
                    hi[d] = h;
                }
                if empty {
                    continue;
                }
                for_each_key_in_box(&lo, &hi, |key| {
                    if let Some(entries) = self.cells.get(key) {
                        f(entries);
                    }
                });
            }
        }
    }
}

/// The shard owning `key` under a `shards`-way partition of the cell
/// space, derived from the same multiplicative hash the cell map uses.
fn shard_of<const D: usize>(key: &CellKey<D>, shards: usize) -> usize {
    use std::hash::Hash;
    let mut h = CellHasher::default();
    key.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Structure-of-arrays mirror of a grid's occupied cells, built once per
/// bulk ε-join: every cell's coordinates are transposed into column-major
/// blocks of one flat arena, so the per-pair distance loops of
/// [`Grid::for_each_pair_within`] stream contiguous `f64` columns instead
/// of striding over `(Point, T)` tuples — the layout batches and
/// auto-vectorizes where the tuple layout cannot.
struct SoaCells<'g, const D: usize, T> {
    /// Per occupied cell: the original entry slice and the start of its
    /// column block in `arena` (dimension `d` of a cell with `len`
    /// entries occupies `arena[start + d·len .. start + (d + 1)·len]`).
    cells: Vec<(&'g [(Point<D>, T)], usize)>,
    arena: Vec<f64>,
    /// Cell key → index into `cells`, for neighbour lookups.
    slots: HashMap<CellKey<D>, usize, BuildHasherDefault<CellHasher>>,
}

impl<'g, const D: usize, T> SoaCells<'g, D, T> {
    fn build(grid: &'g Grid<D, T>) -> Self {
        let mut cells = Vec::with_capacity(grid.cells.len());
        let mut arena = Vec::with_capacity(grid.len * D);
        let mut slots =
            HashMap::with_capacity_and_hasher(grid.cells.len(), BuildHasherDefault::default());
        for (key, entries) in &grid.cells {
            let start = arena.len();
            for d in 0..D {
                arena.extend(entries.iter().map(|(p, _)| p.coord(d)));
            }
            slots.insert(*key, cells.len());
            cells.push((entries.as_slice(), start));
        }
        SoaCells {
            cells,
            arena,
            slots,
        }
    }

    /// Invokes `hit(k)` for every entry index `k ∈ from..len` of cell
    /// `slot` whose point satisfies the canonical [`Metric::within`]
    /// predicate against `q`. The accumulation order per pair matches the
    /// point-wise distance kernels dimension for dimension, so the
    /// accepted set is bit-identical to calling `metric.within(q, p, eps)`
    /// per entry.
    #[inline]
    fn for_each_hit<F: FnMut(usize)>(
        &self,
        slot: usize,
        from: usize,
        q: &Point<D>,
        eps: f64,
        metric: Metric,
        mut hit: F,
    ) {
        let (entries, start) = self.cells[slot];
        let len = entries.len();
        let block = &self.arena[start..start + D * len];
        match metric {
            Metric::L1 => {
                for k in from..len {
                    let mut acc = 0.0;
                    for d in 0..D {
                        acc += (q.coord(d) - block[d * len + k]).abs();
                    }
                    if acc <= eps {
                        hit(k);
                    }
                }
            }
            Metric::L2 => {
                let eps2 = eps * eps;
                for k in from..len {
                    let mut acc = 0.0;
                    for d in 0..D {
                        let diff = q.coord(d) - block[d * len + k];
                        acc += diff * diff;
                    }
                    if acc <= eps2 {
                        hit(k);
                    }
                }
            }
            Metric::LInf => {
                for k in from..len {
                    let mut acc = 0.0f64;
                    for d in 0..D {
                        acc = acc.max((q.coord(d) - block[d * len + k]).abs());
                    }
                    if acc <= eps {
                        hit(k);
                    }
                }
            }
        }
    }
}

/// Odometer iteration over the integer box `lo..=hi` (all dimensions).
fn for_each_key_in_box<const D: usize, F: FnMut(&CellKey<D>)>(
    lo: &CellKey<D>,
    hi: &CellKey<D>,
    mut f: F,
) {
    debug_assert!((0..D).all(|d| lo[d] <= hi[d]));
    let mut cur = *lo;
    loop {
        f(&cur);
        let mut d = 0;
        loop {
            if d == D {
                return;
            }
            if cur[d] < hi[d] {
                cur[d] += 1;
                break;
            }
            cur[d] = lo[d];
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Point<2> {
        Point::new([x, y])
    }

    /// The 31-wide integer lattice the R-tree tests use, for side-by-side
    /// comparisons.
    fn lattice(n: usize) -> Vec<(Point<2>, usize)> {
        (0..n)
            .map(|i| (pt((i % 31) as f64, (i / 31) as f64), i))
            .collect()
    }

    #[test]
    fn empty_grid_queries() {
        let grid: Grid<2, usize> = Grid::new(1.0);
        assert!(grid.is_empty());
        let mut visited = 0;
        grid.for_each_within(&pt(0.0, 0.0), 10.0, Metric::L2, |_, _| visited += 1);
        assert_eq!(visited, 0);
        assert_eq!(grid.nearest_one(&pt(0.0, 0.0), Metric::L2), None);
    }

    #[test]
    #[should_panic(expected = "cell side")]
    fn rejects_zero_cell() {
        let _: Grid<2, usize> = Grid::new(0.0);
    }

    #[test]
    fn side_helpers() {
        assert_eq!(Grid::<2, usize>::side_for_eps(0.25), 0.25);
        assert_eq!(Grid::<2, usize>::side_for_eps(0.0), 1.0);
        // One point / empty population: positive fallback.
        assert_eq!(Grid::<2, usize>::side_for_points(&[]), 1.0);
        assert_eq!(Grid::<2, usize>::side_for_points(&[pt(3.0, 3.0)]), 1.0);
        // 100 points over a 10-wide box: ~1 point per cell.
        let pts: Vec<Point<2>> = (0..100)
            .map(|i| pt((i % 10) as f64, (i / 10) as f64))
            .collect();
        let side = Grid::<2, usize>::side_for_points(&pts);
        assert!(side > 0.0 && side <= 10.0, "{side}");
    }

    #[test]
    fn probe_superset_matches_linear_scan_per_metric() {
        let grid: Grid<2, usize> = Grid::from_points(2.5, lattice(500));
        let queries = [
            (pt(5.2, 4.7), 2.5),
            (pt(0.0, 0.0), 0.0),
            (pt(15.5, 8.0), 5.0),
            (pt(-3.0, -3.0), 1.0),
        ];
        for metric in Metric::ALL {
            for (q, eps) in queries {
                let mut hits = Vec::new();
                grid.for_each_within(&q, eps, metric, |p, &i| {
                    if metric.within(p, &q, eps) {
                        hits.push(i);
                    }
                });
                hits.sort_unstable();
                let expected: Vec<usize> = (0..500)
                    .filter(|i| metric.within(&pt((i % 31) as f64, (i / 31) as f64), &q, eps))
                    .collect();
                assert_eq!(hits, expected, "{metric} query {q:?} eps {eps}");
            }
        }
    }

    #[test]
    fn tallied_join_counts_candidates_without_changing_pairs() {
        let grid: Grid<2, usize> = Grid::from_points(1.0, lattice(400));
        let mut plain: Vec<(usize, usize)> = Vec::new();
        grid.try_for_each_pair_within_paced::<std::convert::Infallible, _, _>(
            1.0,
            Metric::L2,
            |&a, &b| plain.push((a.min(b), a.max(b))),
            64,
            || Ok(()),
        )
        .unwrap();
        let mut tallied: Vec<(usize, usize)> = Vec::new();
        let mut tally = JoinTally::default();
        grid.try_for_each_pair_within_sharded_paced_tallied::<std::convert::Infallible, _, _>(
            1.0,
            Metric::L2,
            0,
            1,
            |&a, &b| tallied.push((a.min(b), a.max(b))),
            64,
            || Ok(()),
            Some(&mut tally),
        )
        .unwrap();
        plain.sort_unstable();
        tallied.sort_unstable();
        assert_eq!(plain, tallied, "tally must not change the pair set");
        // Every accepted pair was a candidate first, and the join visited
        // at least one cell job per occupied cell.
        assert!(tally.candidate_pairs >= plain.len() as u64);
        assert!(tally.cells_visited >= 400);
        // Sharded tallies over a partition sum to the unsharded tally.
        let mut merged = JoinTally::default();
        for shard in 0..4 {
            let mut part = JoinTally::default();
            grid.try_for_each_pair_within_sharded_paced_tallied::<std::convert::Infallible, _, _>(
                1.0,
                Metric::L2,
                shard,
                4,
                |_, _| {},
                64,
                || Ok(()),
                Some(&mut part),
            )
            .unwrap();
            merged.merge(&part);
        }
        assert_eq!(merged, tally);
    }

    #[test]
    fn probe_visits_every_boundary_tie() {
        // Awkward non-representable coordinates whose distances tie with ε
        // up to rounding must still be visited (the caller's verify
        // decides) — same fixture as the R-tree superset test.
        let base = 880.0;
        let points: Vec<Point<2>> = (0..60)
            .map(|k| pt((base + k as f64 * 11.17) / 11000.0, 0.0))
            .collect();
        let eps = 0.08;
        let grid: Grid<2, usize> = Grid::from_points(
            Grid::<2, usize>::side_for_eps(eps),
            points.iter().copied().zip(0..),
        );
        for metric in Metric::ALL {
            for q in &points {
                let mut visited = vec![false; points.len()];
                grid.for_each_within(q, eps, metric, |_, &i| visited[i] = true);
                for (i, p) in points.iter().enumerate() {
                    if metric.within(p, q, eps) {
                        assert!(visited[i], "{metric}: predicate hit {i} not visited");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_eps_probe_finds_exact_duplicates() {
        let mut grid: Grid<2, char> = Grid::new(Grid::<2, char>::side_for_eps(0.0));
        grid.insert(pt(1.0, 1.0), 'a');
        grid.insert(pt(1.0, 1.0), 'b');
        grid.insert(pt(1.0, 1.0000001), 'c');
        let mut hits = Vec::new();
        grid.for_each_within(&pt(1.0, 1.0), 0.0, Metric::L2, |p, &id| {
            if Metric::L2.within(p, &pt(1.0, 1.0), 0.0) {
                hits.push(id);
            }
        });
        hits.sort_unstable();
        assert_eq!(hits, vec!['a', 'b']);
    }

    #[test]
    fn close_pair_join_covers_every_predicate_pair_exactly_once() {
        let points = lattice(400);
        for metric in Metric::ALL {
            for (cell, eps) in [(1.0, 1.0), (2.5, 2.5), (1.0, 3.0), (0.7, 0.0)] {
                let grid: Grid<2, usize> = Grid::from_points(cell, points.clone());
                // visits[(i, j)] with i < j → number of times the pair
                // surfaced (must be exactly once for candidates).
                let mut seen = std::collections::HashMap::new();
                grid.for_each_close_pair(eps, metric, |_, &a, _, &b| {
                    let key = (a.min(b), a.max(b));
                    *seen.entry(key).or_insert(0usize) += 1;
                });
                for (&(a, b), &count) in &seen {
                    assert_eq!(count, 1, "{metric} cell={cell} eps={eps} pair ({a},{b})");
                }
                for i in 0..points.len() {
                    for j in (i + 1)..points.len() {
                        if metric.within(&points[i].0, &points[j].0, eps) {
                            assert!(
                                seen.contains_key(&(i, j)),
                                "{metric} cell={cell} eps={eps}: missed pair ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }

    /// All unordered close-pair candidates of a grid, as sorted payload
    /// pairs — shared by the sharding and degenerate-geometry tests.
    fn close_pairs(grid: &Grid<2, usize>, eps: f64, metric: Metric) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        grid.for_each_close_pair(eps, metric, |_, &a, _, &b| {
            pairs.push((a.min(b), a.max(b)));
        });
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn sharded_close_pair_join_partitions_the_pair_set() {
        // Every candidate pair must surface in exactly one shard, and the
        // union over shards must equal the unsharded join — the invariant
        // the parallel SGB-Any engine is built on.
        let grid: Grid<2, usize> = Grid::from_points(1.0, lattice(300));
        for metric in Metric::ALL {
            let whole = close_pairs(&grid, 2.0, metric);
            for shards in [1usize, 2, 3, 7] {
                let mut union = Vec::new();
                for shard in 0..shards {
                    grid.for_each_close_pair_sharded(2.0, metric, shard, shards, |_, &a, _, &b| {
                        union.push((a.min(b), a.max(b)));
                    });
                }
                union.sort_unstable();
                assert_eq!(union, whole, "{metric} shards={shards}");
            }
        }
    }

    #[test]
    fn pair_within_matches_verified_close_pairs_sharded_and_not() {
        // The SoA exact join must accept exactly the candidate pairs that
        // pass the canonical predicate, sharded or not.
        let points = lattice(350);
        for metric in Metric::ALL {
            for (cell, eps) in [(1.0, 1.0), (2.5, 2.5), (1.0, 3.0), (0.7, 0.0)] {
                let grid: Grid<2, usize> = Grid::from_points(cell, points.clone());
                let expected: Vec<(usize, usize)> = {
                    let mut v = Vec::new();
                    grid.for_each_close_pair(eps, metric, |pa, &a, pb, &b| {
                        if metric.within(pa, pb, eps) {
                            v.push((a.min(b), a.max(b)));
                        }
                    });
                    v.sort_unstable();
                    v
                };
                let mut exact = Vec::new();
                grid.for_each_pair_within(eps, metric, |&a, &b| {
                    exact.push((a.min(b), a.max(b)));
                });
                exact.sort_unstable();
                assert_eq!(exact, expected, "{metric} cell={cell} eps={eps}");
                for shards in [2usize, 5] {
                    let mut union = Vec::new();
                    for shard in 0..shards {
                        grid.for_each_pair_within_sharded(eps, metric, shard, shards, |&a, &b| {
                            union.push((a.min(b), a.max(b)));
                        });
                    }
                    union.sort_unstable();
                    assert_eq!(union, expected, "{metric} cell={cell} eps={eps} x{shards}");
                }
            }
        }
    }

    #[test]
    fn try_joins_propagate_the_error_and_stop_early() {
        let grid: Grid<2, usize> = Grid::from_points(1.0, lattice(300));
        let total = close_pairs(&grid, 2.0, Metric::L2).len();
        assert!(total > 100);
        // Candidate join: error after 5 pairs stops the enumeration.
        let mut seen = 0usize;
        let got = grid.try_for_each_close_pair(2.0, Metric::L2, |_, _, _, _| {
            seen += 1;
            if seen == 5 {
                Err("stop")
            } else {
                Ok(())
            }
        });
        assert_eq!(got, Err("stop"));
        assert_eq!(seen, 5, "no pairs visited after the error");
        // Exact join: the error breaks at the next cell boundary, so the
        // overshoot is bounded by one cell's hit scan, not the whole join.
        let mut seen = 0usize;
        let got = grid.try_for_each_pair_within(2.0, Metric::L2, |_, _| {
            seen += 1;
            if seen == 5 {
                Err("stop")
            } else {
                Ok(())
            }
        });
        assert_eq!(got, Err("stop"));
        assert!(seen >= 5 && seen < total / 2, "stopped early, saw {seen}");
        // Always-Ok visitors match the infallible joins exactly.
        let mut pairs = Vec::new();
        grid.try_for_each_close_pair::<std::convert::Infallible, _>(
            2.0,
            Metric::L2,
            |_, &a, _, &b| {
                pairs.push((a.min(b), a.max(b)));
                Ok(())
            },
        )
        .unwrap_or(());
        pairs.sort_unstable();
        assert_eq!(pairs, close_pairs(&grid, 2.0, Metric::L2));
    }

    #[test]
    fn close_pair_join_eps_zero_still_pairs_exact_duplicates() {
        // Degenerate ε = 0: the probe window must not collapse below the
        // cell pair's own cell — coordinate-identical points (and only
        // those, after verification) must still surface.
        let mut grid: Grid<2, usize> = Grid::new(1.0);
        grid.insert(pt(1.0, 1.0), 0);
        grid.insert(pt(1.0, 1.0), 1);
        grid.insert(pt(2.0, 2.0), 2); // cell-adjacent, but not within 0
        for metric in Metric::ALL {
            let mut verified = Vec::new();
            grid.for_each_close_pair(0.0, metric, |pa, &a, pb, &b| {
                if metric.within(pa, pb, 0.0) {
                    verified.push((a.min(b), a.max(b)));
                }
            });
            assert_eq!(verified, vec![(0, 1)], "{metric}");
        }
    }

    #[test]
    fn close_pair_join_eps_much_larger_than_cell_is_bounded_and_complete() {
        // ε/cell = 10⁹: before the occupied-span clamp and the
        // occupied-pair fallback this enumerated a ~(2·10⁹)² offset
        // window (an effective hang); it must instead terminate promptly
        // and still find every pair.
        let points: Vec<(Point<2>, usize)> = (0..40)
            .map(|i| (pt((i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1), i))
            .collect();
        let grid: Grid<2, usize> = Grid::from_points(1e-6, points.clone());
        for metric in Metric::ALL {
            let pairs = close_pairs(&grid, 1e3, metric);
            // Every one of the 40·39/2 pairs is within ε = 1000.
            assert_eq!(pairs.len(), 40 * 39 / 2, "{metric}");
            let mut exact = Vec::new();
            grid.for_each_pair_within(1e3, metric, |&a, &b| exact.push((a.min(b), a.max(b))));
            assert_eq!(exact.len(), 40 * 39 / 2, "{metric}");
        }
    }

    #[test]
    fn close_pair_join_survives_saturated_cell_keys() {
        // Coordinates near the i64 cell-key saturation boundary: the join
        // must terminate, not overflow, and keep every verified pair.
        let mut grid: Grid<2, usize> = Grid::new(1e-3);
        grid.insert(pt(1e300, 0.0), 0);
        grid.insert(pt(1e300, 0.0), 1); // same saturated cell, distance 0
        grid.insert(pt(-1e300, 0.0), 2);
        grid.insert(pt(0.25, 0.0), 3);
        grid.insert(pt(0.2501, 0.0), 4);
        let verified: Vec<(usize, usize)> = close_pairs(&grid, 0.01, Metric::L2)
            .into_iter()
            .filter(|&(a, b)| {
                // Re-verify against the true coordinates.
                let coords = [
                    pt(1e300, 0.0),
                    pt(1e300, 0.0),
                    pt(-1e300, 0.0),
                    pt(0.25, 0.0),
                    pt(0.2501, 0.0),
                ];
                Metric::L2.within(&coords[a], &coords[b], 0.01)
            })
            .collect();
        assert_eq!(verified, vec![(0, 1), (3, 4)]);
    }

    #[test]
    fn nearest_one_matches_brute_force_argmin() {
        let grid: Grid<2, usize> = Grid::from_points(1.7, lattice(400));
        let probes = [
            pt(7.3, 4.9),
            pt(-2.0, 40.0),
            pt(10.0, 10.0),
            pt(15.0, 8.0),
            pt(200.0, -50.0), // far outside the population
        ];
        for metric in Metric::ALL {
            for q in &probes {
                let got = grid.nearest_one(q, metric).unwrap();
                let mut best = (f64::INFINITY, 0usize);
                for &(p, i) in &lattice(400) {
                    let d = metric.distance(q, &p);
                    if d < best.0 {
                        best = (d, i);
                    }
                }
                assert_eq!(got, best, "{metric} {q:?}");
            }
        }
    }

    #[test]
    fn nearest_one_breaks_exact_ties_by_ascending_payload() {
        // Duplicate positions with scrambled payloads at exactly equal
        // distance: the smallest payload must win, regardless of insertion
        // order or cell layout.
        let ring = [pt(11.0, 10.0), pt(9.0, 10.0), pt(10.0, 11.0), pt(10.0, 9.0)];
        for metric in Metric::ALL {
            let mut grid: Grid<2, usize> = Grid::new(0.8);
            for (j, payload) in [5usize, 1, 7, 3, 0, 6, 2, 4].iter().enumerate() {
                grid.insert(ring[j % ring.len()], *payload);
            }
            let got = grid.nearest_one(&pt(10.0, 10.0), metric).unwrap();
            assert_eq!(got.1, 0, "{metric}");
            assert!((got.0 - 1.0).abs() < 1e-12, "{metric}");
        }
    }

    #[test]
    fn incremental_and_bulk_loads_agree() {
        let mut inc: Grid<2, usize> = Grid::new(2.0);
        for (p, i) in lattice(300) {
            inc.insert(p, i);
        }
        let bulk: Grid<2, usize> = Grid::from_points(2.0, lattice(300));
        assert_eq!(inc.len(), bulk.len());
        assert_eq!(inc.occupied_cells(), bulk.occupied_cells());
        let q = pt(6.5, 3.5);
        for metric in Metric::ALL {
            let collect = |g: &Grid<2, usize>| {
                let mut out = Vec::new();
                g.for_each_within(&q, 2.0, metric, |_, &i| out.push(i));
                out.sort_unstable();
                out
            };
            assert_eq!(collect(&inc), collect(&bulk), "{metric}");
            assert_eq!(inc.nearest_one(&q, metric), bulk.nearest_one(&q, metric));
        }
    }

    #[test]
    fn three_dimensional_probe() {
        let points: Vec<(Point<3>, usize)> = (0..200)
            .map(|i| {
                let f = i as f64;
                (Point::new([f % 5.0, (f / 5.0) % 5.0, f / 25.0]), i)
            })
            .collect();
        let grid: Grid<3, usize> = Grid::from_points(1.0, points.clone());
        let q = Point::new([2.2, 2.8, 3.1]);
        for metric in Metric::ALL {
            let mut hits = Vec::new();
            grid.for_each_within(&q, 1.0, metric, |p, &i| {
                if metric.within(p, &q, 1.0) {
                    hits.push(i);
                }
            });
            hits.sort_unstable();
            let expected: Vec<usize> = points
                .iter()
                .filter(|(p, _)| metric.within(p, &q, 1.0))
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(hits, expected, "{metric}");
            // Nearest agrees with brute force too.
            let got = grid.nearest_one(&q, metric).unwrap();
            let best = points
                .iter()
                .map(|(p, i)| (metric.distance(&q, p), *i))
                .fold(
                    (f64::INFINITY, 0),
                    |acc, cur| {
                        if cur.0 < acc.0 {
                            cur
                        } else {
                            acc
                        }
                    },
                );
            assert_eq!(got, best, "{metric}");
        }
    }

    #[test]
    fn saturated_cell_keys_stay_safe() {
        // Absurd coordinate/cell ratios saturate the cell keys at the i64
        // extremes; probes over such a grid must neither overflow nor miss
        // verified hits (the documented saturation-safety guarantee).
        let mut grid: Grid<2, usize> = Grid::new(1e-3);
        grid.insert(pt(1e300, 0.0), 0);
        grid.insert(pt(-1e300, 0.0), 1);
        grid.insert(pt(0.25, 0.0), 2);
        let mut hits = Vec::new();
        grid.for_each_within(&pt(0.0, 0.0), 1e19, Metric::L2, |p, &i| {
            if Metric::L2.within(p, &pt(0.0, 0.0), 1e19) {
                hits.push(i);
            }
        });
        hits.sort_unstable();
        assert_eq!(hits, vec![2], "only the unsaturated point is in range");
        // Nearest search still terminates and finds the true argmin.
        assert_eq!(grid.nearest_one(&pt(0.3, 0.0), Metric::L2).unwrap().1, 2);
    }

    #[test]
    fn nearest_one_far_diagonal_query_is_cheap_and_correct() {
        // A query far outside the population (diagonally) must still
        // return the exact argmin; the ring walk only touches shell
        // cells, so this terminates quickly even with many rings.
        let grid: Grid<2, usize> = Grid::from_points(0.5, lattice(500));
        for metric in Metric::ALL {
            let q = pt(5000.0, -4000.0);
            let got = grid.nearest_one(&q, metric).unwrap();
            let mut best = (f64::INFINITY, 0usize);
            for &(p, i) in &lattice(500) {
                let d = metric.distance(&q, &p);
                if d < best.0 {
                    best = (d, i);
                }
            }
            assert_eq!(got, best, "{metric}");
        }
    }

    #[test]
    fn remove_drops_empty_cells_and_roundtrips() {
        let mut grid: Grid<2, usize> = Grid::new(1.0);
        grid.insert(pt(0.2, 0.2), 0);
        grid.insert(pt(0.9, 0.2), 1); // same cell as 0
        grid.insert(pt(5.0, 5.0), 2);
        assert_eq!(grid.occupied_cells(), 2);

        // Removing one of two entries keeps the cell.
        assert!(grid.remove(&pt(0.2, 0.2), &0));
        assert_eq!(grid.len(), 2);
        assert_eq!(grid.occupied_cells(), 2);
        // Removing the last entry of a cell drops the cell.
        assert!(grid.remove(&pt(5.0, 5.0), &2));
        assert_eq!(grid.occupied_cells(), 1);
        // Misses: wrong point, wrong payload, already removed.
        assert!(!grid.remove(&pt(5.0, 5.0), &2));
        assert!(!grid.remove(&pt(0.9, 0.2), &7));
        assert!(!grid.remove(&pt(0.95, 0.2), &1));
        assert_eq!(grid.len(), 1);

        // Re-insert what was removed: probes see the same set as a fresh
        // grid built from the final contents.
        grid.insert(pt(0.2, 0.2), 0);
        grid.insert(pt(5.0, 5.0), 2);
        let fresh: Grid<2, usize> = Grid::from_points(
            1.0,
            [(pt(0.2, 0.2), 0), (pt(0.9, 0.2), 1), (pt(5.0, 5.0), 2)],
        );
        for metric in Metric::ALL {
            let collect = |g: &Grid<2, usize>| {
                let mut out = Vec::new();
                g.for_each_within(&pt(0.5, 0.5), 6.0, metric, |_, &i| out.push(i));
                out.sort_unstable();
                out
            };
            assert_eq!(collect(&grid), collect(&fresh), "{metric}");
            assert_eq!(
                grid.nearest_one(&pt(4.0, 4.0), metric),
                fresh.nearest_one(&pt(4.0, 4.0), metric)
            );
        }
    }

    #[test]
    fn remove_then_reinsert_under_churn_matches_rebuild() {
        // A long alternating insert/delete workload must not accumulate
        // empty cells (the probe-window fallback compares against
        // occupied_cells) and must keep probe results exact.
        let mut grid: Grid<2, usize> = Grid::new(1.0);
        for round in 0..50 {
            for (p, i) in lattice(40) {
                grid.insert(p, i + round * 40);
            }
            for (p, i) in lattice(40) {
                assert!(grid.remove(&p, &(i + round * 40)), "round {round} id {i}");
            }
        }
        assert!(grid.is_empty());
        assert_eq!(grid.occupied_cells(), 0, "no empty cells accumulate");
        grid.insert(pt(1.5, 1.5), 99);
        let got = grid.nearest_one(&pt(0.0, 0.0), Metric::L2).unwrap();
        assert_eq!(got.1, 99);
    }

    #[test]
    fn negative_coordinates_quantise_correctly() {
        // floor (not truncation) keys: −0.5 and +0.5 sit in different
        // cells under cell = 1, but a probe spanning both finds both.
        let mut grid: Grid<2, char> = Grid::new(1.0);
        grid.insert(pt(-0.5, 0.0), 'n');
        grid.insert(pt(0.5, 0.0), 'p');
        assert_eq!(grid.cell_of(&pt(-0.5, 0.0))[0], -1);
        assert_eq!(grid.cell_of(&pt(0.5, 0.0))[0], 0);
        let mut hits = Vec::new();
        grid.for_each_within(&pt(0.0, 0.0), 1.0, Metric::L1, |_, &c| hits.push(c));
        hits.sort_unstable();
        assert_eq!(hits, vec!['n', 'p']);
    }
}
