#![warn(missing_docs)]

//! An in-memory R-tree [Guttman 1984], the spatial access method behind the
//! paper's *on-the-fly Index* optimizations.
//!
//! SGB-All (Procedure 5) indexes the bounding rectangles of the groups
//! discovered so far (`Groups_IX`) and answers, for each incoming point, a
//! window query with the point's ε-rectangle. SGB-Any (Procedure 8) indexes
//! the previously processed *points* (`Points_IX`) the same way. Groups
//! mutate as points join/leave, so the index supports deletion and
//! re-insertion, not just insertion.
//!
//! The implementation is a classic dynamic R-tree with quadratic split and
//! the `CondenseTree` deletion algorithm, arena-allocated, const-generic
//! over the dimension and generic over the stored payload.

pub mod rtree;

pub use rtree::RTree;
