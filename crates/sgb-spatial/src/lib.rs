#![warn(missing_docs)]

//! An in-memory R-tree [Guttman 1984], the spatial access method behind the
//! paper's *on-the-fly Index* optimizations.
//!
//! SGB-All (Procedure 5) indexes the bounding rectangles of the groups
//! discovered so far (`Groups_IX`) and answers, for each incoming point, a
//! window query with the point's ε-rectangle. SGB-Any (Procedure 8) indexes
//! the previously processed *points* (`Points_IX`) the same way. Groups
//! mutate as points join/leave, so the index supports deletion and
//! re-insertion, not just insertion.
//!
//! The implementation is a classic dynamic R-tree with quadratic split and
//! the `CondenseTree` deletion algorithm, arena-allocated, const-generic
//! over the dimension and generic over the stored payload. Indexes built
//! from a complete point set are bulk-loaded with sort-tile-recursive
//! packing ([`RTree::from_points`]) instead of one-at-a-time inserts.
//!
//! Alongside the R-tree lives the [`Grid`] — a hashed uniform epsilon-grid
//! purpose-built for the ε-bounded probes at the heart of the similarity
//! operators (cell side = ε ⇒ a probe touches only a point's own cell and
//! its immediate neighbours, with no tree descent at all).

pub mod grid;
pub mod rtree;

pub use grid::{Grid, JoinTally};
pub use rtree::RTree;
