//! Dynamic R-tree with quadratic split (Guttman's original algorithm).
//!
//! Deletion audit (incremental-maintenance engine): unlike [`crate::Grid`],
//! which only gained [`crate::Grid::remove`] when delta maintenance was
//! added, the R-tree has supported removal from the start —
//! [`RTree::remove`] implements Guttman's `Delete` + `CondenseTree`, so
//! underfull nodes are dissolved and their entries re-inserted rather than
//! left as empty husks. No structural change was needed for delete-heavy
//! workloads; the incremental engine maintains ε-grids (O(1) cell updates)
//! and treats R-trees as per-query rebuilt indexes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sgb_geom::{Metric, Point, Rect};

/// Default maximum node fan-out; 8–16 is a good in-memory trade-off.
pub const DEFAULT_MAX_ENTRIES: usize = 12;

type NodeId = usize;

#[derive(Debug, Clone)]
enum NodeKind<const D: usize, T> {
    Leaf(Vec<(Rect<D>, T)>),
    Internal(Vec<NodeId>),
}

#[derive(Debug, Clone)]
struct Node<const D: usize, T> {
    rect: Rect<D>,
    parent: Option<NodeId>,
    kind: NodeKind<D, T>,
}

impl<const D: usize, T> Node<D, T> {
    fn fanout(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(entries) => entries.len(),
            NodeKind::Internal(children) => children.len(),
        }
    }
}

/// A dynamic R-tree storing `(Rect<D>, T)` entries.
///
/// `T` is the payload (group id, point id, …). Deletion matches entries by
/// exact rectangle equality and payload equality, which is the natural key
/// for the SGB use case where the caller remembers the rectangle it
/// inserted.
#[derive(Debug, Clone)]
pub struct RTree<const D: usize, T> {
    nodes: Vec<Node<D, T>>,
    free: Vec<NodeId>,
    root: NodeId,
    len: usize,
    max_entries: usize,
    min_entries: usize,
}

impl<const D: usize, T: Clone + PartialEq> Default for RTree<D, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize, T: Clone + PartialEq> RTree<D, T> {
    /// An empty tree with the default fan-out.
    pub fn new() -> Self {
        Self::with_max_entries(DEFAULT_MAX_ENTRIES)
    }

    /// Bulk-loads a tree from a complete point set with sort-tile-recursive
    /// packing — see [`from_entries`](Self::from_entries).
    pub fn from_points(
        max_entries: usize,
        points: impl IntoIterator<Item = (Point<D>, T)>,
    ) -> Self {
        Self::from_entries(
            max_entries,
            points
                .into_iter()
                .map(|(p, item)| (Rect::point(p), item))
                .collect(),
        )
    }

    /// Bulk-loads a tree from a complete entry set with **sort-tile-
    /// recursive (STR) packing** [Leutenegger et al. 1997]: entries are
    /// sorted by centre coordinate and tiled into `⌈n/M⌉` full leaves
    /// (slabbed per dimension), then the leaf rectangles are packed the
    /// same way level by level up to the root.
    ///
    /// Compared to `n` one-at-a-time [`insert`](Self::insert)s this pays no
    /// `ChooseLeaf` descents and no quadratic splits — an `O(n log n)` sort
    /// instead — and produces near-full, spatially coherent nodes. Queries
    /// on the result are exact as ever; only the tree *shape* differs, and
    /// no SGB answer depends on tree shape (range queries are verified by
    /// the caller, nearest-neighbour ties are payload-ordered).
    ///
    /// The packing honours the same fan-out bounds as dynamic insertion
    /// (underfull tails are rebalanced with their left sibling), so
    /// [`check_invariants`](Self::check_invariants) holds and the tree
    /// remains freely mutable afterwards.
    pub fn from_entries(max_entries: usize, entries: Vec<(Rect<D>, T)>) -> Self {
        let mut tree = Self::with_max_entries(max_entries);
        if entries.is_empty() {
            return tree;
        }
        tree.len = entries.len();
        if entries.len() <= max_entries {
            tree.nodes[tree.root].kind = NodeKind::Leaf(entries);
            tree.tighten(tree.root);
            return tree;
        }
        // Pack the leaf level, then repack each internal level until a
        // single node remains.
        let mut level: Vec<(Rect<D>, NodeId)> = Vec::new();
        for group in str_pack(entries, max_entries, tree.min_entries) {
            let id = tree.alloc(Node {
                rect: Rect::empty(),
                parent: None,
                kind: NodeKind::Leaf(group),
            });
            tree.tighten(id);
            level.push((tree.nodes[id].rect, id));
        }
        while level.len() > 1 {
            let mut next: Vec<(Rect<D>, NodeId)> = Vec::new();
            for group in str_pack(level, max_entries, tree.min_entries) {
                let children: Vec<NodeId> = group.iter().map(|&(_, id)| id).collect();
                let id = tree.alloc(Node {
                    rect: Rect::empty(),
                    parent: None,
                    kind: NodeKind::Internal(children.clone()),
                });
                for c in children {
                    tree.nodes[c].parent = Some(id);
                }
                tree.tighten(id);
                next.push((tree.nodes[id].rect, id));
            }
            level = next;
        }
        let old_root = tree.root;
        tree.root = level[0].1;
        tree.release(old_root);
        tree
    }

    /// An empty tree with node capacity `max_entries` (`M`); the minimum
    /// fill is `M / 3` as Guttman recommends for the quadratic split.
    pub fn with_max_entries(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R-tree fan-out must be at least 4");
        let mut tree = Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: 0,
            len: 0,
            max_entries,
            min_entries: (max_entries / 3).max(1),
        };
        tree.root = tree.alloc(Node {
            rect: Rect::empty(),
            parent: None,
            kind: NodeKind::Leaf(Vec::new()),
        });
        tree
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree stores nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// MBR of everything stored (empty rect when the tree is empty).
    pub fn bounds(&self) -> Rect<D> {
        self.nodes[self.root].rect
    }

    /// Height of the tree (1 for a single leaf root).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = self.root;
        while let NodeKind::Internal(children) = &self.nodes[n].kind {
            n = children[0];
            h += 1;
        }
        h
    }

    fn alloc(&mut self, node: Node<D, T>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = node;
            id
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn release(&mut self, id: NodeId) {
        self.nodes[id] = Node {
            rect: Rect::empty(),
            parent: None,
            kind: NodeKind::Leaf(Vec::new()),
        };
        self.free.push(id);
    }

    /// Recomputes a node's MBR from its contents.
    fn tighten(&mut self, id: NodeId) {
        let rect = match &self.nodes[id].kind {
            NodeKind::Leaf(entries) => entries
                .iter()
                .fold(Rect::empty(), |acc, (r, _)| acc.union(r)),
            NodeKind::Internal(children) => children
                .iter()
                .fold(Rect::empty(), |acc, &c| acc.union(&self.nodes[c].rect)),
        };
        self.nodes[id].rect = rect;
    }

    /// Guttman's `ChooseLeaf`: descend picking the child needing the least
    /// enlargement (ties: smaller volume, then smaller fan-out).
    fn choose_leaf(&self, rect: &Rect<D>) -> NodeId {
        let mut node = self.root;
        loop {
            match &self.nodes[node].kind {
                NodeKind::Leaf(_) => return node,
                NodeKind::Internal(children) => {
                    let mut best = children[0];
                    let mut best_key = (f64::INFINITY, f64::INFINITY, usize::MAX);
                    for &c in children {
                        let r = &self.nodes[c].rect;
                        let key = (r.enlargement(rect), r.volume(), self.nodes[c].fanout());
                        if key < best_key {
                            best_key = key;
                            best = c;
                        }
                    }
                    node = best;
                }
            }
        }
    }

    /// Inserts an entry.
    pub fn insert(&mut self, rect: Rect<D>, item: T) {
        debug_assert!(!rect.is_empty(), "cannot index an empty rectangle");
        let leaf = self.choose_leaf(&rect);
        if let NodeKind::Leaf(entries) = &mut self.nodes[leaf].kind {
            entries.push((rect, item));
        } else {
            unreachable!("choose_leaf returned an internal node");
        }
        self.len += 1;
        self.adjust_upward(leaf);
    }

    /// Convenience: index a point as its degenerate rectangle.
    pub fn insert_point(&mut self, p: Point<D>, item: T) {
        self.insert(Rect::point(p), item);
    }

    /// Walks from `start` to the root, tightening MBRs and splitting
    /// overflowing nodes (`AdjustTree`).
    fn adjust_upward(&mut self, start: NodeId) {
        let mut node = start;
        loop {
            let split_off = if self.nodes[node].fanout() > self.max_entries {
                Some(self.split(node))
            } else {
                None
            };
            self.tighten(node);
            let parent = self.nodes[node].parent;
            match (split_off, parent) {
                (Some(new), None) => {
                    // Root split: grow the tree by one level.
                    let old_root = node;
                    let new_root = self.alloc(Node {
                        rect: self.nodes[old_root].rect.union(&self.nodes[new].rect),
                        parent: None,
                        kind: NodeKind::Internal(vec![old_root, new]),
                    });
                    self.nodes[old_root].parent = Some(new_root);
                    self.nodes[new].parent = Some(new_root);
                    self.root = new_root;
                    return;
                }
                (Some(new), Some(p)) => {
                    self.nodes[new].parent = Some(p);
                    if let NodeKind::Internal(children) = &mut self.nodes[p].kind {
                        children.push(new);
                    } else {
                        unreachable!("parent of a node must be internal");
                    }
                    node = p;
                }
                (None, Some(p)) => node = p,
                (None, None) => return,
            }
        }
    }

    /// Splits an overflowing node with the quadratic algorithm, returning
    /// the id of the freshly allocated sibling.
    fn split(&mut self, node: NodeId) -> NodeId {
        match std::mem::replace(&mut self.nodes[node].kind, NodeKind::Leaf(Vec::new())) {
            NodeKind::Leaf(entries) => {
                let (a, b) = quadratic_split(entries, self.min_entries);
                self.nodes[node].kind = NodeKind::Leaf(a);
                self.tighten(node);
                let new = self.alloc(Node {
                    rect: Rect::empty(),
                    parent: self.nodes[node].parent,
                    kind: NodeKind::Leaf(b),
                });
                self.tighten(new);
                new
            }
            NodeKind::Internal(children) => {
                let tagged: Vec<(Rect<D>, NodeId)> = children
                    .into_iter()
                    .map(|c| (self.nodes[c].rect, c))
                    .collect();
                let (a, b) = quadratic_split(tagged, self.min_entries);
                let a_ids: Vec<NodeId> = a.into_iter().map(|(_, id)| id).collect();
                let b_ids: Vec<NodeId> = b.into_iter().map(|(_, id)| id).collect();
                self.nodes[node].kind = NodeKind::Internal(a_ids);
                self.tighten(node);
                let new = self.alloc(Node {
                    rect: Rect::empty(),
                    parent: self.nodes[node].parent,
                    kind: NodeKind::Internal(Vec::new()),
                });
                for &c in &b_ids {
                    self.nodes[c].parent = Some(new);
                }
                self.nodes[new].kind = NodeKind::Internal(b_ids);
                self.tighten(new);
                new
            }
        }
    }

    /// Window query: invokes `visit` for every stored entry whose rectangle
    /// intersects `window` (the `WindowQuery` of Procedures 5 and 8).
    pub fn query<F: FnMut(&Rect<D>, &T)>(&self, window: &Rect<D>, mut visit: F) {
        if self.len == 0 {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !node.rect.intersects(window) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    for (r, item) in entries {
                        if r.intersects(window) {
                            visit(r, item);
                        }
                    }
                }
                NodeKind::Internal(children) => stack.extend_from_slice(children),
            }
        }
    }

    /// Window query collecting the payloads into a `Vec`.
    pub fn query_collect(&self, window: &Rect<D>) -> Vec<T> {
        let mut out = Vec::new();
        self.query(window, |_, item| out.push(item.clone()));
        out
    }

    /// Metric-aware range query: invokes `visit` for every stored entry
    /// whose rectangle comes within `eps` of `center` under `metric`.
    ///
    /// Subtrees are pruned by [`Rect::min_distance`] under the query's own
    /// norm, so an `L1` or `L∞` search descends only into nodes its
    /// diamond/square ball can actually reach — strictly tighter than the
    /// enclosing-rectangle window of [`query`](Self::query) (for `L∞` the
    /// two coincide; for `L1` the ball covers `1/D!` of the window's
    /// volume — half in 2-D, a sixth in 3-D).
    ///
    /// The threshold is relaxed by a few units in the last place so that
    /// floating-point rounding of the mindist can never exclude an entry
    /// the canonical predicate [`Metric::within`] accepts
    /// (`min_rank_distance` never exceeds the predicate's own rounded
    /// distance — see [`Rect::min_distance`] — so the pad only needs to
    /// absorb the `L2` square/square-root asymmetry). Callers verify hits
    /// with `Metric::within`, exactly like `VerifyPoints` of Procedure 8.
    ///
    /// Distances are compared in the rank space of
    /// [`Metric::rank_distance`] (squared for `L2`), so the per-node hot
    /// path pays no square root, and leaves whose whole MBR sits inside
    /// the ball ([`Rect::max_rank_distance`] ≤ threshold) are visited
    /// without per-entry checks.
    pub fn query_within<F: FnMut(&Rect<D>, &T)>(
        &self,
        center: &Point<D>,
        eps: f64,
        metric: Metric,
        visit: F,
    ) {
        let mut stack = Vec::new();
        self.for_each_within(center, eps, metric, &mut stack, visit);
    }

    /// Allocation-free sibling of [`query_within`](Self::query_within)
    /// (mirroring [`nearest_one_with`](Self::nearest_one_with)): the
    /// traversal stack is caller-provided scratch, cleared on entry, so
    /// per-tuple hot loops pay no heap allocation per query. Semantics are
    /// identical — same pruning, same relaxed threshold, same
    /// visited-superset guarantee.
    pub fn for_each_within<F: FnMut(&Rect<D>, &T)>(
        &self,
        center: &Point<D>,
        eps: f64,
        metric: Metric,
        stack: &mut Vec<usize>,
        mut visit: F,
    ) {
        if self.len == 0 {
            return;
        }
        let relaxed = eps * (1.0 + 4.0 * f64::EPSILON);
        let bound = match metric {
            Metric::L2 => relaxed * relaxed,
            _ => relaxed,
        };
        stack.clear();
        stack.push(self.root);
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if node.rect.min_rank_distance(center, metric) > bound {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    if node.rect.max_rank_distance(center, metric) <= bound {
                        // Whole leaf MBR inside the ball: every entry is a
                        // hit, skip the per-entry filter.
                        for (r, item) in entries {
                            visit(r, item);
                        }
                    } else {
                        for (r, item) in entries {
                            if r.min_rank_distance(center, metric) <= bound {
                                visit(r, item);
                            }
                        }
                    }
                }
                NodeKind::Internal(children) => stack.extend_from_slice(children),
            }
        }
    }

    /// The `k` entries nearest to `q` under `metric`, as
    /// `(distance, payload)` sorted by ascending distance. Best-first search
    /// over node MBR lower bounds.
    ///
    /// Edge cases are fully defined:
    ///
    /// * `k = 0` or an empty tree returns an empty vector;
    /// * `k > len` returns every entry (sorted), without error;
    /// * entries at *exactly* equal distance are returned in ascending
    ///   payload order — the output is sorted by `(distance, payload)`
    ///   lexicographically, independent of tree shape or insertion history
    ///   (hence the `T: Ord` bound). SGB-Around relies on this for its
    ///   deterministic lowest-center-index tie-breaking.
    ///
    /// For point entries (degenerate rectangles) the reported distance is
    /// bit-identical to [`Metric::distance`]: the per-dimension clamp gaps
    /// of [`Rect::min_distance`] reduce to `|qᵈ − pᵈ|` and are folded in
    /// the same dimension order.
    pub fn nearest(&self, q: &Point<D>, k: usize, metric: Metric) -> Vec<(f64, T)>
    where
        T: Ord,
    {
        enum Cand<T> {
            Node(NodeId),
            Entry(T),
        }
        /// Pop priority at equal distance: nodes expand before entries are
        /// emitted (a node with mindist `d` may still hide an entry at
        /// distance `d` with a smaller payload), and tied entries pop in
        /// ascending payload order.
        struct HeapItem<T>(f64, Cand<T>);
        impl<T: Ord> HeapItem<T> {
            /// `Greater` when `self` must pop before `other`.
            fn priority(&self, other: &Self) -> Ordering {
                match other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal) {
                    Ordering::Equal => match (&self.1, &other.1) {
                        (Cand::Node(_), Cand::Entry(_)) => Ordering::Greater,
                        (Cand::Entry(_), Cand::Node(_)) => Ordering::Less,
                        (Cand::Node(_), Cand::Node(_)) => Ordering::Equal,
                        (Cand::Entry(a), Cand::Entry(b)) => b.cmp(a),
                    },
                    ord => ord,
                }
            }
        }
        impl<T: Ord> PartialEq for HeapItem<T> {
            fn eq(&self, other: &Self) -> bool {
                self.priority(other) == Ordering::Equal
            }
        }
        impl<T: Ord> Eq for HeapItem<T> {}
        impl<T: Ord> PartialOrd for HeapItem<T> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T: Ord> Ord for HeapItem<T> {
            fn cmp(&self, other: &Self) -> Ordering {
                self.priority(other)
            }
        }

        let mut out = Vec::with_capacity(k.min(self.len));
        if self.len == 0 || k == 0 {
            return out;
        }
        let mut heap: BinaryHeap<HeapItem<T>> = BinaryHeap::new();
        heap.push(HeapItem(
            self.nodes[self.root].rect.min_distance(q, metric),
            Cand::Node(self.root),
        ));
        while let Some(HeapItem(dist, cand)) = heap.pop() {
            match cand {
                Cand::Entry(item) => {
                    out.push((dist, item));
                    if out.len() == k {
                        break;
                    }
                }
                Cand::Node(id) => match &self.nodes[id].kind {
                    NodeKind::Leaf(entries) => {
                        for (r, item) in entries {
                            heap.push(HeapItem(
                                r.min_distance(q, metric),
                                Cand::Entry(item.clone()),
                            ));
                        }
                    }
                    NodeKind::Internal(children) => {
                        for &c in children {
                            heap.push(HeapItem(
                                self.nodes[c].rect.min_distance(q, metric),
                                Cand::Node(c),
                            ));
                        }
                    }
                },
            }
        }
        out
    }

    /// The single entry nearest to `q` under `metric` — equivalent to
    /// `self.nearest(q, 1, metric).pop()`, including the
    /// `(distance, payload)`-lexicographic tie-breaking, but implemented as
    /// a branch-and-bound descent over `stack` (caller-provided scratch,
    /// cleared on entry) so per-query hot loops pay no heap allocations.
    pub fn nearest_one_with(
        &self,
        q: &Point<D>,
        metric: Metric,
        stack: &mut Vec<usize>,
    ) -> Option<(f64, T)>
    where
        T: Ord,
    {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<(f64, &T)> = None;
        stack.clear();
        stack.push(self.root);
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            // Prune strictly-farther subtrees only: an equal lower bound
            // may still hide an equal-distance entry with a smaller
            // payload.
            if let Some((bd, _)) = best {
                if node.rect.min_distance(q, metric) > bd {
                    continue;
                }
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    for (r, item) in entries {
                        let d = r.min_distance(q, metric);
                        let better = match best {
                            None => true,
                            Some((bd, bt)) => d < bd || (d == bd && item < bt),
                        };
                        if better {
                            best = Some((d, item));
                        }
                    }
                }
                NodeKind::Internal(children) => stack.extend_from_slice(children),
            }
        }
        best.map(|(d, item)| (d, item.clone()))
    }

    /// Removes the entry matching `(rect, item)` exactly. Returns `true`
    /// when an entry was removed. Implements Guttman's `Delete` +
    /// `CondenseTree` with re-insertion of orphaned entries.
    pub fn remove(&mut self, rect: &Rect<D>, item: &T) -> bool {
        let Some(leaf) = self.find_leaf(self.root, rect, item) else {
            return false;
        };
        if let NodeKind::Leaf(entries) = &mut self.nodes[leaf].kind {
            let idx = entries
                .iter()
                .position(|(r, t)| r == rect && t == item)
                .expect("find_leaf guarantees presence");
            entries.swap_remove(idx);
        }
        self.len -= 1;
        self.condense(leaf);
        true
    }

    /// Moves an entry to a new rectangle (delete + reinsert) — used when a
    /// group's bounding rectangle changes as members join or leave.
    pub fn update(&mut self, old_rect: &Rect<D>, new_rect: Rect<D>, item: T) -> bool {
        if self.remove(old_rect, &item) {
            self.insert(new_rect, item);
            true
        } else {
            false
        }
    }

    fn find_leaf(&self, node: NodeId, rect: &Rect<D>, item: &T) -> Option<NodeId> {
        let n = &self.nodes[node];
        // A stored entry is always fully covered by its node's MBR.
        if !n.rect.contains_rect(rect) {
            return None;
        }
        match &n.kind {
            NodeKind::Leaf(entries) => entries
                .iter()
                .any(|(r, t)| r == rect && t == item)
                .then_some(node),
            NodeKind::Internal(children) => children
                .iter()
                .filter(|&&c| self.nodes[c].rect.contains_rect(rect))
                .find_map(|&c| self.find_leaf(c, rect, item)),
        }
    }

    /// `CondenseTree`: walk from `start` to the root eliminating underfull
    /// nodes, then reinsert their orphaned leaf entries.
    fn condense(&mut self, start: NodeId) {
        let mut orphans: Vec<(Rect<D>, T)> = Vec::new();
        let mut node = start;
        while let Some(parent) = self.nodes[node].parent {
            if self.nodes[node].fanout() < self.min_entries {
                if let NodeKind::Internal(children) = &mut self.nodes[parent].kind {
                    children.retain(|&c| c != node);
                }
                self.collect_entries(node, &mut orphans);
            } else {
                self.tighten(node);
            }
            node = parent;
        }
        self.tighten(self.root);
        // Shrink the root while it is an internal node with one child.
        while let NodeKind::Internal(children) = &self.nodes[self.root].kind {
            match children.len() {
                0 => {
                    // Everything was condensed away: revert to an empty leaf.
                    self.nodes[self.root].kind = NodeKind::Leaf(Vec::new());
                    self.nodes[self.root].rect = Rect::empty();
                    break;
                }
                1 => {
                    let child = children[0];
                    let old_root = self.root;
                    self.nodes[child].parent = None;
                    self.root = child;
                    self.release(old_root);
                }
                _ => break,
            }
        }
        // Reinsert orphans; `len` was not decremented for them, so bypass
        // the public counter.
        for (rect, item) in orphans {
            let leaf = self.choose_leaf(&rect);
            if let NodeKind::Leaf(entries) = &mut self.nodes[leaf].kind {
                entries.push((rect, item));
            }
            self.adjust_upward(leaf);
        }
    }

    /// Recursively drains all leaf entries under `node`, releasing nodes.
    fn collect_entries(&mut self, node: NodeId, out: &mut Vec<(Rect<D>, T)>) {
        match std::mem::replace(&mut self.nodes[node].kind, NodeKind::Leaf(Vec::new())) {
            NodeKind::Leaf(entries) => out.extend(entries),
            NodeKind::Internal(children) => {
                for c in children {
                    self.collect_entries(c, out);
                }
            }
        }
        self.release(node);
    }

    /// Iterates over all `(rect, payload)` entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Rect<D>, &T)> + '_ {
        let mut stack = vec![self.root];
        let mut current: &[(Rect<D>, T)] = &[];
        let mut idx = 0usize;
        std::iter::from_fn(move || loop {
            if idx < current.len() {
                let (r, t) = &current[idx];
                idx += 1;
                return Some((r, t));
            }
            let id = stack.pop()?;
            match &self.nodes[id].kind {
                NodeKind::Leaf(entries) => {
                    current = entries;
                    idx = 0;
                }
                NodeKind::Internal(children) => stack.extend_from_slice(children),
            }
        })
    }

    /// Validates structural invariants (for tests): MBR containment, fan-out
    /// bounds, parent pointers, uniform leaf depth. Panics on violation.
    pub fn check_invariants(&self) {
        let mut leaf_depths = Vec::new();
        self.check_node(self.root, None, 0, &mut leaf_depths);
        assert!(
            leaf_depths.windows(2).all(|w| w[0] == w[1]),
            "leaves must share a depth: {leaf_depths:?}"
        );
        let counted: usize = self.iter().count();
        assert_eq!(counted, self.len, "len must match stored entries");
    }

    fn check_node(
        &self,
        id: NodeId,
        parent: Option<NodeId>,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
    ) {
        let node = &self.nodes[id];
        assert_eq!(node.parent, parent, "parent pointer mismatch at node {id}");
        if id != self.root && self.len > 0 {
            assert!(
                node.fanout() >= self.min_entries,
                "node {id} underfull: {} < {}",
                node.fanout(),
                self.min_entries
            );
        }
        assert!(
            node.fanout() <= self.max_entries,
            "node {id} overfull: {}",
            node.fanout()
        );
        match &node.kind {
            NodeKind::Leaf(entries) => {
                for (r, _) in entries {
                    assert!(node.rect.contains_rect(r), "leaf MBR must cover entries");
                }
                leaf_depths.push(depth);
            }
            NodeKind::Internal(children) => {
                assert!(!children.is_empty(), "internal node {id} has no children");
                for &c in children {
                    assert!(
                        node.rect.contains_rect(&self.nodes[c].rect),
                        "internal MBR must cover children"
                    );
                    self.check_node(c, Some(id), depth + 1, leaf_depths);
                }
            }
        }
    }
}

/// Sort-tile-recursive packing: partitions `items` into groups of at most
/// `cap` entries (each at least `min` — callers guarantee
/// `items.len() > cap`, so at least two groups exist and tail rebalancing
/// always has a left sibling).
///
/// Dimension `d` sorts by centre coordinate and slices into
/// `⌈L^(1/(D−d))⌉` slabs (`L` = leaves still needed), recursing into the
/// next dimension; the innermost dimension chunks sequentially.
fn str_pack<const D: usize, E>(
    items: Vec<(Rect<D>, E)>,
    cap: usize,
    min: usize,
) -> Vec<Vec<(Rect<D>, E)>> {
    fn rec<const D: usize, E>(
        mut items: Vec<(Rect<D>, E)>,
        cap: usize,
        min: usize,
        dim: usize,
        out: &mut Vec<Vec<(Rect<D>, E)>>,
    ) {
        let n = items.len();
        if n <= cap {
            // May be underfull only as the sole (root) group of the level.
            out.push(items);
            return;
        }
        items.sort_by(|(a, _), (b, _)| {
            let ca = 0.5 * (a.lo()[dim] + a.hi()[dim]);
            let cb = 0.5 * (b.lo()[dim] + b.hi()[dim]);
            ca.total_cmp(&cb)
        });
        if dim + 1 == D {
            // Innermost dimension: sequential chunks of `cap`. A short tail
            // (< min) is rebalanced with its left sibling — the combined
            // `cap + tail` entries split into two halves of ≥ `cap/2` ≥
            // `min` each.
            let mut chunks: Vec<Vec<(Rect<D>, E)>> = Vec::with_capacity(n.div_ceil(cap));
            let mut iter = items.into_iter();
            loop {
                let chunk: Vec<(Rect<D>, E)> = iter.by_ref().take(cap).collect();
                if chunk.is_empty() {
                    break;
                }
                chunks.push(chunk);
            }
            if chunks.len() >= 2 && chunks[chunks.len() - 1].len() < min {
                let tail = chunks.pop().unwrap();
                let mut prev = chunks.pop().unwrap();
                prev.extend(tail);
                let second = prev.split_off(prev.len() / 2);
                chunks.push(prev);
                chunks.push(second);
            }
            out.extend(chunks);
        } else {
            let leaves = n.div_ceil(cap);
            let slabs = (leaves as f64).powf(1.0 / (D - dim) as f64).ceil().max(1.0) as usize;
            let per_slab = n.div_ceil(slabs);
            let mut slabbed: Vec<Vec<(Rect<D>, E)>> = Vec::with_capacity(slabs);
            let mut iter = items.into_iter();
            loop {
                let slab: Vec<(Rect<D>, E)> = iter.by_ref().take(per_slab).collect();
                if slab.is_empty() {
                    break;
                }
                slabbed.push(slab);
            }
            // A stunted final slab would bottom out as one underfull group.
            if slabbed.len() >= 2 && slabbed[slabbed.len() - 1].len() < min {
                let tail = slabbed.pop().unwrap();
                slabbed.last_mut().unwrap().extend(tail);
            }
            for slab in slabbed {
                rec(slab, cap, min, dim + 1, out);
            }
        }
    }
    let mut out = Vec::new();
    rec(items, cap, min, 0, &mut out);
    out
}

/// Guttman's quadratic split: pick the two entries that would waste the most
/// area together as seeds, then greedily assign the rest by strongest
/// preference, honouring the minimum fill.
/// An entry list paired with its split-off sibling list.
type SplitEntries<const D: usize, E> = (Vec<(Rect<D>, E)>, Vec<(Rect<D>, E)>);

fn quadratic_split<const D: usize, E>(
    mut entries: Vec<(Rect<D>, E)>,
    min_entries: usize,
) -> SplitEntries<D, E> {
    debug_assert!(entries.len() >= 2);
    // PickSeeds: maximise dead volume d = volume(union) − v1 − v2.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let d = entries[i].0.union(&entries[j].0).volume()
                - entries[i].0.volume()
                - entries[j].0.volume();
            if d > worst {
                worst = d;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    // Move seeds out (remove the larger index first to keep the other valid).
    let (hi, lo) = (seed_a.max(seed_b), seed_a.min(seed_b));
    let eb = entries.swap_remove(hi);
    let ea = entries.swap_remove(lo);
    let mut group_a = vec![ea];
    let mut group_b = vec![eb];
    let mut rect_a = group_a[0].0;
    let mut rect_b = group_b[0].0;

    while let Some(next) = pick_next(&entries, &rect_a, &rect_b) {
        // `remaining` includes the entry about to be assigned. Forced
        // assignment: if handing every remaining entry to one side only just
        // reaches its minimum fill, they all must go there.
        let remaining = entries.len();
        let must_a = group_a.len() + remaining == min_entries;
        let must_b = group_b.len() + remaining == min_entries;
        let entry = entries.swap_remove(next);
        let grow_a = rect_a.enlargement(&entry.0);
        let grow_b = rect_b.enlargement(&entry.0);
        let to_a = if must_a {
            true
        } else if must_b {
            false
        } else if grow_a != grow_b {
            grow_a < grow_b
        } else if rect_a.volume() != rect_b.volume() {
            rect_a.volume() < rect_b.volume()
        } else {
            group_a.len() <= group_b.len()
        };
        if to_a {
            rect_a = rect_a.union(&entry.0);
            group_a.push(entry);
        } else {
            rect_b = rect_b.union(&entry.0);
            group_b.push(entry);
        }
    }
    (group_a, group_b)
}

/// `PickNext`: the entry with the greatest preference |d1 − d2| between the
/// two groups.
fn pick_next<const D: usize, E>(
    entries: &[(Rect<D>, E)],
    rect_a: &Rect<D>,
    rect_b: &Rect<D>,
) -> Option<usize> {
    entries
        .iter()
        .enumerate()
        .max_by(|(_, x), (_, y)| {
            let px = (rect_a.enlargement(&x.0) - rect_b.enlargement(&x.0)).abs();
            let py = (rect_a.enlargement(&y.0) - rect_b.enlargement(&y.0)).abs();
            px.partial_cmp(&py).unwrap_or(Ordering::Equal)
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Point<2> {
        Point::new([x, y])
    }

    fn grid_tree(n: usize) -> RTree<2, usize> {
        let mut tree = RTree::new();
        for i in 0..n {
            let x = (i % 31) as f64;
            let y = (i / 31) as f64;
            tree.insert_point(pt(x, y), i);
        }
        tree
    }

    #[test]
    fn empty_tree_queries() {
        let tree: RTree<2, usize> = RTree::new();
        assert!(tree.is_empty());
        assert_eq!(
            tree.query_collect(&Rect::centered(pt(0.0, 0.0), 10.0)),
            Vec::<usize>::new()
        );
        assert!(tree.nearest(&pt(0.0, 0.0), 3, Metric::L2).is_empty());
        assert!(tree.bounds().is_empty());
    }

    #[test]
    fn insert_and_query_small() {
        let mut tree = RTree::new();
        tree.insert_point(pt(1.0, 1.0), 'a');
        tree.insert_point(pt(5.0, 5.0), 'b');
        tree.insert_point(pt(9.0, 1.0), 'c');
        assert_eq!(tree.len(), 3);
        let mut hits = tree.query_collect(&Rect::new(pt(0.0, 0.0), pt(6.0, 6.0)));
        hits.sort();
        assert_eq!(hits, vec!['a', 'b']);
        tree.check_invariants();
    }

    #[test]
    fn window_query_matches_linear_scan() {
        let tree = grid_tree(500);
        let windows = [
            Rect::new(pt(2.5, 1.5), pt(7.5, 9.5)),
            Rect::new(pt(0.0, 0.0), pt(0.0, 0.0)),
            Rect::new(pt(-5.0, -5.0), pt(50.0, 50.0)),
            Rect::new(pt(30.5, 0.0), pt(31.5, 3.0)),
        ];
        for w in &windows {
            let mut hits = tree.query_collect(w);
            hits.sort();
            let mut expected: Vec<usize> = (0..500)
                .filter(|i| w.contains_point(&pt((i % 31) as f64, (i / 31) as f64)))
                .collect();
            expected.sort();
            assert_eq!(hits, expected, "window {w:?}");
        }
        tree.check_invariants();
    }

    #[test]
    fn query_within_matches_linear_scan_per_metric() {
        let tree = grid_tree(500);
        let queries = [
            (pt(5.2, 4.7), 2.5),
            (pt(0.0, 0.0), 0.0),
            (pt(15.5, 8.0), 5.0),
            (pt(-3.0, -3.0), 1.0), // empty result
        ];
        for metric in Metric::ALL {
            for (q, eps) in queries {
                let mut hits = Vec::new();
                tree.query_within(&q, eps, metric, |_, &i| {
                    // Caller-side verification, as the SGB operators do.
                    if metric.within(&pt((i % 31) as f64, (i / 31) as f64), &q, eps) {
                        hits.push(i);
                    }
                });
                hits.sort();
                let expected: Vec<usize> = (0..500)
                    .filter(|i| metric.within(&pt((i % 31) as f64, (i / 31) as f64), &q, eps))
                    .collect();
                assert_eq!(hits, expected, "{metric} query {q:?} eps {eps}");
            }
        }
    }

    #[test]
    fn query_within_is_a_superset_of_the_predicate_on_boundary_ties() {
        // Points whose distance ties with ε up to floating-point rounding
        // must still be visited (the caller's verify decides).
        let mut tree: RTree<2, usize> = RTree::new();
        let base = 880.0;
        let points: Vec<Point<2>> = (0..60)
            .map(|k| pt((base + k as f64 * 11.17) / 11000.0, 0.0))
            .collect();
        for (i, p) in points.iter().enumerate() {
            tree.insert_point(*p, i);
        }
        let eps = 0.08;
        for metric in Metric::ALL {
            for q in &points {
                let mut visited = vec![false; points.len()];
                tree.query_within(q, eps, metric, |_, &i| visited[i] = true);
                for (i, p) in points.iter().enumerate() {
                    if metric.within(p, q, eps) {
                        assert!(visited[i], "{metric}: predicate hit {i} not visited");
                    }
                }
            }
        }
    }

    #[test]
    fn query_within_prunes_more_than_window_for_l1() {
        // The L1 diamond must touch fewer entries than the enclosing
        // square window (corner entries fall outside the diamond).
        let tree = grid_tree(500);
        let q = pt(8.0, 8.0);
        let eps = 4.0;
        let mut ball = 0usize;
        tree.query_within(&q, eps, Metric::L1, |_, _| ball += 1);
        let window = tree.query_collect(&Rect::centered(q, eps)).len();
        assert!(ball < window, "diamond {ball} vs square {window}");
        // And every L1-accepted entry is among the visited ones.
        let expected = (0..500)
            .filter(|&i| Metric::L1.within(&pt((i % 31) as f64, (i / 31) as f64), &q, eps))
            .count();
        assert!(ball >= expected);
    }

    #[test]
    fn splits_keep_invariants() {
        let tree = grid_tree(2000);
        assert_eq!(tree.len(), 2000);
        assert!(tree.height() > 1, "2000 points must split the root");
        tree.check_invariants();
    }

    #[test]
    fn nearest_neighbours_match_brute_force() {
        let tree = grid_tree(400);
        let q = pt(7.3, 4.9);
        for metric in [Metric::L2, Metric::LInf] {
            let got = tree.nearest(&q, 5, metric);
            assert_eq!(got.len(), 5);
            let mut brute: Vec<(f64, usize)> = (0..400)
                .map(|i| {
                    (
                        metric.distance(&pt((i % 31) as f64, (i / 31) as f64), &q),
                        i,
                    )
                })
                .collect();
            brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for (k, (d, _)) in got.iter().enumerate() {
                assert!(
                    (d - brute[k].0).abs() < 1e-12,
                    "kNN distance #{k} mismatch under {metric:?}"
                );
            }
            // Distances are non-decreasing.
            assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    fn nearest_k_edge_cases() {
        // k = 0 on a populated tree: empty, no panic.
        let tree = grid_tree(50);
        assert!(tree.nearest(&pt(1.0, 1.0), 0, Metric::L2).is_empty());
        // Empty tree with k > 0: empty.
        let empty: RTree<2, usize> = RTree::new();
        assert!(empty.nearest(&pt(0.0, 0.0), 5, Metric::L1).is_empty());
        // k > len: every entry, sorted, no duplicates.
        for metric in Metric::ALL {
            let all = tree.nearest(&pt(3.3, 0.7), 1000, metric);
            assert_eq!(all.len(), 50, "{metric}");
            assert!(all.windows(2).all(|w| w[0].0 <= w[1].0), "{metric}");
            let mut ids: Vec<usize> = all.iter().map(|(_, i)| *i).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..50).collect::<Vec<_>>(), "{metric}");
        }
    }

    #[test]
    fn nearest_breaks_exact_ties_by_ascending_payload() {
        // Eight entries at exactly distance 1 from the query (plus fillers
        // farther away), inserted in scrambled payload order and enough of
        // them to force node splits: the tie block must come back in
        // ascending payload order regardless of tree shape.
        let q = pt(10.0, 10.0);
        let ring = [pt(11.0, 10.0), pt(9.0, 10.0), pt(10.0, 11.0), pt(10.0, 9.0)];
        for metric in Metric::ALL {
            let mut tree: RTree<2, usize> = RTree::with_max_entries(4);
            // Scrambled insertion order, duplicate positions across payloads.
            for (j, payload) in [5usize, 1, 7, 3, 0, 6, 2, 4].iter().enumerate() {
                tree.insert_point(ring[j % ring.len()], *payload);
            }
            for filler in 8..40 {
                tree.insert_point(pt(30.0 + filler as f64, 30.0), filler);
            }
            let got = tree.nearest(&q, 8, metric);
            let payloads: Vec<usize> = got.iter().map(|(_, i)| *i).collect();
            assert_eq!(payloads, vec![0, 1, 2, 3, 4, 5, 6, 7], "{metric}");
            assert!(
                got.iter().all(|(d, _)| (*d - 1.0).abs() < 1e-12),
                "{metric}"
            );
            // A truncated k cuts the same order short.
            let got3 = tree.nearest(&q, 3, metric);
            let payloads3: Vec<usize> = got3.iter().map(|(_, i)| *i).collect();
            assert_eq!(payloads3, vec![0, 1, 2], "{metric}");
        }
    }

    #[test]
    fn nearest_one_with_agrees_with_nearest_k1() {
        // Including on exact ties (the duplicate-position ring) and the
        // empty tree.
        let empty: RTree<2, usize> = RTree::new();
        let mut stack = Vec::new();
        assert_eq!(
            empty.nearest_one_with(&pt(0.0, 0.0), Metric::L2, &mut stack),
            None
        );

        let tree = grid_tree(500);
        let mut ring: RTree<2, usize> = RTree::with_max_entries(4);
        for (j, payload) in [5usize, 1, 7, 3, 0, 6, 2, 4].iter().enumerate() {
            let ps = [pt(11.0, 10.0), pt(9.0, 10.0), pt(10.0, 11.0), pt(10.0, 9.0)];
            ring.insert_point(ps[j % 4], *payload);
        }
        let probes = [pt(3.3, 7.1), pt(-2.0, 40.0), pt(10.0, 10.0), pt(15.0, 8.0)];
        for metric in Metric::ALL {
            for t in [&tree, &ring] {
                for q in &probes {
                    assert_eq!(
                        t.nearest_one_with(q, metric, &mut stack),
                        t.nearest(q, 1, metric).pop(),
                        "{metric} {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn nearest_point_distances_match_metric_distance_exactly() {
        // For point entries the reported distance must be bit-identical to
        // the canonical Metric::distance (SGB-Around's brute/indexed
        // equivalence rests on this).
        let tree = grid_tree(300);
        let q = pt(4.721, 7.913);
        for metric in Metric::ALL {
            for (d, i) in tree.nearest(&q, 300, metric) {
                let p = pt((i % 31) as f64, (i / 31) as f64);
                assert!(
                    d == metric.distance(&p, &q),
                    "{metric} entry {i}: {d} vs {}",
                    metric.distance(&p, &q)
                );
            }
        }
    }

    #[test]
    fn remove_existing_and_missing() {
        let mut tree = grid_tree(100);
        let r = Rect::point(pt(5.0, 1.0)); // i = 36
        assert!(tree.remove(&r, &36));
        assert_eq!(tree.len(), 99);
        assert!(!tree.remove(&r, &36), "double remove must fail");
        assert!(!tree.remove(&Rect::point(pt(500.0, 500.0)), &0));
        assert!(!tree.query_collect(&r).contains(&36));
        tree.check_invariants();
    }

    #[test]
    fn remove_everything_then_reuse() {
        let mut tree = grid_tree(300);
        for i in 0..300 {
            let p = pt((i % 31) as f64, (i / 31) as f64);
            assert!(tree.remove(&Rect::point(p), &i), "missing {i}");
            tree.check_invariants();
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        // The tree stays usable after total deletion.
        tree.insert_point(pt(1.0, 2.0), 7);
        assert_eq!(
            tree.query_collect(&Rect::centered(pt(1.0, 2.0), 0.5)),
            vec![7]
        );
    }

    #[test]
    fn condense_reinserts_orphans() {
        // Delete points from one spatial cluster so its nodes underflow;
        // everything else must remain queryable.
        let mut tree = RTree::with_max_entries(4);
        for i in 0..40 {
            tree.insert_point(pt(i as f64, 0.0), i);
        }
        for i in 10..30 {
            assert!(tree.remove(&Rect::point(pt(i as f64, 0.0)), &i));
        }
        assert_eq!(tree.len(), 20);
        let mut left: Vec<usize> = tree.query_collect(&Rect::new(pt(-1.0, -1.0), pt(50.0, 1.0)));
        left.sort();
        let expected: Vec<usize> = (0..10).chain(30..40).collect();
        assert_eq!(left, expected);
        tree.check_invariants();
    }

    #[test]
    fn update_moves_entry() {
        let mut tree = grid_tree(50);
        let old = Rect::point(pt(3.0, 0.0));
        assert!(tree.update(&old, Rect::point(pt(100.0, 100.0)), 3));
        assert!(!tree.query_collect(&old).contains(&3));
        assert_eq!(
            tree.query_collect(&Rect::centered(pt(100.0, 100.0), 0.1)),
            vec![3]
        );
        assert_eq!(tree.len(), 50);
        tree.check_invariants();
    }

    #[test]
    fn duplicate_rects_different_payloads() {
        let mut tree = RTree::new();
        let p = pt(1.0, 1.0);
        tree.insert_point(p, 'x');
        tree.insert_point(p, 'y');
        let mut hits = tree.query_collect(&Rect::point(p));
        hits.sort();
        assert_eq!(hits, vec!['x', 'y']);
        assert!(tree.remove(&Rect::point(p), &'x'));
        assert_eq!(tree.query_collect(&Rect::point(p)), vec!['y']);
    }

    #[test]
    fn three_dimensional_tree() {
        let mut tree: RTree<3, usize> = RTree::new();
        for i in 0..200 {
            let f = i as f64;
            tree.insert_point(Point::new([f % 5.0, (f / 5.0) % 5.0, f / 25.0]), i);
        }
        let hits = tree.query_collect(&Rect::new(
            Point::new([0.0, 0.0, 0.0]),
            Point::new([5.0, 5.0, 1.0]),
        ));
        let expected: Vec<usize> = (0..200).filter(|&i| (i as f64) / 25.0 <= 1.0).collect();
        let mut hits = hits;
        let mut expected = expected;
        hits.sort();
        expected.sort();
        assert_eq!(hits, expected);
        tree.check_invariants();
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let tree = grid_tree(123);
        let mut seen: Vec<usize> = tree.iter().map(|(_, &i)| i).collect();
        seen.sort();
        assert_eq!(seen, (0..123).collect::<Vec<_>>());
    }

    #[test]
    fn str_bulk_load_keeps_invariants_and_answers_queries() {
        for n in [0usize, 1, 4, 12, 13, 25, 100, 500, 2000] {
            let tree: RTree<2, usize> = RTree::from_points(
                12,
                (0..n).map(|i| (pt((i % 31) as f64, (i / 31) as f64), i)),
            );
            assert_eq!(tree.len(), n, "n = {n}");
            tree.check_invariants();
            let w = Rect::new(pt(2.5, 1.5), pt(7.5, 9.5));
            let mut hits = tree.query_collect(&w);
            hits.sort_unstable();
            let expected: Vec<usize> = (0..n)
                .filter(|i| w.contains_point(&pt((i % 31) as f64, (i / 31) as f64)))
                .collect();
            assert_eq!(hits, expected, "n = {n}");
        }
    }

    #[test]
    fn str_bulk_load_agrees_with_incremental_construction() {
        let bulk: RTree<2, usize> = RTree::from_points(
            8,
            (0..500).map(|i| (pt((i % 31) as f64, (i / 31) as f64), i)),
        );
        let mut inc: RTree<2, usize> = RTree::with_max_entries(8);
        for i in 0..500 {
            inc.insert_point(pt((i % 31) as f64, (i / 31) as f64), i);
        }
        let q = pt(7.3, 4.9);
        for metric in Metric::ALL {
            // Range queries: identical verified hit sets.
            let collect = |t: &RTree<2, usize>| {
                let mut out = Vec::new();
                t.query_within(&q, 3.0, metric, |_, &i| {
                    if metric.within(&pt((i % 31) as f64, (i / 31) as f64), &q, 3.0) {
                        out.push(i);
                    }
                });
                out.sort_unstable();
                out
            };
            assert_eq!(collect(&bulk), collect(&inc), "{metric}");
            // Nearest-neighbour results are tree-shape independent.
            assert_eq!(
                bulk.nearest(&q, 7, metric),
                inc.nearest(&q, 7, metric),
                "{metric}"
            );
        }
        // A bulk-loaded tree stays freely mutable.
        let mut bulk = bulk;
        assert!(bulk.remove(&Rect::point(pt(3.0, 0.0)), &3));
        bulk.insert_point(pt(100.0, 100.0), 777);
        bulk.check_invariants();
    }

    #[test]
    fn str_bulk_load_is_shallower_and_fuller_than_incremental() {
        let n = 3000;
        let bulk: RTree<2, usize> = RTree::from_points(
            12,
            (0..n).map(|i| (pt((i % 61) as f64, (i / 61) as f64), i)),
        );
        let mut inc: RTree<2, usize> = RTree::with_max_entries(12);
        for i in 0..n {
            inc.insert_point(pt((i % 61) as f64, (i / 61) as f64), i);
        }
        assert!(bulk.height() <= inc.height(), "packing must not be taller");
    }

    #[test]
    fn for_each_within_reuses_scratch_and_matches_query_within() {
        let tree = grid_tree(500);
        let mut stack = Vec::new();
        for metric in Metric::ALL {
            for (q, eps) in [(pt(5.2, 4.7), 2.5), (pt(-3.0, -3.0), 1.0)] {
                let mut a = Vec::new();
                tree.query_within(&q, eps, metric, |_, &i| a.push(i));
                let mut b = Vec::new();
                tree.for_each_within(&q, eps, metric, &mut stack, |_, &i| b.push(i));
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{metric} {q:?}");
            }
        }
    }

    #[test]
    fn interleaved_insert_remove_stress() {
        let mut tree = RTree::with_max_entries(6);
        let mut live: Vec<usize> = Vec::new();
        let mut state: u64 = 42;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let pos = |i: usize| pt((i % 17) as f64 * 1.5, (i / 17) as f64 * 0.5);
        for round in 0..600 {
            if live.is_empty() || next() % 3 != 0 {
                let id = round;
                tree.insert_point(pos(id), id);
                live.push(id);
            } else {
                let victim = live.swap_remove(next() % live.len());
                assert!(tree.remove(&Rect::point(pos(victim)), &victim));
            }
            if round % 97 == 0 {
                tree.check_invariants();
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), live.len());
        let w = Rect::new(pt(0.0, 0.0), pt(10.0, 5.0));
        let mut hits = tree.query_collect(&w);
        hits.sort();
        let mut expected: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| w.contains_point(&pos(i)))
            .collect();
        expected.sort();
        assert_eq!(hits, expected);
    }
}
