//! Regenerates the paper's tables and figures.
//!
//! The figure experiments benchmark the paper's *named* per-operator
//! procedures (All-Pairs / Bounds-Checking / on-the-fly Index), so they
//! drive the `sgb_core` execution layer directly; the unified `SgbQuery`
//! surface lowers into exactly these paths (see `tests/api_equivalence.rs`
//! at the workspace root).
//!
//! ```text
//! paper -- <experiment> [--scale f]
//!
//! experiments:
//!   fig9a fig9b fig9c fig9d      epsilon sweeps (Figure 9)
//!   fig10a fig10b fig10c fig10d  TPC-H scale sweeps (Figure 10)
//!   fig11a fig11b                SGB vs clustering (Figure 11)
//!   fig12a fig12b                SGB vs GROUP BY overhead (Figure 12)
//!   table1                       complexity fits (Table 1)
//!   table2                       evaluation queries (Table 2)
//!   all                          everything above
//! ```

use std::process::ExitCode;

use sgb_bench::experiments::{
    self, fig10_all, fig10_any, fig11, fig12, fig9_all, fig9_any, table1, table2, Experiment,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: paper <experiment> [--scale f]\n\
         experiments: fig9a fig9b fig9c fig9d fig10a fig10b fig10c fig10d \
         fig11a fig11b fig12a fig12b table1 table2 all"
    );
    ExitCode::FAILURE
}

fn run(which: &str, scale: f64) -> Option<Vec<Experiment>> {
    let one = |e: Experiment| Some(vec![e]);
    match which {
        "fig9a" => one(fig9_all('a', scale)),
        "fig9b" => one(fig9_all('b', scale)),
        "fig9c" => one(fig9_all('c', scale)),
        "fig9d" => one(fig9_any(scale)),
        "fig10a" => one(fig10_all('a', scale)),
        "fig10b" => one(fig10_all('b', scale)),
        "fig10c" => one(fig10_all('c', scale)),
        "fig10d" => one(fig10_any(scale)),
        "fig11a" => one(fig11('a', scale)),
        "fig11b" => one(fig11('b', scale)),
        "fig12a" => one(fig12('a', scale)),
        "fig12b" => one(fig12('b', scale)),
        "table1" => one(table1(scale)),
        "table2" => one(table2(scale)),
        "all" => {
            let mut out = Vec::new();
            for sub in ['a', 'b', 'c'] {
                out.push(fig9_all(sub, scale));
            }
            out.push(fig9_any(scale));
            for sub in ['a', 'b', 'c'] {
                out.push(fig10_all(sub, scale));
            }
            out.push(fig10_any(scale));
            out.push(fig11('a', scale));
            out.push(fig11('b', scale));
            out.push(fig12('a', scale));
            out.push(fig12('b', scale));
            out.push(experiments::table1(scale));
            out.push(experiments::table2(scale));
            Some(out)
        }
        _ => None,
    }
}

fn main() -> ExitCode {
    // Shared benchmark CLI loop; this binary prints CSV to stdout, so a
    // `--out` override is rejected as unknown usage.
    let cli = match sgb_bench::report::parse_bench_cli(std::env::args().skip(1)) {
        Ok(cli) if cli.out.is_none() => cli,
        _ => return usage(),
    };
    let Some(which) = cli.positional else {
        return usage();
    };
    let Some(experiments) = run(&which, cli.scale) else {
        return usage();
    };
    for e in experiments {
        e.print_csv();
        println!();
    }
    ExitCode::SUCCESS
}
