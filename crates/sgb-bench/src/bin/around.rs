//! SGB-Around benchmark: brute-force center scan (`Algorithm::AllPairs`
//! on the unified `SgbQuery` surface; the JSON label stays "BruteForce"
//! for report continuity) vs the bulk-loaded center R-tree, swept over
//! input cardinality and center count, written as JSON so the repository
//! accumulates a perf trajectory for the operator.
//!
//! ```text
//! around [--scale f] [--out path]
//! ```
//!
//! By default the report is written to `BENCH_around.json` at the
//! repository root (resolved relative to this crate's manifest) and a
//! human-readable table goes to stderr. The grid path and the cost-based
//! `Auto` selection are benchmarked separately by the `grid` binary.

use std::process::ExitCode;

use sgb_bench::experiments::around_comparison;
use sgb_bench::report::{parse_bench_cli, Report};

/// Default output path: `<repo root>/BENCH_around.json`.
fn default_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_around.json").to_owned()
}

fn main() -> ExitCode {
    let cli = match parse_bench_cli(std::env::args().skip(1)) {
        Ok(cli) if cli.positional.is_none() => cli,
        _ => {
            eprintln!("usage: around [--scale f] [--out path]");
            return ExitCode::FAILURE;
        }
    };
    let out_path = cli.out.unwrap_or_else(default_out);

    let (radius, rows) = around_comparison(cli.scale);

    eprintln!("# SGB-Around brute vs indexed: radius = {radius}");
    eprintln!(
        "{:<8} {:>8} {:>8} {:<12} {:>10} {:>9} {:>9}",
        "sweep", "x", "fixed", "algorithm", "seconds", "occupied", "outliers"
    );
    for r in &rows {
        eprintln!(
            "{:<8} {:>8} {:>8} {:<12} {:>10.4} {:>9} {:>9}",
            r.sweep, r.x, r.fixed, r.algorithm, r.seconds, r.occupied, r.outliers
        );
    }

    let mut report = Report::new("around_comparison")
        .field_num("radius", radius)
        .field_num("scale", cli.scale);
    for r in &rows {
        report.push_row(format!(
            "{{\"sweep\": \"{}\", \"x\": {}, \"fixed\": {}, \"algorithm\": \"{}\", \
             \"seconds\": {:.6}, \"occupied\": {}, \"outliers\": {}}}",
            r.sweep, r.x, r.fixed, r.algorithm, r.seconds, r.occupied, r.outliers
        ));
    }
    if let Err(e) = report.write(&out_path) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
