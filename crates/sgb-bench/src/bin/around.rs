//! SGB-Around benchmark: brute-force center scan vs the bulk-loaded center
//! R-tree, swept over input cardinality and center count, written as JSON
//! so the repository accumulates a perf trajectory for the operator.
//!
//! ```text
//! around [--scale f] [--out path]
//! ```
//!
//! By default the report is written to `BENCH_around.json` at the
//! repository root (resolved relative to this crate's manifest) and a
//! human-readable table goes to stderr.

use std::fmt::Write as _;
use std::process::ExitCode;

use sgb_bench::experiments::around_comparison;

/// Default output path: `<repo root>/BENCH_around.json`.
fn default_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_around.json").to_owned()
}

fn usage() -> ExitCode {
    eprintln!("usage: around [--scale f] [--out path]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut out_path = default_out();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(v) = args.get(i + 1).and_then(|s| sgb_bench::cli::parse_scale(s)) else {
                    return usage();
                };
                scale = v;
                i += 2;
            }
            "--out" => {
                let Some(p) = args.get(i + 1) else {
                    return usage();
                };
                out_path = p.clone();
                i += 2;
            }
            _ => return usage(),
        }
    }

    let (radius, rows) = around_comparison(scale);

    eprintln!("# SGB-Around brute vs indexed: radius = {radius}");
    eprintln!(
        "{:<8} {:>8} {:>8} {:<12} {:>10} {:>9} {:>9}",
        "sweep", "x", "fixed", "algorithm", "seconds", "occupied", "outliers"
    );
    for r in &rows {
        eprintln!(
            "{:<8} {:>8} {:>8} {:<12} {:>10.4} {:>9} {:>9}",
            r.sweep, r.x, r.fixed, r.algorithm, r.seconds, r.occupied, r.outliers
        );
    }

    // Hand-rolled JSON: every field is a number or a fixed identifier, so
    // no escaping is needed (no serde in the offline dependency set).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"around_comparison\",");
    let _ = writeln!(json, "  \"radius\": {radius},");
    let _ = writeln!(json, "  \"scale\": {scale},");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"sweep\": \"{}\", \"x\": {}, \"fixed\": {}, \"algorithm\": \"{}\", \
             \"seconds\": {:.6}, \"occupied\": {}, \"outliers\": {}}}{comma}",
            r.sweep, r.x, r.fixed, r.algorithm, r.seconds, r.occupied, r.outliers
        );
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {out_path}");
    ExitCode::SUCCESS
}
