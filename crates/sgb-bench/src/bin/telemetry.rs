//! Telemetry-overhead smoke bench: times the BENCH_grid SGB-Any grid row
//! bare (no telemetry handle), with an explicitly installed **disabled**
//! handle, and with a live profiling sink, and fails the run when the
//! disabled handle — the production default — costs more than the
//! budgeted overhead. This is the subsystem's zero-cost invariant as a
//! gate: when no profile sink is installed, the hot path must cost
//! nothing measurable. Results are written as JSON so the repository
//! accumulates the trajectory alongside the other BENCH_*.json reports.
//!
//! ```text
//! telemetry [--scale f] [--out path]
//! ```
//!
//! The gate is `< 2%` relative overhead on the best-of-k minima, with an
//! absolute noise floor (2 ms) so tiny CI-scale runs — where one
//! scheduler hiccup dwarfs the whole join — cannot flake the build.
//! It mirrors the `governor` bin's gate exactly.

use std::process::ExitCode;

use sgb_bench::experiments::telemetry_overhead;
use sgb_bench::report::{parse_bench_cli, Report};

/// Relative overhead budget for the disabled handle, percent.
const MAX_OVERHEAD_PCT: f64 = 2.0;
/// Absolute noise floor, seconds: deltas under this never fail the gate.
const NOISE_FLOOR_SECS: f64 = 0.002;

/// Default output path: `<repo root>/BENCH_telemetry.json`.
fn default_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json").to_owned()
}

fn main() -> ExitCode {
    let cli = match parse_bench_cli(std::env::args().skip(1)) {
        Ok(cli) if cli.positional.is_none() => cli,
        _ => {
            eprintln!("usage: telemetry [--scale f] [--out path]");
            return ExitCode::FAILURE;
        }
    };
    let out_path = cli.out.unwrap_or_else(default_out);

    let rows = telemetry_overhead(cli.scale);

    eprintln!("# telemetry checks: bare vs off-handle vs live sink, SGB-Any grid");
    eprintln!(
        "{:<8} {:<6} {:>12} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "n", "eps", "bare_s", "off_s", "off_over", "on_s", "on_over", "groups"
    );
    for r in &rows {
        eprintln!(
            "{:<8} {:<6} {:>12.6} {:>12.6} {:>9.2}% {:>12.6} {:>9.2}% {:>8}",
            r.n,
            r.eps,
            r.baseline_secs,
            r.disabled_secs,
            r.disabled_overhead_pct,
            r.enabled_secs,
            r.enabled_overhead_pct,
            r.groups
        );
    }

    let mut report = Report::new("telemetry_overhead").field_num("scale", cli.scale);
    for r in &rows {
        report.push_row(format!(
            "{{\"n\": {}, \"eps\": {}, \"baseline_secs\": {:.6}, \
             \"disabled_secs\": {:.6}, \"disabled_overhead_pct\": {:.3}, \
             \"enabled_secs\": {:.6}, \"enabled_overhead_pct\": {:.3}, \
             \"groups\": {}}}",
            r.n,
            r.eps,
            r.baseline_secs,
            r.disabled_secs,
            r.disabled_overhead_pct,
            r.enabled_secs,
            r.enabled_overhead_pct,
            r.groups
        ));
    }
    if let Err(e) = report.write(&out_path) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }

    let mut ok = true;
    for r in &rows {
        let delta = r.disabled_secs - r.baseline_secs;
        if r.disabled_overhead_pct > MAX_OVERHEAD_PCT && delta > NOISE_FLOOR_SECS {
            eprintln!(
                "telemetry overhead gate FAILED at n={}: {:+.2}% (> {MAX_OVERHEAD_PCT}%, \
                 delta {delta:.6}s > noise floor {NOISE_FLOOR_SECS}s)",
                r.n, r.disabled_overhead_pct
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
