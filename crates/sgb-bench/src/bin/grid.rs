//! Grid-engine benchmark: the ε-grid execution paths vs the R-tree-indexed
//! paths vs the scan baselines for all three similarity operators, with an
//! `Auto` row per sweep point showing the cost-based selection tracking
//! the per-configuration winner. Every operator is driven through the
//! unified `SgbQuery` surface with the family-wide `Algorithm` selector
//! (the SGB-Around "BruteForce" label is `Algorithm::AllPairs`, kept for
//! report continuity). Results are written as JSON so the repository
//! accumulates a perf trajectory for the grid engine.
//!
//! ```text
//! grid [--scale f] [--out path] [--threads n]
//! ```
//!
//! By default the report is written to `BENCH_grid.json` at the repository
//! root (resolved relative to this crate's manifest) and a human-readable
//! table goes to stderr. `--threads` overrides the worker count for the
//! main sweeps (0 = auto); a dedicated `threads` sweep always measures the
//! parallel grid paths at 1/2/4 workers. Every sweep point asserts that
//! all algorithms — and all thread counts — agree on the answer-group
//! count, so a full run doubles as an equivalence check.

use std::process::ExitCode;

use sgb_bench::experiments::grid_comparison;
use sgb_bench::report::{parse_bench_cli, Report};

/// Default output path: `<repo root>/BENCH_grid.json`.
fn default_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_grid.json").to_owned()
}

fn main() -> ExitCode {
    let cli = match parse_bench_cli(std::env::args().skip(1)) {
        Ok(cli) if cli.positional.is_none() => cli,
        _ => {
            eprintln!("usage: grid [--scale f] [--out path] [--threads n]");
            return ExitCode::FAILURE;
        }
    };
    let out_path = cli.out.unwrap_or_else(default_out);

    let rows = grid_comparison(cli.scale, cli.threads);

    eprintln!("# grid engine vs indexed vs scan (Auto = cost-based selection)");
    eprintln!(
        "{:<12} {:<8} {:>8} {:>8} {:<15} {:>8} {:>10} {:>8}",
        "op", "sweep", "x", "n", "algorithm", "threads", "seconds", "groups"
    );
    for r in &rows {
        eprintln!(
            "{:<12} {:<8} {:>8} {:>8} {:<15} {:>8} {:>10.4} {:>8}",
            r.op, r.sweep, r.x, r.n, r.algorithm, r.threads, r.seconds, r.groups
        );
    }

    let mut report = Report::new("grid_comparison").field_num("scale", cli.scale);
    for r in &rows {
        report.push_row(format!(
            "{{\"op\": \"{}\", \"sweep\": \"{}\", \"x\": {}, \"n\": {}, \
             \"algorithm\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \"groups\": {}}}",
            r.op, r.sweep, r.x, r.n, r.algorithm, r.threads, r.seconds, r.groups
        ));
    }
    if let Err(e) = report.write(&out_path) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
