//! Multi-query (shared-work) benchmark: 1000 mixed similarity queries
//! drawn from a fixed pool, executed twice over the same table — once by
//! a **cold** session (`SessionOptions::with_cache(false)`, every query
//! rebuilds its index from scratch) and once by a **warm** session with
//! the shared-work caches on (index cache with ε-superset grid reuse plus
//! the whole-result cache). Every query asserts that the two sessions
//! return bit-identical result tables, so a full run doubles as an
//! equivalence check; the report header carries the warm session's
//! `cache_stats()` counters so the JSON pins how much work was shared.
//!
//! ```text
//! mqo [--scale f] [--out path]
//! ```
//!
//! By default the report is written to `BENCH_mqo.json` at the repository
//! root and a per-pool-query table goes to stderr. The base table holds
//! `20_000 × scale` points; the query mix is deterministic (LCG), so two
//! runs at one scale measure the same workload.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

use sgb_bench::report::{parse_bench_cli, Report};
use sgb_relation::{Database, Schema, SessionOptions, Table, Value};

/// Default output path: `<repo root>/BENCH_mqo.json`.
fn default_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mqo.json").to_owned()
}

/// Total queries executed per session (repeats included).
const TOTAL_QUERIES: usize = 1000;

/// A deterministic LCG (same constants as the core tests) so the data
/// and the query schedule are reproducible without `rand`.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_usize(&mut self, bound: usize) -> usize {
        (self.next_f64() * bound as f64) as usize % bound.max(1)
    }
}

/// The uniform point table: `n` rows over `[0, 10)²`.
fn base_table(n: usize) -> Table {
    let mut rng = Lcg(0x5eed_1234_5678_9abc);
    let mut t = Table::empty(Schema::new(["x", "y"]));
    for _ in 0..n {
        let x = rng.next_f64() * 10.0;
        let y = rng.next_f64() * 10.0;
        t.push(vec![Value::Float(x), Value::Float(y)])
            .expect("generated rows match the schema");
    }
    t
}

/// The distinct-query pool: ε-grid SGB-Any sweeps (two metrics × a range
/// of ε, so ε-superset grid reuse has work to share), SGB-Around with a
/// center set large enough that `Auto` builds a center index, and a few
/// SGB-All shapes (result-cache only — its incremental index is never
/// shareable).
fn query_pool() -> Vec<(&'static str, String)> {
    let mut pool = Vec::new();
    for metric in ["L2", "LINF"] {
        for k in 0..16 {
            let eps = 0.25 + 0.05 * f64::from(k);
            pool.push((
                "any",
                format!(
                    "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY {metric} WITHIN {eps}"
                ),
            ));
        }
    }
    // 160 centers on a regular lattice: above the brute-force crossover,
    // so Auto builds (and the warm session caches) a center index.
    let mut centers = String::new();
    let mut rng = Lcg(0xc0ffee);
    for i in 0..160 {
        if i > 0 {
            centers.push_str(", ");
        }
        let x = rng.next_f64() * 10.0;
        let y = rng.next_f64() * 10.0;
        centers.push_str(&format!("({x}, {y})"));
    }
    for (metric, radius) in [("L2", 1.5), ("LINF", 1.0), ("L1", 2.0)] {
        pool.push((
            "around",
            format!(
                "SELECT count(*) FROM pts GROUP BY x, y AROUND ({centers}) {metric} WITHIN {radius}"
            ),
        ));
    }
    for eps in [3.0, 3.5, 4.0] {
        pool.push((
            "all",
            format!("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN {eps}"),
        ));
    }
    pool
}

/// Per-pool-query accumulators across the schedule's repeats.
#[derive(Default)]
struct Acc {
    runs: usize,
    seconds_cold: f64,
    seconds_warm: f64,
    groups_cold: usize,
    groups_warm: usize,
}

fn main() -> ExitCode {
    let cli = match parse_bench_cli(std::env::args().skip(1)) {
        Ok(cli) if cli.positional.is_none() && cli.threads == 0 => cli,
        _ => {
            eprintln!("usage: mqo [--scale f] [--out path]");
            return ExitCode::FAILURE;
        }
    };
    let out_path = cli.out.unwrap_or_else(default_out);
    let n = ((20_000.0 * cli.scale) as usize).max(16);

    let table = base_table(n);
    let mut cold = Database::with_options(SessionOptions::new().with_cache(false));
    let mut warm = Database::with_options(SessionOptions::new());
    cold.register("pts", table.clone());
    warm.register("pts", table);

    let pool = query_pool();
    let mut schedule = Lcg(0xdecade);
    let mut accs: BTreeMap<usize, Acc> = BTreeMap::new();
    let (mut total_cold, mut total_warm) = (0.0f64, 0.0f64);
    for _ in 0..TOTAL_QUERIES {
        let qi = schedule.next_usize(pool.len());
        let sql = &pool[qi].1;

        let t0 = Instant::now();
        let out_cold = cold.query(sql).expect("pool queries are valid");
        let dt_cold = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let out_warm = warm.query(sql).expect("pool queries are valid");
        let dt_warm = t1.elapsed().as_secs_f64();

        assert_eq!(
            out_cold, out_warm,
            "cold and warm sessions must return bit-identical tables for {sql}"
        );

        let acc = accs.entry(qi).or_default();
        acc.runs += 1;
        acc.seconds_cold += dt_cold;
        acc.seconds_warm += dt_warm;
        acc.groups_cold = out_cold.len();
        acc.groups_warm = out_warm.len();
        total_cold += dt_cold;
        total_warm += dt_warm;
    }

    let stats = warm.cache_stats();
    let speedup = total_cold / total_warm.max(1e-12);
    eprintln!("# shared-work multi-query: {TOTAL_QUERIES} queries, n = {n}");
    eprintln!(
        "# cold {total_cold:.3}s  warm {total_warm:.3}s  speedup {speedup:.1}x  \
         index {}h/{}m  result {}h/{}m  evictions {}  validations skipped {}",
        stats.index_hits,
        stats.index_misses,
        stats.result_hits,
        stats.result_misses,
        stats.evictions,
        stats.validations_skipped
    );
    eprintln!(
        "{:<8} {:<6} {:>6} {:>12} {:>12} {:>8} {:>8}",
        "op", "query", "runs", "cold_s", "warm_s", "g_cold", "g_warm"
    );
    for (qi, acc) in &accs {
        eprintln!(
            "{:<8} {:<6} {:>6} {:>12.4} {:>12.4} {:>8} {:>8}",
            pool[*qi].0,
            qi,
            acc.runs,
            acc.seconds_cold,
            acc.seconds_warm,
            acc.groups_cold,
            acc.groups_warm
        );
    }

    let mut report = Report::new("mqo_shared_work")
        .field_num("scale", cli.scale)
        .field_num("n", n as f64)
        .field_num("queries", TOTAL_QUERIES as f64)
        .field_num("pool", pool.len() as f64)
        .field_num("seconds_cold", total_cold)
        .field_num("seconds_warm", total_warm)
        .field_num("speedup", speedup)
        .field_num("index_hits", stats.index_hits as f64)
        .field_num("index_misses", stats.index_misses as f64)
        .field_num("result_hits", stats.result_hits as f64)
        .field_num("result_misses", stats.result_misses as f64)
        .field_num("evictions", stats.evictions as f64)
        .field_num("validations_skipped", stats.validations_skipped as f64);
    for (qi, acc) in &accs {
        report.push_row(format!(
            "{{\"op\": \"{}\", \"query\": {}, \"runs\": {}, \"seconds_cold\": {:.6}, \
             \"seconds_warm\": {:.6}, \"groups_cold\": {}, \"groups_warm\": {}}}",
            pool[*qi].0,
            qi,
            acc.runs,
            acc.seconds_cold,
            acc.seconds_warm,
            acc.groups_cold,
            acc.groups_warm
        ));
    }
    if let Err(e) = report.write(&out_path) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
