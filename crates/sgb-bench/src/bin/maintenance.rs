//! Incremental maintenance benchmark: a steady-state update stream
//! (alternating inserts and deletes, so cardinality stays ~`n`) applied to
//! a [`MaintainedGrouping`] versus re-running the query from scratch after
//! every update — one row per operator family. The incremental figure
//! charges the full serving cost at the engine's native cadence: every
//! delta application plus the snapshot materialisation that publishes the
//! result (SGB-All's lazily deferred rebuild is therefore *included*).
//! The baseline figure is the per-update cost of the only alternative, a
//! full `SgbQuery::run` over the live points. Each row asserts that the
//! final maintained snapshot equals the from-scratch recompute — full
//! `Grouping` equality — so a run doubles as an equivalence check, and the
//! per-row group counts let CI diff the two paths textually.
//!
//! The header also reports `snapshot_read_ns`: the cost for a concurrent
//! reader to take a published snapshot from a live subscription at the
//! relation layer (an `Arc` clone under a read lock — independent of `n`).
//!
//! ```text
//! maintenance [--scale f] [--out path]
//! ```
//!
//! By default the report is written to `BENCH_incremental.json` at the
//! repository root; the committed copy is regenerated manually at full
//! scale (`n = 20_000`).

use std::process::ExitCode;
use std::time::Instant;

use sgb_bench::report::{parse_bench_cli, Report};
use sgb_core::incremental::MaintainedGrouping;
use sgb_core::query::SgbQuery;
use sgb_geom::{Metric, Point};
use sgb_relation::{Database, Schema, Table, Value};

/// Default output path: `<repo root>/BENCH_incremental.json`.
fn default_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json").to_owned()
}

/// Updates applied to the maintained grouping (timed incrementally).
const UPDATES: usize = 500;

/// Updates for the from-scratch baseline (each one pays a full run, so a
/// handful suffices for a stable per-update figure).
const FULL_UPDATES: usize = 6;

/// Snapshot reads timed at the relation layer.
const SNAPSHOT_READS: usize = 100_000;

/// A deterministic LCG (same constants as the core tests) so the data and
/// the update stream are reproducible without `rand`.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_usize(&mut self, bound: usize) -> usize {
        (self.next_f64() * bound as f64) as usize % bound.max(1)
    }

    fn next_point(&mut self) -> Point<2> {
        Point::new([self.next_f64() * 100.0, self.next_f64() * 100.0])
    }
}

/// Uniform points over `[0, 100)²` — ε = 0.3 keeps component sizes small
/// at `n = 20_000` (≈ 2 points per unit square), the regime where
/// maintenance is interesting: most deltas touch a handful of tuples.
fn base_points(n: usize, rng: &mut Lcg) -> Vec<Point<2>> {
    (0..n).map(|_| rng.next_point()).collect()
}

/// The benchmarked query per operator family.
fn queries(rng: &mut Lcg) -> Vec<(&'static str, SgbQuery<2>)> {
    let centers: Vec<Point<2>> = (0..64).map(|_| rng.next_point()).collect();
    vec![
        ("any", SgbQuery::any(0.3).metric(Metric::L2)),
        ("all", SgbQuery::all(0.3).metric(Metric::L2)),
        (
            "around",
            SgbQuery::around(centers).max_radius(2.0).metric(Metric::L2),
        ),
    ]
}

/// One steady-state update: even steps insert a fresh point, odd steps
/// delete a random live slot. `live` tracks live slot ids; `mirror` the
/// slot table (for the baseline's from-scratch reruns).
enum Update {
    Insert(Point<2>),
    DeleteNth(usize),
}

fn schedule(rng: &mut Lcg, updates: usize) -> Vec<Update> {
    (0..updates)
        .map(|step| {
            if step % 2 == 0 {
                Update::Insert(rng.next_point())
            } else {
                Update::DeleteNth(rng.next_usize(usize::MAX))
            }
        })
        .collect()
}

struct OpRow {
    op: &'static str,
    seconds_deltas: f64,
    seconds_snapshot: f64,
    incr_updates_per_sec: f64,
    full_seconds_per_update: f64,
    speedup: f64,
    groups_incremental: usize,
    groups_recompute: usize,
}

/// Runs one operator family: the timed incremental stream, the timed
/// from-scratch baseline, and the end-state equivalence assertion.
fn run_op(op: &'static str, query: &SgbQuery<2>, points: &[Point<2>]) -> OpRow {
    let mut rng = Lcg(0xfeed_0000 + op.len() as u64);
    let stream = schedule(&mut rng, UPDATES);

    // Incremental: apply every delta, then materialise the snapshot the
    // serving layer would publish (this is where SGB-All pays any owed
    // rebuild, so the figure is end to end).
    let mut maintained = MaintainedGrouping::new(query.clone(), points);
    let mut live: Vec<usize> = (0..points.len()).collect();
    let t0 = Instant::now();
    for u in &stream {
        match u {
            Update::Insert(p) => live.push(maintained.insert(*p)),
            Update::DeleteNth(raw) => {
                let slot = live.swap_remove(raw % live.len());
                assert!(maintained.delete(slot), "scheduled slots are live");
            }
        }
    }
    let seconds_deltas = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let incremental = maintained.snapshot();
    let seconds_snapshot = t1.elapsed().as_secs_f64();

    // Baseline: the same stream prefix, recomputing from scratch after
    // every update — the only option without the maintenance engine.
    let mut rng = Lcg(0xfeed_0000 + op.len() as u64);
    let prefix = schedule(&mut rng, FULL_UPDATES);
    let mut mirror: Vec<Option<Point<2>>> = points.iter().copied().map(Some).collect();
    let mut live: Vec<usize> = (0..points.len()).collect();
    let t2 = Instant::now();
    for u in &prefix {
        match u {
            Update::Insert(p) => {
                live.push(mirror.len());
                mirror.push(Some(*p));
            }
            Update::DeleteNth(raw) => {
                let slot = live.swap_remove(raw % live.len());
                mirror[slot] = None;
            }
        }
        let pts: Vec<Point<2>> = mirror.iter().flatten().copied().collect();
        std::hint::black_box(query.run(&pts));
    }
    let full_seconds_per_update = t2.elapsed().as_secs_f64() / FULL_UPDATES as f64;

    // Equivalence gate: the maintained end state equals a from-scratch
    // run over the final live points (full Grouping equality).
    let recompute = query.run(&maintained.live_points());
    assert_eq!(
        incremental, recompute,
        "maintained {op} grouping must equal the from-scratch recompute"
    );

    let incr_seconds_per_update = (seconds_deltas + seconds_snapshot) / UPDATES as f64;
    OpRow {
        op,
        seconds_deltas,
        seconds_snapshot,
        incr_updates_per_sec: 1.0 / incr_seconds_per_update,
        full_seconds_per_update,
        speedup: full_seconds_per_update / incr_seconds_per_update,
        groups_incremental: incremental.num_groups(),
        groups_recompute: recompute.num_groups(),
    }
}

/// Times a published-snapshot read at the relation layer: `n` rows,
/// one live subscription, one mutation so the snapshot is epoch 1.
fn snapshot_read_ns(points: &[Point<2>]) -> f64 {
    let mut t = Table::empty(Schema::new(["x", "y"]));
    for p in points {
        t.push(vec![Value::Float(p.coord(0)), Value::Float(p.coord(1))])
            .expect("generated rows match the schema");
    }
    let mut db = Database::new();
    db.register("pts", t);
    let sub = db
        .subscribe("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.3")
        .expect("subscription over a registered base table");
    db.execute("INSERT INTO pts VALUES (50.0, 50.0)")
        .expect("insert applies the delta");
    assert_eq!(sub.snapshot().epoch(), 1);
    let t0 = Instant::now();
    for _ in 0..SNAPSHOT_READS {
        std::hint::black_box(sub.snapshot());
    }
    t0.elapsed().as_secs_f64() * 1e9 / SNAPSHOT_READS as f64
}

fn main() -> ExitCode {
    let cli = match parse_bench_cli(std::env::args().skip(1)) {
        Ok(cli) if cli.positional.is_none() && cli.threads == 0 => cli,
        _ => {
            eprintln!("usage: maintenance [--scale f] [--out path]");
            return ExitCode::FAILURE;
        }
    };
    let out_path = cli.out.unwrap_or_else(default_out);
    let n = ((20_000.0 * cli.scale) as usize).max(64);

    let mut rng = Lcg(0x5eed_1234_5678_9abc);
    let points = base_points(n, &mut rng);
    let queries = queries(&mut rng);

    eprintln!("# incremental maintenance: n = {n}, {UPDATES} updates per operator");
    eprintln!(
        "{:<8} {:>12} {:>12} {:>14} {:>14} {:>9} {:>8}",
        "op", "deltas_s", "snapshot_s", "incr_upd/s", "full_upd/s", "speedup", "groups"
    );
    let mut rows = Vec::new();
    for (op, query) in &queries {
        let row = run_op(op, query, &points);
        eprintln!(
            "{:<8} {:>12.4} {:>12.4} {:>14.1} {:>14.1} {:>9.1} {:>8}",
            row.op,
            row.seconds_deltas,
            row.seconds_snapshot,
            row.incr_updates_per_sec,
            1.0 / row.full_seconds_per_update,
            row.speedup,
            row.groups_incremental
        );
        rows.push(row);
    }
    let read_ns = snapshot_read_ns(&points);
    eprintln!("# published-snapshot read: {read_ns:.0} ns (Arc clone under a read lock)");

    let mut report = Report::new("incremental_maintenance")
        .field_num("scale", cli.scale)
        .field_num("n", n as f64)
        .field_num("updates", UPDATES as f64)
        .field_num("full_updates", FULL_UPDATES as f64)
        .field_num("snapshot_read_ns", read_ns);
    for row in &rows {
        report.push_row(format!(
            "{{\"op\": \"{}\", \"seconds_deltas\": {:.6}, \"seconds_snapshot\": {:.6}, \
             \"incr_updates_per_sec\": {:.1}, \"full_seconds_per_update\": {:.6}, \
             \"speedup\": {:.2}, \"groups_incremental\": {}, \"groups_recompute\": {}}}",
            row.op,
            row.seconds_deltas,
            row.seconds_snapshot,
            row.incr_updates_per_sec,
            row.full_seconds_per_update,
            row.speedup,
            row.groups_incremental,
            row.groups_recompute
        ));
    }
    if let Err(e) = report.write(&out_path) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
