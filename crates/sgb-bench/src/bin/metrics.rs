//! Metric-comparison benchmark: times every SGB-All / SGB-Any algorithm
//! (selected through the unified `SgbQuery`/`Algorithm` surface) under
//! every supported metric (`L1` / `L2` / `LINF`) and writes the results
//! as JSON so the repository accumulates a perf trajectory.
//!
//! ```text
//! metrics [--scale f] [--out path]
//! ```
//!
//! By default the report is written to `BENCH_metrics.json` at the
//! repository root (resolved relative to this crate's manifest) and a
//! human-readable table goes to stderr.

use std::process::ExitCode;

use sgb_bench::experiments::metric_comparison;
use sgb_bench::report::{parse_bench_cli, Report};

/// Default output path: `<repo root>/BENCH_metrics.json`.
fn default_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_metrics.json").to_owned()
}

fn main() -> ExitCode {
    let cli = match parse_bench_cli(std::env::args().skip(1)) {
        Ok(cli) if cli.positional.is_none() => cli,
        _ => {
            eprintln!("usage: metrics [--scale f] [--out path]");
            return ExitCode::FAILURE;
        }
    };
    let out_path = cli.out.unwrap_or_else(default_out);

    let (n, eps, rows) = metric_comparison(cli.scale);

    eprintln!("# metric comparison: n = {n}, eps = {eps}");
    eprintln!(
        "{:<8} {:<15} {:<6} {:>10} {:>8}",
        "op", "algorithm", "metric", "seconds", "groups"
    );
    for r in &rows {
        eprintln!(
            "{:<8} {:<15} {:<6} {:>10.4} {:>8}",
            r.op, r.algorithm, r.metric, r.seconds, r.groups
        );
    }

    let mut report = Report::new("metric_comparison")
        .field_num("n", n as f64)
        .field_num("eps", eps)
        .field_num("scale", cli.scale);
    for r in &rows {
        report.push_row(format!(
            "{{\"op\": \"{}\", \"algorithm\": \"{}\", \"metric\": \"{}\", \
             \"seconds\": {:.6}, \"groups\": {}}}",
            r.op, r.algorithm, r.metric, r.seconds, r.groups
        ));
    }
    if let Err(e) = report.write(&out_path) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
