//! Metric-comparison benchmark: times every SGB-All / SGB-Any algorithm
//! under every supported metric (`L1` / `L2` / `LINF`) and writes the
//! results as JSON so the repository accumulates a perf trajectory.
//!
//! ```text
//! metrics [--scale f] [--out path]
//! ```
//!
//! By default the report is written to `BENCH_metrics.json` at the
//! repository root (resolved relative to this crate's manifest) and a
//! human-readable table goes to stderr.

use std::fmt::Write as _;
use std::process::ExitCode;

use sgb_bench::experiments::metric_comparison;

/// Default output path: `<repo root>/BENCH_metrics.json`.
fn default_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_metrics.json").to_owned()
}

fn usage() -> ExitCode {
    eprintln!("usage: metrics [--scale f] [--out path]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut out_path = default_out();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(v) = args.get(i + 1).and_then(|s| sgb_bench::cli::parse_scale(s)) else {
                    return usage();
                };
                scale = v;
                i += 2;
            }
            "--out" => {
                let Some(p) = args.get(i + 1) else {
                    return usage();
                };
                out_path = p.clone();
                i += 2;
            }
            _ => return usage(),
        }
    }

    let (n, eps, rows) = metric_comparison(scale);

    eprintln!("# metric comparison: n = {n}, eps = {eps}");
    eprintln!(
        "{:<8} {:<15} {:<6} {:>10} {:>8}",
        "op", "algorithm", "metric", "seconds", "groups"
    );
    for r in &rows {
        eprintln!(
            "{:<8} {:<15} {:<6} {:>10.4} {:>8}",
            r.op, r.algorithm, r.metric, r.seconds, r.groups
        );
    }

    // Hand-rolled JSON: every field is a number or a fixed identifier, so
    // no escaping is needed (no serde in the offline dependency set).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"metric_comparison\",");
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"eps\": {eps},");
    let _ = writeln!(json, "  \"scale\": {scale},");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"algorithm\": \"{}\", \"metric\": \"{}\", \
             \"seconds\": {:.6}, \"groups\": {}}}{comma}",
            r.op, r.algorithm, r.metric, r.seconds, r.groups
        );
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {out_path}");
    ExitCode::SUCCESS
}
