//! Governor-overhead smoke bench: times the BENCH_grid SGB-Any grid row
//! as the legacy infallible `run` vs `try_run` under an **unrestricted**
//! `QueryGovernor`, and fails the run when the governor's cooperative
//! deadline/cancellation checks cost more than the budgeted overhead.
//! Results are written as JSON so the repository accumulates the
//! trajectory alongside the other BENCH_*.json reports.
//!
//! ```text
//! governor [--scale f] [--out path]
//! ```
//!
//! The gate is `< 2%` relative overhead on the best-of-k minima, with an
//! absolute noise floor (2 ms) so tiny CI-scale runs — where one
//! scheduler hiccup dwarfs the whole join — cannot flake the build.

use std::process::ExitCode;

use sgb_bench::experiments::governor_overhead;
use sgb_bench::report::{parse_bench_cli, Report};

/// Relative overhead budget, percent.
const MAX_OVERHEAD_PCT: f64 = 2.0;
/// Absolute noise floor, seconds: deltas under this never fail the gate.
const NOISE_FLOOR_SECS: f64 = 0.002;

/// Default output path: `<repo root>/BENCH_governor.json`.
fn default_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_governor.json").to_owned()
}

fn main() -> ExitCode {
    let cli = match parse_bench_cli(std::env::args().skip(1)) {
        Ok(cli) if cli.positional.is_none() => cli,
        _ => {
            eprintln!("usage: governor [--scale f] [--out path]");
            return ExitCode::FAILURE;
        }
    };
    let out_path = cli.out.unwrap_or_else(default_out);

    let rows = governor_overhead(cli.scale);

    eprintln!("# governor checks: run vs try_run(unrestricted), SGB-Any grid");
    eprintln!(
        "{:<8} {:<6} {:>12} {:>12} {:>10} {:>8}",
        "n", "eps", "run_s", "try_run_s", "overhead", "groups"
    );
    for r in &rows {
        eprintln!(
            "{:<8} {:<6} {:>12.6} {:>12.6} {:>9.2}% {:>8}",
            r.n, r.eps, r.ungoverned_secs, r.governed_secs, r.overhead_pct, r.groups
        );
    }

    let mut report = Report::new("governor_overhead").field_num("scale", cli.scale);
    for r in &rows {
        report.push_row(format!(
            "{{\"n\": {}, \"eps\": {}, \"ungoverned_secs\": {:.6}, \
             \"governed_secs\": {:.6}, \"overhead_pct\": {:.3}, \"groups\": {}}}",
            r.n, r.eps, r.ungoverned_secs, r.governed_secs, r.overhead_pct, r.groups
        ));
    }
    if let Err(e) = report.write(&out_path) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }

    let mut ok = true;
    for r in &rows {
        let delta = r.governed_secs - r.ungoverned_secs;
        if r.overhead_pct > MAX_OVERHEAD_PCT && delta > NOISE_FLOOR_SECS {
            eprintln!(
                "governor overhead gate FAILED at n={}: {:+.2}% (> {MAX_OVERHEAD_PCT}%, \
                 delta {delta:.6}s > noise floor {NOISE_FLOOR_SECS}s)",
                r.n, r.overhead_pct
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
