//! The evaluation queries of Table 2, adapted to this engine.
//!
//! Deviations from the paper's listing (documented in DESIGN.md):
//!
//! * The paper's SGB5/SGB6 reference `s_acctbal` inside a
//!   `FROM lineitem`-only subquery — a typo in the listing; the supplier
//!   join is restored here.
//! * The grouping attributes are rescaled inside the query
//!   (`tp / 3000000.0` etc.) so one ε works across both dimensions; the
//!   paper's ε values (0.1–0.9) likewise presuppose normalised attributes.
//! * Selectivity thresholds (`sum(l_quantity) > …`, `o_totalprice > …`)
//!   are scaled to this generator's cardinalities (the official values
//!   would select almost nothing at laptop scale).

/// GB1 — the standard-group-by baseline of SGB1/SGB2 (TPC-H Q18 shape:
/// large-volume customers).
pub const GB1: &str = "\
SELECT c_custkey, sum(o_totalprice) AS spend \
FROM customer, orders \
WHERE c_custkey = o_custkey \
  AND o_orderkey IN (SELECT l_orderkey FROM lineitem \
                     GROUP BY l_orderkey HAVING sum(l_quantity) > 100) \
GROUP BY c_custkey";

/// SGB1/SGB2 template — customers with similar buying power and account
/// balance. `{SIMILARITY}` is replaced by a `DISTANCE-…` clause tail.
pub const SGB1_TEMPLATE: &str = "\
SELECT max(ab), min(tp), max(tp), avg(ab), array_agg(r1.c_custkey) \
FROM (SELECT c_custkey, c_acctbal AS ab FROM customer WHERE c_acctbal > 100) AS r1, \
     (SELECT o_custkey, sum(o_totalprice) AS tp FROM orders \
      WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem \
                           GROUP BY l_orderkey HAVING sum(l_quantity) > 100) \
        AND o_totalprice > 30000 \
      GROUP BY o_custkey) AS r2 \
WHERE r1.c_custkey = r2.o_custkey \
GROUP BY ab / 11000.0, tp / 3000000.0 {SIMILARITY}";

/// GB2 — the standard-group-by baseline of SGB3/SGB4 (TPC-H Q9 shape:
/// product-type profit). Equality grouping over the same derived profit
/// relation the SGB variants group similarly.
pub const GB2: &str = "\
SELECT count(*), sum(tprof), sum(stime) \
FROM (SELECT ps_partkey AS partkey, \
             sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS tprof, \
             sum(l_receiptdate - l_shipdate) AS stime \
      FROM lineitem, partsupp, supplier \
      WHERE ps_partkey = l_partkey AND s_suppkey = ps_suppkey \
      GROUP BY ps_partkey) AS profit \
GROUP BY tprof, stime";

/// SGB3/SGB4 template — parts with similar profit and shipment time.
pub const SGB3_TEMPLATE: &str = "\
SELECT count(*), sum(tprof), sum(stime) \
FROM (SELECT ps_partkey AS partkey, \
             sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS tprof, \
             sum(l_receiptdate - l_shipdate) AS stime \
      FROM lineitem, partsupp, supplier \
      WHERE ps_partkey = l_partkey AND s_suppkey = ps_suppkey \
      GROUP BY ps_partkey) AS profit \
GROUP BY tprof / 10000000.0, stime / 3000.0 {SIMILARITY}";

/// GB3 — the standard-group-by baseline of SGB5/SGB6 (TPC-H Q15 shape:
/// top supplier revenue).
pub const GB3: &str = "\
SELECT l_suppkey, sum(l_extendedprice * (1 - l_discount)) AS trevenue \
FROM lineitem \
WHERE l_shipdate > date '1995-01-01' \
  AND l_shipdate < date '1995-01-01' + interval '10' month \
GROUP BY l_suppkey";

/// SGB5/SGB6 template — suppliers with similar revenue and account
/// balance (supplier join restored, see module docs).
pub const SGB5_TEMPLATE: &str = "\
SELECT array_agg(suppkey), sum(trevenue), sum(acctbal) \
FROM (SELECT l_suppkey AS suppkey, \
             sum(l_extendedprice * (1 - l_discount)) AS trevenue, \
             max(s_acctbal) AS acctbal \
      FROM lineitem, supplier \
      WHERE s_suppkey = l_suppkey \
        AND l_shipdate > date '1995-01-01' \
        AND l_shipdate < date '1995-01-01' + interval '10' month \
      GROUP BY l_suppkey) AS r \
GROUP BY trevenue / 100000000.0, acctbal / 10000.0 {SIMILARITY}";

/// Fills a `{SIMILARITY}` template with a `DISTANCE-TO-ALL` clause.
pub fn with_sgb_all(template: &str, eps: f64, metric: &str, overlap: &str) -> String {
    template.replace(
        "{SIMILARITY}",
        &format!("DISTANCE-TO-ALL {metric} WITHIN {eps} ON-OVERLAP {overlap}"),
    )
}

/// Fills a `{SIMILARITY}` template with a `DISTANCE-TO-ANY` clause.
pub fn with_sgb_any(template: &str, eps: f64, metric: &str) -> String {
    template.replace(
        "{SIMILARITY}",
        &format!("DISTANCE-TO-ANY {metric} WITHIN {eps}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgb_datagen::TpchConfig;
    use sgb_relation::Database;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        TpchConfig::new(1.0)
            .density(0.0005)
            .generate()
            .register_all(&mut db);
        db
    }

    #[test]
    fn every_table2_query_parses_and_runs() {
        let db = tiny_db();
        let all = with_sgb_all(SGB1_TEMPLATE, 0.2, "L2", "JOIN-ANY");
        let queries: Vec<String> = vec![
            GB1.into(),
            all,
            with_sgb_any(SGB1_TEMPLATE, 0.2, "L2"),
            GB2.into(),
            with_sgb_all(SGB3_TEMPLATE, 0.2, "LINF", "ELIMINATE"),
            with_sgb_any(SGB3_TEMPLATE, 0.2, "LINF"),
            GB3.into(),
            with_sgb_all(SGB5_TEMPLATE, 0.2, "L2", "FORM-NEW-GROUP"),
            with_sgb_any(SGB5_TEMPLATE, 0.2, "L2"),
        ];
        for q in &queries {
            let out = db
                .query(q)
                .unwrap_or_else(|e| panic!("query failed: {e}\n{q}"));
            // Results exist and are well-formed (group counts > 0 whenever
            // the generator produced qualifying rows).
            assert!(!out.schema.is_empty(), "query: {q}");
        }
    }

    #[test]
    fn sgb_groups_at_most_standard_groups() {
        // Similarity grouping can only merge equality groups (ε ≥ 0), so
        // the SGB-Any variant never yields more groups than equality
        // grouping over the same derived relation.
        let db = tiny_db();
        let gb = db.query(GB2).unwrap();
        let sgb = db.query(&with_sgb_any(SGB3_TEMPLATE, 0.2, "L2")).unwrap();
        assert!(sgb.len() <= gb.len(), "{} > {}", sgb.len(), gb.len());
        assert!(!sgb.is_empty());
    }

    #[test]
    fn templates_have_placeholder() {
        for t in [SGB1_TEMPLATE, SGB3_TEMPLATE, SGB5_TEMPLATE] {
            assert!(t.contains("{SIMILARITY}"));
            assert!(!with_sgb_any(t, 0.1, "L2").contains("{SIMILARITY}"));
        }
    }
}
