//! Wall-clock timing helpers.

use std::time::Instant;

/// Runs `f`, returning its result and the elapsed wall-clock seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_elapsed_time() {
        let ((), secs) = time(|| std::thread::sleep(std::time::Duration::from_millis(20)));
        assert!(secs >= 0.019, "got {secs}");
        assert!(secs < 1.0, "got {secs}");
    }

    #[test]
    fn passes_through_result() {
        let (v, _) = time(|| 21 * 2);
        assert_eq!(v, 42);
    }
}
