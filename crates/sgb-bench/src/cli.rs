//! Shared command-line helpers for the `paper` and `metrics` binaries.

/// Parses a `--scale` value: must be a finite, strictly positive float
/// (rejects `inf`, which would make the scaled cardinalities overflow).
pub fn parse_scale(s: &str) -> Option<f64> {
    let v: f64 = s.parse().ok()?;
    (v.is_finite() && v > 0.0).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_finite() {
        assert_eq!(parse_scale("1"), Some(1.0));
        assert_eq!(parse_scale("0.25"), Some(0.25));
        assert_eq!(parse_scale("2e1"), Some(20.0));
    }

    #[test]
    fn rejects_garbage_and_non_finite() {
        for bad in ["0", "-1", "nan", "inf", "-inf", "abc", ""] {
            assert_eq!(parse_scale(bad), None, "{bad}");
        }
    }
}
