//! Shared benchmark-report plumbing: the `--scale` / `--out` CLI loop and
//! the hand-rolled JSON report writer previously duplicated across the
//! `paper`, `metrics`, and `around` binaries, plus a dependency-free JSON
//! validity checker used by CI to assert the committed `BENCH_*.json`
//! files stay parseable.
//!
//! The offline dependency set has no serde, so reports are rendered by
//! hand; [`Report`] centralises the envelope (`experiment` name, scalar
//! header fields, a `rows` array) while each binary renders its own row
//! objects (every field is a number or a fixed identifier, so no escaping
//! is needed).

use std::fmt::Write as _;

/// Parsed common benchmark CLI:
/// `[positional] [--scale f] [--out path] [--threads n]`.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCli {
    /// Workload multiplier (`--scale`), validated by
    /// [`crate::cli::parse_scale`]. Defaults to `1.0`.
    pub scale: f64,
    /// Output path override (`--out`), when the binary writes a report.
    pub out: Option<String>,
    /// Worker-thread override (`--threads`, 0 = auto) for binaries with
    /// parallel execution paths. Defaults to `0`.
    pub threads: usize,
    /// First free-standing argument (the `paper` binary's experiment
    /// name); at most one is accepted.
    pub positional: Option<String>,
}

/// Parses the common benchmark argument loop. Returns `Err` with the
/// offending token on malformed input (callers print their usage string).
pub fn parse_bench_cli(args: impl IntoIterator<Item = String>) -> Result<BenchCli, String> {
    let args: Vec<String> = args.into_iter().collect();
    let mut cli = BenchCli {
        scale: 1.0,
        out: None,
        threads: 0,
        positional: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(v) = args.get(i + 1).and_then(|s| crate::cli::parse_scale(s)) else {
                    return Err("--scale requires a positive finite number".into());
                };
                cli.scale = v;
                i += 2;
            }
            "--out" => {
                let Some(p) = args.get(i + 1) else {
                    return Err("--out requires a path".into());
                };
                cli.out = Some(p.clone());
                i += 2;
            }
            "--threads" => {
                let Some(t) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    return Err("--threads requires a non-negative integer".into());
                };
                cli.threads = t;
                i += 2;
            }
            "--help" | "-h" => return Err("help requested".into()),
            other if cli.positional.is_none() && !other.starts_with('-') => {
                cli.positional = Some(other.to_owned());
                i += 1;
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(cli)
}

/// A benchmark report: scalar header fields plus a `rows` array of
/// pre-rendered JSON objects, rendered in insertion order.
#[derive(Clone, Debug, Default)]
pub struct Report {
    header: Vec<(String, String)>,
    rows: Vec<String>,
}

impl Report {
    /// A report for the named experiment.
    pub fn new(experiment: &str) -> Self {
        let mut r = Self::default();
        r.header
            .push(("experiment".into(), format!("\"{experiment}\"")));
        r
    }

    /// Adds a numeric header field.
    pub fn field_num(mut self, key: &str, value: f64) -> Self {
        self.header.push((key.into(), format!("{value}")));
        self
    }

    /// Appends one row (a rendered JSON object, `{…}` without trailing
    /// comma).
    pub fn push_row(&mut self, rendered: String) {
        debug_assert!(rendered.starts_with('{') && rendered.ends_with('}'));
        self.rows.push(rendered);
    }

    /// Renders the full report. Every emitted report round-trips through
    /// [`validate`].
    pub fn render(&self) -> String {
        let mut json = String::from("{\n");
        for (key, value) in &self.header {
            let _ = writeln!(json, "  \"{key}\": {value},");
        }
        json.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(json, "    {row}{comma}");
        }
        json.push_str("  ]\n}\n");
        debug_assert!(validate(&json).is_ok(), "report must render valid JSON");
        json
    }

    /// Renders and writes the report, logging the destination to stderr
    /// (the established behaviour of the report binaries).
    pub fn write(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.render()).map_err(|e| format!("failed to write {path}: {e}"))?;
        eprintln!("# wrote {path}");
        Ok(())
    }
}

/// Minimal recursive-descent JSON validator (no serde in the offline
/// dependency set): accepts exactly one JSON value surrounded by
/// whitespace. Used by CI to assert the committed `BENCH_*.json` reports
/// stay parseable, and by `Report` itself as a render-time debug check.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing content at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        other => Err(format!("unexpected {other:?} at byte {i}")),
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *i += 1;
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite())
        .map(|_| ())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*i], b'"');
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // [
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => {
                *i += 1;
                skip_ws(b, i);
            }
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']' at byte {i}, got {other:?}")),
        }
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // {
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i}"));
        }
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}' at byte {i}, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parses_flags_and_positional() {
        let cli = parse_bench_cli(
            [
                "fig9a",
                "--scale",
                "0.5",
                "--out",
                "/tmp/x.json",
                "--threads",
                "4",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(cli.positional.as_deref(), Some("fig9a"));
        assert_eq!(cli.scale, 0.5);
        assert_eq!(cli.out.as_deref(), Some("/tmp/x.json"));
        assert_eq!(cli.threads, 4);
        assert_eq!(
            parse_bench_cli([] as [String; 0]).unwrap(),
            BenchCli {
                scale: 1.0,
                out: None,
                threads: 0,
                positional: None
            }
        );
        for bad in [
            vec!["--scale"],
            vec!["--scale", "inf"],
            vec!["--scale", "0"],
            vec!["--out"],
            vec!["--threads"],
            vec!["--threads", "-1"],
            vec!["--bogus"],
            vec!["a", "b"],
        ] {
            assert!(
                parse_bench_cli(bad.iter().map(|s| s.to_string())).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn report_renders_valid_json() {
        let mut r = Report::new("demo")
            .field_num("n", 10_000.0)
            .field_num("eps", 0.3);
        r.push_row("{\"algorithm\": \"Grid\", \"seconds\": 0.001}".into());
        r.push_row("{\"algorithm\": \"Indexed\", \"seconds\": 0.002}".into());
        let json = r.render();
        validate(&json).unwrap();
        assert!(json.contains("\"experiment\": \"demo\""));
        assert!(json.contains("\"rows\": ["));
    }

    #[test]
    fn empty_rows_render_valid_json() {
        let json = Report::new("empty").render();
        validate(&json).unwrap();
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "  {\"a\": [1, 2.5, -3e-2], \"b\": {\"c\": \"x\\\"y\"}, \"d\": true} ",
        ] {
            assert!(validate(good).is_ok(), "{good}");
        }
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, ]",
            "{\"a\": 1} extra",
            "{'a': 1}",
            "{\"a\": nan}",
        ] {
            assert!(validate(bad).is_err(), "{bad}");
        }
    }

    /// CI gate: the committed benchmark reports at the repository root
    /// must stay parseable.
    #[test]
    fn committed_bench_reports_parse() {
        for name in [
            "BENCH_metrics.json",
            "BENCH_around.json",
            "BENCH_grid.json",
            "BENCH_mqo.json",
            "BENCH_incremental.json",
            "BENCH_governor.json",
            "BENCH_telemetry.json",
        ] {
            let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("committed report {name} must exist: {e}"));
            validate(&text).unwrap_or_else(|e| panic!("{name} must parse: {e}"));
            assert!(text.contains("\"rows\""), "{name} must carry a rows array");
        }
    }
}
