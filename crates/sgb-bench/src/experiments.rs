//! Experiment runners, one per table/figure of the paper's evaluation.
//!
//! Every runner returns an [`Experiment`] (series of `(x, seconds)` rows)
//! and is wired to a `paper` subcommand. Default cardinalities are scaled
//! down from the paper's so a full run finishes on one machine; the
//! `scale` argument multiplies them (≈25× reaches the paper's sizes).

use sgb_cluster::{birch, dbscan, kmeans, BirchConfig, DbscanConfig, KMeansConfig};
use sgb_core::{
    sgb_all, sgb_any, Algorithm, AllAlgorithm, AnyAlgorithm, OverlapAction, QueryGovernor,
    SgbAllConfig, SgbAnyConfig, SgbQuery,
};
use sgb_datagen::{clustered_points, clustered_points_with_centers, CheckinConfig, TpchConfig};
use sgb_geom::{Metric, Point};
use sgb_relation::Database;
use sgb_telemetry::{Counter, Telemetry};

use crate::queries;
use crate::timing::time;

/// One plotted series: a name and `(x, seconds)` rows.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (matches the paper's legends).
    pub name: String,
    /// `(x, seconds)` measurements.
    pub rows: Vec<(f64, f64)>,
}

/// One regenerated table/figure.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Identifier (`fig9a`, `table1`, …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Meaning of the x column.
    pub xlabel: String,
    /// The measured series.
    pub series: Vec<Series>,
}

impl Experiment {
    /// Prints the experiment as CSV with `#` metadata lines.
    pub fn print_csv(&self) {
        println!("# {}: {}", self.id, self.title);
        println!("experiment,series,{},seconds", self.xlabel);
        for s in &self.series {
            for (x, secs) in &s.rows {
                println!("{},{},{x},{secs:.6}", self.id, s.name);
            }
        }
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(16)
}

/// The synthetic multi-dimensional workload of the ε sweep (Figure 9):
/// clustered points in a 100×100 domain with cluster σ = 0.12, so the
/// paper's ε range 0.1–0.9 spans many-small-cliques (ε = 0.1) to
/// whole-cluster cliques (ε = 0.9) — the regime where the All-Pairs
/// baseline's member scans grow deep while the rectangle filters stay
/// constant-time per group.
pub fn fig9_workload(n: usize, seed: u64) -> Vec<Point<2>> {
    clustered_points::<2>(n, 64, 0.0012, seed)
        .into_iter()
        .map(|p| Point::new([p.x() * 100.0, p.y() * 100.0]))
        .collect()
}

const EPS_SWEEP: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Figures 9a–9c: SGB-All runtime vs ε for one `ON-OVERLAP` option,
/// comparing All-Pairs / Bounds-Checking / on-the-fly Index.
pub fn fig9_all(sub: char, scale: f64) -> Experiment {
    let (overlap, title) = match sub {
        'a' => (OverlapAction::JoinAny, "SGB-All JOIN-ANY"),
        'b' => (OverlapAction::Eliminate, "SGB-All ELIMINATE"),
        'c' => (OverlapAction::FormNewGroup, "SGB-All FORM-NEW-GROUP"),
        _ => panic!("fig9 sub-figure must be a/b/c/d"),
    };
    let n = scaled(20_000, scale);
    let points = fig9_workload(n, 0x0F19);
    let algos = [
        ("All-Pairs", AllAlgorithm::AllPairs),
        ("Bounds-Checking", AllAlgorithm::BoundsChecking),
        ("on-the-fly Index", AllAlgorithm::Indexed),
    ];
    let mut series = Vec::new();
    for (name, algo) in algos {
        let mut rows = Vec::new();
        for eps in EPS_SWEEP {
            let cfg = SgbAllConfig::new(eps)
                .metric(Metric::L2)
                .overlap(overlap)
                .algorithm(algo);
            let (out, secs) = time(|| sgb_all(&points, &cfg));
            rows.push((eps, secs));
            eprintln!(
                "#   fig9{sub} {name} eps={eps}: {secs:.3}s ({} groups)",
                out.num_groups()
            );
        }
        series.push(Series {
            name: name.into(),
            rows,
        });
    }
    Experiment {
        id: format!("fig9{sub}"),
        title: format!("{title}: runtime vs similarity threshold (n = {n})"),
        xlabel: "epsilon".into(),
        series,
    }
}

/// Figure 9d: SGB-Any runtime vs ε, All-Pairs vs on-the-fly Index.
pub fn fig9_any(scale: f64) -> Experiment {
    let n = scaled(20_000, scale);
    let points = fig9_workload(n, 0x0F19);
    let algos = [
        ("All-Pairs", AnyAlgorithm::AllPairs),
        ("on-the-fly Index", AnyAlgorithm::Indexed),
    ];
    let mut series = Vec::new();
    for (name, algo) in algos {
        let mut rows = Vec::new();
        for eps in EPS_SWEEP {
            let cfg = SgbAnyConfig::new(eps).metric(Metric::L2).algorithm(algo);
            let (out, secs) = time(|| sgb_any(&points, &cfg));
            rows.push((eps, secs));
            eprintln!(
                "#   fig9d {name} eps={eps}: {secs:.3}s ({} groups)",
                out.num_groups()
            );
        }
        series.push(Series {
            name: name.into(),
            rows,
        });
    }
    Experiment {
        id: "fig9d".into(),
        title: format!("SGB-Any: runtime vs similarity threshold (n = {n})"),
        xlabel: "epsilon".into(),
        series,
    }
}

/// The TPC-H-derived 2-D grouping attribute stream of the SGB1 query at a
/// given scale factor, rescaled to a [0, 10]² domain (so the paper's
/// ε = 0.2 is meaningful).
pub fn fig10_points(sf: f64, scale: f64) -> Vec<Point<2>> {
    let density = 0.01 * scale;
    let (customer, orders) = TpchConfig::new(sf)
        .density(density.min(1.0))
        .generate_customer_orders();
    sgb_datagen::tpch::sgb1_points_from(&customer, &orders)
        .into_iter()
        .map(|p| Point::new([p.x() * 10.0, p.y() * 10.0]))
        .collect()
}

/// Figures 10a–10c: SGB-All runtime vs TPC-H scale factor (ε = 0.2),
/// Bounds-Checking vs on-the-fly Index.
pub fn fig10_all(sub: char, scale: f64) -> Experiment {
    let (overlap, title) = match sub {
        'a' => (OverlapAction::JoinAny, "SGB-All JOIN-ANY"),
        'b' => (OverlapAction::Eliminate, "SGB-All ELIMINATE"),
        'c' => (OverlapAction::FormNewGroup, "SGB-All FORM-NEW-GROUP"),
        _ => panic!("fig10 sub-figure must be a/b/c/d"),
    };
    let sfs = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 60.0];
    let algos = [
        ("Bounds-Checking", AllAlgorithm::BoundsChecking),
        ("on-the-fly Index", AllAlgorithm::Indexed),
    ];
    let mut series: Vec<Series> = algos
        .iter()
        .map(|(name, _)| Series {
            name: (*name).into(),
            rows: Vec::new(),
        })
        .collect();
    for sf in sfs {
        let points = fig10_points(sf, scale);
        for (si, (name, algo)) in algos.iter().enumerate() {
            let cfg = SgbAllConfig::new(0.2)
                .metric(Metric::L2)
                .overlap(overlap)
                .algorithm(*algo);
            let (out, secs) = time(|| sgb_all(&points, &cfg));
            series[si].rows.push((sf, secs));
            eprintln!(
                "#   fig10{sub} {name} SF={sf}: {secs:.3}s ({} pts, {} groups)",
                points.len(),
                out.num_groups()
            );
        }
    }
    Experiment {
        id: format!("fig10{sub}"),
        title: format!("{title}: runtime vs TPC-H scale factor (eps = 0.2)"),
        xlabel: "scale_factor".into(),
        series,
    }
}

/// Figure 10d: SGB-Any runtime vs TPC-H scale factor (ε = 0.2),
/// All-Pairs vs on-the-fly Index.
pub fn fig10_any(scale: f64) -> Experiment {
    let sfs = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    let algos = [
        ("All-Pairs", AnyAlgorithm::AllPairs),
        ("on-the-fly Index", AnyAlgorithm::Indexed),
    ];
    let mut series: Vec<Series> = algos
        .iter()
        .map(|(name, _)| Series {
            name: (*name).into(),
            rows: Vec::new(),
        })
        .collect();
    for sf in sfs {
        let points = fig10_points(sf, scale);
        for (si, (name, algo)) in algos.iter().enumerate() {
            let cfg = SgbAnyConfig::new(0.2).metric(Metric::L2).algorithm(*algo);
            let (out, secs) = time(|| sgb_any(&points, &cfg));
            series[si].rows.push((sf, secs));
            eprintln!(
                "#   fig10d {name} SF={sf}: {secs:.3}s ({} pts, {} groups)",
                points.len(),
                out.num_groups()
            );
        }
    }
    Experiment {
        id: "fig10d".into(),
        title: "SGB-Any: runtime vs TPC-H scale factor (eps = 0.2)".into(),
        xlabel: "scale_factor".into(),
        series,
    }
}

/// Figure 11: SGB operators vs clustering baselines (DBSCAN, BIRCH,
/// K-means with K=20/40) on check-in data. `'a'` = Brightkite-like,
/// `'b'` = Gowalla-like. ε = 0.2 (degrees) as in the paper.
///
/// Baseline timings include the "impedance mismatch" step the paper
/// describes: exporting the points out of the SQL engine before
/// clustering. The SGB operators run in a single pass over the same rows.
pub fn fig11(sub: char, scale: f64) -> Experiment {
    let sizes: Vec<usize> = [30_000usize, 60_000, 90_000, 120_000, 150_000, 180_000]
        .iter()
        .map(|&n| scaled(n, scale))
        .collect();
    let eps = 0.2;
    let mut series: Vec<Series> = [
        "DBSCAN",
        "BIRCH",
        "K-means(40)",
        "K-means(20)",
        "SGB-All-Form-New",
        "SGB-All-Eliminate",
        "SGB-All-Join-Any",
        "SGB-Any",
    ]
    .iter()
    .map(|name| Series {
        name: (*name).into(),
        rows: Vec::new(),
    })
    .collect();

    for &n in &sizes {
        let dataset = match sub {
            'a' => CheckinConfig::brightkite_like(n).generate(),
            'b' => CheckinConfig::gowalla_like(n).generate(),
            _ => panic!("fig11 sub-figure must be a/b"),
        };
        // Register the check-ins in the engine: baselines must export them
        // first (the paper's impedance-mismatch cost), SGB runs in-engine.
        let mut db = Database::new();
        let mut table = sgb_relation::Table::empty(sgb_relation::Schema::new(["lat", "lon"]));
        for c in &dataset.checkins {
            table
                .push(vec![
                    sgb_relation::Value::Float(c.location.x()),
                    sgb_relation::Value::Float(c.location.y()),
                ])
                .unwrap();
        }
        db.register("checkins", table);

        let export = || -> Vec<Point<2>> {
            let out = db.query("SELECT lat, lon FROM checkins").unwrap();
            out.rows
                .iter()
                .map(|r| Point::new([r[0].as_f64().unwrap(), r[1].as_f64().unwrap()]))
                .collect()
        };

        let x = n as f64;
        // DBSCAN (R-tree accelerated, ε = 0.2, minPts = 4).
        let (_, secs) = time(|| {
            let pts = export();
            dbscan(&pts, &DbscanConfig::new(eps).min_pts(4))
        });
        series[0].rows.push((x, secs));
        // BIRCH (threshold ε).
        let (_, secs) = time(|| {
            let pts = export();
            birch(&pts, &BirchConfig::new(eps))
        });
        series[1].rows.push((x, secs));
        // K-means, K = 40 then K = 20: classic fixed-iteration Lloyd
        // (tolerance 0 ⇒ run to an exact assignment fixpoint, capped at
        // 100 iterations like the era's standard implementations).
        for (si, k) in [(2usize, 40usize), (3, 20)] {
            let (_, secs) = time(|| {
                let pts = export();
                kmeans(&pts, &KMeansConfig::new(k).max_iters(100).tol(0.0))
            });
            series[si].rows.push((x, secs));
        }
        // SGB variants (in-engine single pass over the same rows).
        let points = dataset.points();
        for (si, overlap) in [
            (4usize, OverlapAction::FormNewGroup),
            (5, OverlapAction::Eliminate),
            (6, OverlapAction::JoinAny),
        ] {
            let cfg = SgbAllConfig::new(eps).metric(Metric::L2).overlap(overlap);
            let (_, secs) = time(|| sgb_all(&points, &cfg));
            series[si].rows.push((x, secs));
        }
        let (_, secs) = time(|| sgb_any(&points, &SgbAnyConfig::new(eps).metric(Metric::L2)));
        series[7].rows.push((x, secs));
        eprintln!("#   fig11{sub} n={n} done");
    }

    let which = if sub == 'a' {
        "Brightkite-like"
    } else {
        "Gowalla-like"
    };
    Experiment {
        id: format!("fig11{sub}"),
        title: format!("SGB vs clustering algorithms on {which} check-ins (eps = 0.2)"),
        xlabel: "checkins".into(),
        series,
    }
}

/// Figure 12: overhead of SGB vs traditional GROUP BY through the SQL
/// engine on TPC-H. `'a'` = GB2 vs SGB3/SGB4 (Q9 shape),
/// `'b'` = GB3 vs SGB5/SGB6 (Q15 shape).
pub fn fig12(sub: char, scale: f64) -> Experiment {
    let (gb, template, label) = match sub {
        'a' => (queries::GB2, queries::SGB3_TEMPLATE, "GB2/SGB3/SGB4"),
        'b' => (queries::GB3, queries::SGB5_TEMPLATE, "GB3/SGB5/SGB6"),
        _ => panic!("fig12 sub-figure must be a/b"),
    };
    let sfs = [1.0, 2.0, 4.0, 8.0, 16.0, 20.0];
    let eps = 0.2;
    let variants: Vec<(String, String)> = vec![
        ("Group-By".into(), gb.to_owned()),
        (
            "SGB-All-Join-Any".into(),
            queries::with_sgb_all(template, eps, "L2", "JOIN-ANY"),
        ),
        (
            "SGB-All-Eliminate".into(),
            queries::with_sgb_all(template, eps, "L2", "ELIMINATE"),
        ),
        (
            "SGB-All-Form-New".into(),
            queries::with_sgb_all(template, eps, "L2", "FORM-NEW-GROUP"),
        ),
        ("SGB-Any".into(), queries::with_sgb_any(template, eps, "L2")),
    ];
    let mut series: Vec<Series> = variants
        .iter()
        .map(|(name, _)| Series {
            name: name.clone(),
            rows: Vec::new(),
        })
        .collect();
    for sf in sfs {
        let mut db = Database::new();
        TpchConfig::new(sf)
            .density((0.002 * scale).min(1.0))
            .generate()
            .register_all(&mut db);
        for (si, (name, sql)) in variants.iter().enumerate() {
            let (out, secs) = time(|| db.query(sql).unwrap());
            series[si].rows.push((sf, secs));
            eprintln!(
                "#   fig12{sub} {name} SF={sf}: {secs:.3}s ({} rows)",
                out.len()
            );
        }
    }
    Experiment {
        id: format!("fig12{sub}"),
        title: format!("{label}: SGB vs standard GROUP BY through SQL (eps = {eps})"),
        xlabel: "scale_factor".into(),
        series,
    }
}

/// Table 1: empirical scaling exponents of the SGB-All variants under L∞,
/// fitted from a log–log regression of runtime against input size,
/// printed next to the paper's stated average-case bounds.
pub fn table1(scale: f64) -> Experiment {
    let sizes: Vec<usize> = [2_000usize, 4_000, 8_000, 16_000]
        .iter()
        .map(|&n| scaled(n, scale))
        .collect();
    let algos = [
        ("All-Pairs", AllAlgorithm::AllPairs),
        ("Bounds-Checking", AllAlgorithm::BoundsChecking),
        ("on-the-fly Index", AllAlgorithm::Indexed),
    ];
    let overlaps = [
        ("JOIN-ANY", OverlapAction::JoinAny),
        ("ELIMINATE", OverlapAction::Eliminate),
        ("FORM-NEW-GROUP", OverlapAction::FormNewGroup),
    ];
    let mut series = Vec::new();
    for (aname, algo) in algos {
        for (oname, overlap) in overlaps {
            let mut rows = Vec::new();
            for &n in &sizes {
                let points = fig9_workload(n, 0x7AB1);
                let cfg = SgbAllConfig::new(0.3)
                    .metric(Metric::LInf)
                    .overlap(overlap)
                    .algorithm(algo);
                let (_, secs) = time(|| sgb_all(&points, &cfg));
                rows.push((n as f64, secs));
            }
            eprintln!(
                "#   table1 {aname}/{oname}: fitted exponent {:.2}",
                fit_loglog_slope(&rows)
            );
            series.push(Series {
                name: format!("{aname}/{oname}"),
                rows,
            });
        }
    }
    Experiment {
        id: "table1".into(),
        title: "SGB-All complexity (L-inf): runtime vs n; fit the log-log slope \
                against the paper's bounds (All-Pairs O(n^2)/O(n^3), \
                Bounds-Checking O(n|G|), Index O(n log |G|))"
            .into(),
        xlabel: "n".into(),
        series,
    }
}

/// One row of the metric-comparison experiment: an operator/algorithm
/// combination timed under one metric.
#[derive(Clone, Debug)]
pub struct MetricBenchRow {
    /// `"sgb-all"` or `"sgb-any"`.
    pub op: &'static str,
    /// Algorithm label (`"AllPairs"`, `"BoundsChecking"`, `"Indexed"`).
    pub algorithm: &'static str,
    /// SQL keyword of the metric (`L1`/`L2`/`LINF`).
    pub metric: &'static str,
    /// Wall-clock seconds for one run.
    pub seconds: f64,
    /// Number of answer groups (sanity anchor: fixed per metric across
    /// algorithms).
    pub groups: usize,
}

/// The metric-comparison experiment behind the `metrics` binary: every
/// SGB-All / SGB-Any algorithm under every supported metric on the ε-sweep
/// workload, one timed run each. Returns `(n, eps, rows)`.
pub fn metric_comparison(scale: f64) -> (usize, f64, Vec<MetricBenchRow>) {
    let n = scaled(10_000, scale);
    let eps = 0.3;
    let points = fig9_workload(n, 0x3E7A1C);
    let mut rows = Vec::new();
    for metric in Metric::ALL {
        let mut groups_per_algo = Vec::new();
        for (name, algo) in [
            ("AllPairs", Algorithm::AllPairs),
            ("BoundsChecking", Algorithm::BoundsChecking),
            ("Indexed", Algorithm::Indexed),
        ] {
            let query = SgbQuery::all(eps).metric(metric).algorithm(algo);
            let (out, secs) = time(|| query.run(&points));
            groups_per_algo.push(out.num_groups());
            rows.push(MetricBenchRow {
                op: "sgb-all",
                algorithm: name,
                metric: metric.sql_keyword(),
                seconds: secs,
                groups: out.num_groups(),
            });
        }
        assert!(
            groups_per_algo.windows(2).all(|w| w[0] == w[1]),
            "SGB-All algorithms disagree under {metric}: {groups_per_algo:?}"
        );
        let mut any_groups_per_algo = Vec::new();
        for (name, algo) in [
            ("AllPairs", Algorithm::AllPairs),
            ("Indexed", Algorithm::Indexed),
        ] {
            let query = SgbQuery::any(eps).metric(metric).algorithm(algo);
            let (out, secs) = time(|| query.run(&points));
            any_groups_per_algo.push(out.num_groups());
            rows.push(MetricBenchRow {
                op: "sgb-any",
                algorithm: name,
                metric: metric.sql_keyword(),
                seconds: secs,
                groups: out.num_groups(),
            });
        }
        assert!(
            any_groups_per_algo.windows(2).all(|w| w[0] == w[1]),
            "SGB-Any algorithms disagree under {metric}: {any_groups_per_algo:?}"
        );
    }
    (n, eps, rows)
}

/// One row of the SGB-Around comparison: a sweep point timed under one
/// algorithm.
#[derive(Clone, Debug)]
pub struct AroundBenchRow {
    /// Which variable the sweep varies: `"n"` or `"centers"`.
    pub sweep: &'static str,
    /// The varied value (input cardinality or center count).
    pub x: usize,
    /// The fixed other variable (center count or input cardinality).
    pub fixed: usize,
    /// Algorithm label (`"BruteForce"` / `"Indexed"`).
    pub algorithm: &'static str,
    /// Wall-clock seconds for one run.
    pub seconds: f64,
    /// Centers that attracted at least one point (sanity anchor: fixed per
    /// sweep point across algorithms).
    pub occupied: usize,
    /// Points beyond the radius bound (likewise fixed across algorithms).
    pub outliers: usize,
}

/// The SGB-Around brute-vs-indexed comparison behind the `around` binary:
/// one sweep over input cardinality at a fixed center count, one over
/// center count at a fixed cardinality. Points come from a Gaussian
/// mixture and the operator is seeded with the ground-truth mixture
/// centers (the "derive centers, then regroup relationally" scenario); a
/// radius bound keeps the outlier path hot. Returns `(radius, rows)`.
pub fn around_comparison(scale: f64) -> (f64, Vec<AroundBenchRow>) {
    // The JSON labels predate the unified enum ("BruteForce" is
    // `Algorithm::AllPairs` for SGB-Around) and stay stable so the
    // committed BENCH_around.json trajectory remains comparable.
    const ALGOS: [(&str, Algorithm); 2] = [
        ("BruteForce", Algorithm::AllPairs),
        ("Indexed", Algorithm::Indexed),
    ];
    // 3σ of the mixture spread: ~1% of the mass of a 2-D Gaussian falls
    // outside, so the outlier path stays hot without dominating.
    let radius = 0.03;
    let mut rows = Vec::new();

    let mut run_point =
        |sweep: &'static str, x: usize, fixed: usize, n: usize, centers_n: usize| {
            let (points, centers) = clustered_points_with_centers::<2>(n, centers_n, 0.01, 0xA401);
            let mut sanity = Vec::new();
            for (name, algorithm) in ALGOS {
                let query = SgbQuery::around(centers.clone())
                    .max_radius(radius)
                    .algorithm(algorithm);
                let (out, secs) = time(|| query.run(&points));
                sanity.push((out.num_groups(), out.outliers().len()));
                eprintln!(
                    "#   around {sweep}={x} {name}: {secs:.4}s \
                     ({} occupied, {} outliers)",
                    out.num_groups(),
                    out.outliers().len()
                );
                rows.push(AroundBenchRow {
                    sweep,
                    x,
                    fixed,
                    algorithm: name,
                    seconds: secs,
                    occupied: out.num_groups(),
                    outliers: out.outliers().len(),
                });
            }
            assert!(
                sanity.windows(2).all(|w| w[0] == w[1]),
                "SGB-Around algorithms disagree at {sweep}={x}: {sanity:?}"
            );
        };

    // Sweep 1: input cardinality at a fixed center count.
    let centers_fixed = 64;
    for base in [5_000usize, 10_000, 20_000, 40_000] {
        let n = scaled(base, scale);
        run_point("n", n, centers_fixed, n, centers_fixed);
    }
    // Sweep 2: center count at a fixed cardinality (the regime where the
    // center R-tree pays off over the per-tuple center scan).
    let n_fixed = scaled(20_000, scale);
    for centers_n in [4usize, 16, 64, 256, 1024] {
        run_point("centers", centers_n, n_fixed, n_fixed, centers_n);
    }
    (radius, rows)
}

/// One row of the grid-engine comparison: an operator/algorithm
/// combination timed at one sweep point.
#[derive(Clone, Debug)]
pub struct GridBenchRow {
    /// `"sgb-all"`, `"sgb-any"`, or `"sgb-around"`.
    pub op: &'static str,
    /// Which variable the sweep varies: `"n"`, `"eps"`, or `"centers"`.
    pub sweep: &'static str,
    /// The varied value.
    pub x: f64,
    /// Input cardinality at this sweep point.
    pub n: usize,
    /// Algorithm label (concrete algorithms plus `"Auto"`).
    pub algorithm: &'static str,
    /// Worker threads the run actually executed on (resolved by the cost
    /// model when the override is 0 = auto).
    pub threads: usize,
    /// Wall-clock seconds for one run.
    pub seconds: f64,
    /// Number of answer groups — the sanity anchor: fixed per sweep point
    /// across algorithms *and thread counts* (asserted by the runner).
    pub groups: usize,
}

/// The grid-engine comparison behind the `grid` binary: Grid vs the
/// R-tree-indexed paths vs the scan baselines for all three operators,
/// over input-cardinality and ε / center-count sweeps, with an `Auto` row
/// per sweep point showing the cost model tracking the per-configuration
/// winner, plus a worker-thread sweep over the two parallelisable grid
/// paths (SGB-Any's sharded ε-join and SGB-Around's chunked assignment).
/// `threads` overrides the worker count for the main sweeps (0 = auto).
/// Every sweep point asserts that all algorithms — and, in the thread
/// sweep, all thread counts — agree on the answer-group count. Returns
/// the row set.
pub fn grid_comparison(scale: f64, threads: usize) -> Vec<GridBenchRow> {
    let mut rows = Vec::new();

    const ALL_ALGOS: [(&str, Algorithm); 5] = [
        ("AllPairs", Algorithm::AllPairs),
        ("BoundsChecking", Algorithm::BoundsChecking),
        ("Indexed", Algorithm::Indexed),
        ("Grid", Algorithm::Grid),
        ("Auto", Algorithm::Auto),
    ];
    const ANY_ALGOS: [(&str, Algorithm); 4] = [
        ("AllPairs", Algorithm::AllPairs),
        ("Indexed", Algorithm::Indexed),
        ("Grid", Algorithm::Grid),
        ("Auto", Algorithm::Auto),
    ];
    // "BruteForce" is `Algorithm::AllPairs` for SGB-Around; the label is
    // kept for BENCH_grid.json continuity.
    const AROUND_ALGOS: [(&str, Algorithm); 4] = [
        ("BruteForce", Algorithm::AllPairs),
        ("Indexed", Algorithm::Indexed),
        ("Grid", Algorithm::Grid),
        ("Auto", Algorithm::Auto),
    ];

    let mut run_all_any = |sweep: &'static str, x: f64, n: usize, eps: f64| {
        let points = fig9_workload(n, 0x0F19);
        let mut sanity = Vec::new();
        for (name, algo) in ALL_ALGOS {
            let query = SgbQuery::all(eps)
                .metric(Metric::L2)
                .algorithm(algo)
                .threads(threads);
            let (out, secs) = time(|| query.run(&points));
            eprintln!(
                "#   grid sgb-all {sweep}={x} {name}: {secs:.4}s ({} groups)",
                out.num_groups()
            );
            sanity.push(out.num_groups());
            rows.push(GridBenchRow {
                op: "sgb-all",
                sweep,
                x,
                n,
                algorithm: name,
                threads: out.threads(),
                seconds: secs,
                groups: out.num_groups(),
            });
        }
        assert!(
            sanity.windows(2).all(|w| w[0] == w[1]),
            "SGB-All algorithms disagree at {sweep}={x}: {sanity:?}"
        );
        let mut sanity = Vec::new();
        for (name, algo) in ANY_ALGOS {
            let query = SgbQuery::any(eps)
                .metric(Metric::L2)
                .algorithm(algo)
                .threads(threads);
            let (out, secs) = time(|| query.run(&points));
            eprintln!(
                "#   grid sgb-any {sweep}={x} {name}: {secs:.4}s ({} groups)",
                out.num_groups()
            );
            sanity.push(out.num_groups());
            rows.push(GridBenchRow {
                op: "sgb-any",
                sweep,
                x,
                n,
                algorithm: name,
                threads: out.threads(),
                seconds: secs,
                groups: out.num_groups(),
            });
        }
        assert!(
            sanity.windows(2).all(|w| w[0] == w[1]),
            "SGB-Any algorithms disagree at {sweep}={x}: {sanity:?}"
        );
    };

    // Sweep 1: input cardinality at the metric-comparison ε (the workload
    // behind BENCH_metrics.json, so the rows are directly comparable).
    for base in [2_000usize, 5_000, 10_000, 20_000] {
        let n = scaled(base, scale);
        run_all_any("n", n as f64, n, 0.3);
    }
    // Sweep 2: ε at a fixed cardinality — group structure shifts from
    // many small groups to few large ones.
    let n_fixed = scaled(10_000, scale);
    for eps in [0.1, 0.3, 0.9] {
        run_all_any("eps", eps, n_fixed, eps);
    }

    // Sweep 3: SGB-Around over center count (the BENCH_around.json regime
    // where the old Indexed default loses below ~1k centers).
    let n_around = scaled(20_000, scale);
    for centers_n in [16usize, 64, 256, 1024, 4096] {
        let centers_n_scaled = scaled(centers_n, scale).min(n_around);
        let (points, centers) =
            clustered_points_with_centers::<2>(n_around, centers_n_scaled, 0.01, 0xA401);
        let mut sanity = Vec::new();
        for (name, algo) in AROUND_ALGOS {
            let query = SgbQuery::around(centers.clone())
                .max_radius(0.03)
                .algorithm(algo)
                .threads(threads);
            let (out, secs) = time(|| query.run(&points));
            eprintln!(
                "#   grid sgb-around centers={centers_n_scaled} {name}: {secs:.4}s \
                 ({} occupied, {} outliers)",
                out.num_groups(),
                out.outliers().len()
            );
            sanity.push((out.num_groups(), out.outliers().len()));
            rows.push(GridBenchRow {
                op: "sgb-around",
                sweep: "centers",
                x: centers_n_scaled as f64,
                n: n_around,
                algorithm: name,
                threads: out.threads(),
                seconds: secs,
                groups: out.num_groups(),
            });
        }
        assert!(
            sanity.windows(2).all(|w| w[0] == w[1]),
            "SGB-Around algorithms disagree at centers={centers_n_scaled}: {sanity:?}"
        );
    }

    // Sweep 4: worker threads over the two parallelisable grid paths at
    // the largest cardinality — the scaling axis of the parallel engine.
    // Explicit thread counts always win over auto resolution, so these
    // rows measure exactly 1/2/4 workers regardless of the machine.
    let n_threads = scaled(20_000, scale);
    let points = fig9_workload(n_threads, 0x0F19);
    let (around_points, around_centers) = clustered_points_with_centers::<2>(
        n_threads,
        scaled(64, scale).min(n_threads),
        0.01,
        0xA401,
    );
    let mut any_sanity = Vec::new();
    let mut around_sanity = Vec::new();
    for t in [1usize, 2, 4] {
        let query = SgbQuery::any(0.3)
            .metric(Metric::L2)
            .algorithm(Algorithm::Grid)
            .threads(t);
        let (out, secs) = time(|| query.run(&points));
        eprintln!(
            "#   grid sgb-any threads={t} Grid: {secs:.4}s ({} groups)",
            out.num_groups()
        );
        any_sanity.push(out.num_groups());
        rows.push(GridBenchRow {
            op: "sgb-any",
            sweep: "threads",
            x: t as f64,
            n: n_threads,
            algorithm: "Grid",
            threads: out.threads(),
            seconds: secs,
            groups: out.num_groups(),
        });
        let query = SgbQuery::around(around_centers.clone())
            .max_radius(0.03)
            .algorithm(Algorithm::Grid)
            .threads(t);
        let (out, secs) = time(|| query.run(&around_points));
        eprintln!(
            "#   grid sgb-around threads={t} Grid: {secs:.4}s ({} occupied)",
            out.num_groups()
        );
        around_sanity.push(out.num_groups());
        rows.push(GridBenchRow {
            op: "sgb-around",
            sweep: "threads",
            x: t as f64,
            n: n_threads,
            algorithm: "Grid",
            threads: out.threads(),
            seconds: secs,
            groups: out.num_groups(),
        });
    }
    assert!(
        any_sanity.windows(2).all(|w| w[0] == w[1]),
        "SGB-Any thread counts disagree: {any_sanity:?}"
    );
    assert!(
        around_sanity.windows(2).all(|w| w[0] == w[1]),
        "SGB-Around thread counts disagree: {around_sanity:?}"
    );
    rows
}

/// Fits the slope of `log(seconds)` against `log(x)` — the empirical
/// scaling exponent.
pub fn fit_loglog_slope(rows: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Table 2: runs each evaluation query once through the SQL engine at a
/// small scale factor and reports `(query, rows, seconds)` — `x` is the
/// query index, and the row count is logged to stderr.
pub fn table2(scale: f64) -> Experiment {
    let mut db = Database::new();
    TpchConfig::new(1.0)
        .density((0.005 * scale).min(1.0))
        .generate()
        .register_all(&mut db);
    let eps = 0.2;
    let named: Vec<(&str, String)> = vec![
        ("GB1", queries::GB1.to_owned()),
        (
            "SGB1",
            queries::with_sgb_all(queries::SGB1_TEMPLATE, eps, "L2", "JOIN-ANY"),
        ),
        (
            "SGB2",
            queries::with_sgb_any(queries::SGB1_TEMPLATE, eps, "L2"),
        ),
        ("GB2", queries::GB2.to_owned()),
        (
            "SGB3",
            queries::with_sgb_all(queries::SGB3_TEMPLATE, eps, "L2", "FORM-NEW-GROUP"),
        ),
        (
            "SGB4",
            queries::with_sgb_any(queries::SGB3_TEMPLATE, eps, "L2"),
        ),
        ("GB3", queries::GB3.to_owned()),
        (
            "SGB5",
            queries::with_sgb_all(queries::SGB5_TEMPLATE, eps, "L2", "ELIMINATE"),
        ),
        (
            "SGB6",
            queries::with_sgb_any(queries::SGB5_TEMPLATE, eps, "L2"),
        ),
    ];
    let mut series = Vec::new();
    for (i, (name, sql)) in named.iter().enumerate() {
        let (out, secs) = time(|| db.query(sql).unwrap());
        eprintln!("#   table2 {name}: {} rows in {secs:.3}s", out.len());
        series.push(Series {
            name: (*name).into(),
            rows: vec![(i as f64, secs)],
        });
    }
    Experiment {
        id: "table2".into(),
        title: "Table 2 evaluation queries through the SQL engine (SF 1)".into(),
        xlabel: "query_index".into(),
        series,
    }
}

/// One row of the governor-overhead smoke bench (`governor` bin).
#[derive(Clone, Debug)]
pub struct GovernorBenchRow {
    /// Input cardinality.
    pub n: usize,
    /// Similarity threshold ε.
    pub eps: f64,
    /// Best-of-k seconds for the legacy infallible `run`.
    pub ungoverned_secs: f64,
    /// Best-of-k seconds for `try_run` under an unrestricted governor.
    pub governed_secs: f64,
    /// `(governed − ungoverned) / ungoverned`, in percent (can be
    /// negative: both are minima of noisy samples).
    pub overhead_pct: f64,
    /// Answer groups — identical on both paths by assertion.
    pub groups: usize,
}

/// Measures what the governor's cooperative checks cost when **nothing
/// is restricted**: the BENCH_grid SGB-Any grid row (ε-grid join, L2,
/// the Figure 9 workload) timed as `run` vs `try_run(&unrestricted)`.
/// The two paths alternate within each round, so clock drift and cache
/// warmth hit both equally, and every round asserts they return the same
/// grouping. The `governor` bin gates on the reported overhead.
pub fn governor_overhead(scale: f64) -> Vec<GovernorBenchRow> {
    const ROUNDS: usize = 7;
    let mut rows = Vec::new();
    for base in [10_000usize, 20_000] {
        let n = scaled(base, scale);
        let points = fig9_workload(n, 0x0F19);
        let eps = 0.3;
        let query = SgbQuery::any(eps)
            .metric(Metric::L2)
            .algorithm(Algorithm::Grid);
        let governor = QueryGovernor::unrestricted();
        let mut best_run = f64::INFINITY;
        let mut best_try = f64::INFINITY;
        let mut groups = 0;
        for _ in 0..ROUNDS {
            let (out, secs) = time(|| query.run(&points));
            best_run = best_run.min(secs);
            groups = out.num_groups();
            let (tried, secs) = time(|| query.try_run(&points, &governor));
            best_try = best_try.min(secs);
            let tried = tried.expect("an unrestricted governor never aborts");
            assert_eq!(out, tried, "governed and ungoverned runs disagree at n={n}");
        }
        let overhead_pct = (best_try - best_run) / best_run * 100.0;
        eprintln!(
            "#   governor sgb-any grid n={n}: run {best_run:.6}s, \
             try_run {best_try:.6}s ({overhead_pct:+.2}%)"
        );
        rows.push(GovernorBenchRow {
            n,
            eps,
            ungoverned_secs: best_run,
            governed_secs: best_try,
            overhead_pct,
            groups,
        });
    }
    rows
}

/// One row of the telemetry-overhead smoke bench (`telemetry` bin).
#[derive(Clone, Debug)]
pub struct TelemetryBenchRow {
    /// Input cardinality.
    pub n: usize,
    /// Similarity threshold ε.
    pub eps: f64,
    /// Best-of-k seconds with no telemetry handle (the production
    /// default: the disabled `Telemetry::off()` sink).
    pub baseline_secs: f64,
    /// Best-of-k seconds with an explicitly installed disabled handle —
    /// the path the zero-cost invariant gates.
    pub disabled_secs: f64,
    /// Best-of-k seconds with a live profiling sink installed.
    pub enabled_secs: f64,
    /// `(disabled − baseline) / baseline`, percent (can be negative:
    /// both are minima of noisy samples). **Gated** `< 2%`.
    pub disabled_overhead_pct: f64,
    /// `(enabled − baseline) / baseline`, percent. Reported, not gated:
    /// a live sink is allowed to pay for its clock reads.
    pub enabled_overhead_pct: f64,
    /// Answer groups — identical on all three paths by assertion.
    pub groups: usize,
}

/// Measures what the telemetry instrumentation costs when **no profile
/// sink is installed** — the subsystem's zero-cost invariant — on the
/// BENCH_grid SGB-Any grid row (ε-grid join, L2, the Figure 9 workload).
/// Three variants alternate within each round, so clock drift and cache
/// warmth hit all equally: the bare `run` (no handle), `run` with an
/// explicit [`Telemetry::off`] handle (the gated disabled path), and
/// `run` with a live [`Telemetry::new`] sink (reported for context).
/// Every round asserts all three return the same grouping. The
/// `telemetry` bin gates on the disabled overhead, mirroring the
/// `governor` gate.
pub fn telemetry_overhead(scale: f64) -> Vec<TelemetryBenchRow> {
    // More rounds than the governor bench: the gated pair are *identical*
    // code paths (a disabled handle is the default), so any reported
    // overhead is scheduler noise and best-of-k needs more draws to
    // converge on the true minimum.
    const ROUNDS: usize = 21;
    let mut rows = Vec::new();
    for base in [10_000usize, 20_000] {
        let n = scaled(base, scale);
        let points = fig9_workload(n, 0x0F19);
        let eps = 0.3;
        let query = SgbQuery::any(eps)
            .metric(Metric::L2)
            .algorithm(Algorithm::Grid);
        let mut best_base = f64::INFINITY;
        let mut best_off = f64::INFINITY;
        let mut best_on = f64::INFINITY;
        let mut groups = 0;
        for _ in 0..ROUNDS {
            let (out, secs) = time(|| query.run(&points));
            best_base = best_base.min(secs);
            groups = out.num_groups();
            let off_query = query.clone().telemetry(Telemetry::off());
            let (off_out, secs) = time(|| off_query.run(&points));
            best_off = best_off.min(secs);
            assert_eq!(out, off_out, "disabled-telemetry run disagrees at n={n}");
            let on_query = query.clone().telemetry(Telemetry::new());
            let (on_out, secs) = time(|| on_query.run(&points));
            best_on = best_on.min(secs);
            assert_eq!(out, on_out, "profiled run disagrees at n={n}");
            let profile = on_out.profile().expect("a live sink records a profile");
            assert_eq!(profile.counter(Counter::Groups), groups as u64);
        }
        let disabled_overhead_pct = (best_off - best_base) / best_base * 100.0;
        let enabled_overhead_pct = (best_on - best_base) / best_base * 100.0;
        eprintln!(
            "#   telemetry sgb-any grid n={n}: bare {best_base:.6}s, \
             off {best_off:.6}s ({disabled_overhead_pct:+.2}%), \
             on {best_on:.6}s ({enabled_overhead_pct:+.2}%)"
        );
        rows.push(TelemetryBenchRow {
            n,
            eps,
            baseline_secs: best_base,
            disabled_secs: best_off,
            enabled_secs: best_on,
            disabled_overhead_pct,
            enabled_overhead_pct,
            groups,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_slope_recovers_known_exponent() {
        // y = c · x²  → slope 2.
        let rows: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, 3.0 * (i * i) as f64)).collect();
        assert!((fit_loglog_slope(&rows) - 2.0).abs() < 1e-9);
        // y = c · x  → slope 1.
        let rows: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, 0.5 * i as f64)).collect();
        assert!((fit_loglog_slope(&rows) - 1.0).abs() < 1e-9);
        assert!(fit_loglog_slope(&[(1.0, 1.0)]).is_nan());
    }

    #[test]
    fn fig9_workload_is_deterministic_and_scaled() {
        let a = fig9_workload(100, 1);
        let b = fig9_workload(100, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| (0.0..=100.0).contains(&p.x())));
    }

    // Smoke tests: each experiment runs end-to-end at a tiny scale.
    #[test]
    fn fig9_smoke() {
        let e = fig9_all('a', 0.01);
        assert_eq!(e.series.len(), 3);
        assert!(e.series.iter().all(|s| s.rows.len() == 9));
        let e = fig9_any(0.01);
        assert_eq!(e.series.len(), 2);
    }

    #[test]
    fn fig10_smoke() {
        let e = fig10_all('b', 0.02);
        assert_eq!(e.series.len(), 2);
        assert!(e.series.iter().all(|s| s.rows.len() == 7));
        let e = fig10_any(0.02);
        assert!(e.series.iter().all(|s| s.rows.len() == 6));
    }

    #[test]
    fn fig11_smoke() {
        let e = fig11('a', 0.002);
        assert_eq!(e.series.len(), 8);
        assert!(e.series.iter().all(|s| s.rows.len() == 6));
    }

    #[test]
    fn fig12_smoke() {
        let e = fig12('a', 0.05);
        assert_eq!(e.series.len(), 5);
        let e = fig12('b', 0.05);
        assert_eq!(e.series.len(), 5);
    }

    #[test]
    fn metric_comparison_smoke() {
        let (n, eps, rows) = metric_comparison(0.01);
        assert!(n >= 16);
        assert!(eps > 0.0);
        // 3 metrics × (3 All algorithms + 2 Any algorithms).
        assert_eq!(rows.len(), 15);
        for metric in ["L1", "L2", "LINF"] {
            assert!(rows.iter().any(|r| r.metric == metric));
        }
        // Group counts per (op, metric) agree across algorithms.
        for op in ["sgb-all", "sgb-any"] {
            for metric in ["L1", "L2", "LINF"] {
                let counts: Vec<usize> = rows
                    .iter()
                    .filter(|r| r.op == op && r.metric == metric)
                    .map(|r| r.groups)
                    .collect();
                assert!(counts.windows(2).all(|w| w[0] == w[1]), "{op} {metric}");
            }
        }
    }

    #[test]
    fn around_comparison_smoke() {
        let (radius, rows) = around_comparison(0.01);
        assert!(radius > 0.0);
        // (4 cardinalities + 5 center counts) × 2 algorithms.
        assert_eq!(rows.len(), 18);
        for sweep in ["n", "centers"] {
            assert!(rows.iter().any(|r| r.sweep == sweep));
        }
        // Occupied/outlier counts agree across algorithms per sweep point.
        for r in &rows {
            let twin = rows
                .iter()
                .find(|o| o.sweep == r.sweep && o.x == r.x && o.algorithm != r.algorithm)
                .unwrap();
            assert_eq!((r.occupied, r.outliers), (twin.occupied, twin.outliers));
        }
    }

    #[test]
    fn grid_comparison_smoke() {
        let rows = grid_comparison(0.01, 0);
        // (4 n-points + 3 eps-points) × (5 All + 4 Any algorithms)
        // + 5 center-points × 4 Around algorithms
        // + 3 thread-counts × 2 parallelisable grid paths.
        assert_eq!(rows.len(), 7 * 9 + 5 * 4 + 6);
        // The thread sweep pins explicit worker counts (1, 2, 4) and the
        // auto-resolved rows report the threads they actually ran on.
        let thread_rows: Vec<&GridBenchRow> =
            rows.iter().filter(|r| r.sweep == "threads").collect();
        assert_eq!(thread_rows.len(), 6);
        for r in &thread_rows {
            assert_eq!(r.threads, r.x as usize, "{r:?}");
        }
        assert!(rows.iter().all(|r| r.threads >= 1));
        for op in ["sgb-all", "sgb-any", "sgb-around"] {
            assert!(rows.iter().any(|r| r.op == op), "{op}");
            assert!(
                rows.iter().any(|r| r.op == op && r.algorithm == "Auto"),
                "{op} needs an Auto row"
            );
        }
        // Group counts agree across algorithms per (op, sweep, x) — the
        // runner asserts this too; double-check on the returned rows.
        for r in &rows {
            for other in &rows {
                if r.op == other.op && r.sweep == other.sweep && r.x == other.x {
                    assert_eq!(r.groups, other.groups, "{r:?} vs {other:?}");
                }
            }
        }
    }

    #[test]
    fn tables_smoke() {
        let e = table1(0.01);
        assert_eq!(e.series.len(), 9);
        let e = table2(0.2);
        assert_eq!(e.series.len(), 9);
    }
}
