#![warn(missing_docs)]

//! Benchmark harness regenerating the evaluation of the SGB paper
//! (Section 8): every figure and table has a corresponding experiment
//! runner here, exposed through the `paper` binary:
//!
//! ```text
//! cargo run -p sgb-bench --release --bin paper -- fig9a
//! cargo run -p sgb-bench --release --bin paper -- all --scale 0.5
//! ```
//!
//! Experiments print CSV rows (`# comment` lines carry metadata) so the
//! series can be plotted directly against the paper's figures. Default
//! cardinalities are scaled down from the paper's (recorded per experiment
//! in EXPERIMENTS.md); `--scale` multiplies them.

pub mod cli;
pub mod experiments;
pub mod queries;
pub mod report;
pub mod timing;

pub use timing::time;
