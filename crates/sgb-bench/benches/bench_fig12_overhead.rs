//! Figure 12 (micro): similarity vs standard GROUP BY through the SQL
//! engine.

use criterion::{criterion_group, criterion_main, Criterion};
use sgb_bench::queries;
use sgb_datagen::TpchConfig;
use sgb_relation::Database;

fn bench(c: &mut Criterion) {
    let mut db = Database::new();
    TpchConfig::new(1.0)
        .density(0.002)
        .generate()
        .register_all(&mut db);
    let eps = 0.2;
    let mut group = c.benchmark_group("fig12_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("gb2_standard", |b| {
        b.iter(|| db.query(queries::GB2).unwrap())
    });
    let sgb3 = queries::with_sgb_all(queries::SGB3_TEMPLATE, eps, "L2", "JOIN-ANY");
    group.bench_function("sgb3_all_join_any", |b| b.iter(|| db.query(&sgb3).unwrap()));
    let sgb3e = queries::with_sgb_all(queries::SGB3_TEMPLATE, eps, "L2", "ELIMINATE");
    group.bench_function("sgb3_all_eliminate", |b| {
        b.iter(|| db.query(&sgb3e).unwrap())
    });
    let sgb4 = queries::with_sgb_any(queries::SGB3_TEMPLATE, eps, "L2");
    group.bench_function("sgb4_any", |b| b.iter(|| db.query(&sgb4).unwrap()));
    let sgb5 = queries::with_sgb_all(queries::SGB5_TEMPLATE, eps, "L2", "FORM-NEW-GROUP");
    group.bench_function("sgb5_all_form_new", |b| b.iter(|| db.query(&sgb5).unwrap()));
    group.bench_function("gb3_standard", |b| {
        b.iter(|| db.query(queries::GB3).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
