//! Substrate bench: distance predicates, ε-All region maintenance, and the
//! convex hull refinement of Section 6.4.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sgb_datagen::clustered_points;
use sgb_geom::{ConvexHull, EpsAllRegion, Metric, Point};

fn bench(c: &mut Criterion) {
    let points = clustered_points::<2>(10_000, 50, 0.01, 0x6E01);
    let mut group = c.benchmark_group("geom");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.throughput(Throughput::Elements(points.len() as u64));

    for metric in [Metric::L2, Metric::LInf] {
        group.bench_function(format!("within_10k_{metric:?}"), |b| {
            let q = Point::new([0.5, 0.5]);
            b.iter(|| points.iter().filter(|p| metric.within(p, &q, 0.2)).count())
        });
    }

    group.bench_function("eps_region_insert_10k", |b| {
        b.iter(|| {
            let mut reg = EpsAllRegion::new(0.2);
            for p in &points {
                reg.insert(p);
            }
            reg.allowed()
        })
    });

    let cluster: Vec<Point<2>> = points.iter().take(200).copied().collect();
    group.bench_function("hull_build_200", |b| b.iter(|| ConvexHull::build(&cluster)));

    let hull = ConvexHull::build(&cluster);
    group.bench_function("hull_admits", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = points[i % points.len()];
            i += 1;
            hull.admits(&q, 0.2, Metric::L2)
        })
    });
    group.bench_function("hull_contains", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = points[i % points.len()];
            i += 1;
            hull.contains(&q)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
