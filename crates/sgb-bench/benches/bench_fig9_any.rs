//! Figure 9d (micro): SGB-Any runtime across algorithms and ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgb_bench::experiments::fig9_workload;
use sgb_core::{sgb_any, AnyAlgorithm, SgbAnyConfig};
use sgb_geom::Metric;

fn bench(c: &mut Criterion) {
    let points = fig9_workload(2_000, 0xBE9D);
    let mut group = c.benchmark_group("fig9_any");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (aname, algo) in [
        ("all_pairs", AnyAlgorithm::AllPairs),
        ("indexed", AnyAlgorithm::Indexed),
    ] {
        for eps in [0.2, 0.8] {
            let cfg = SgbAnyConfig::new(eps).metric(Metric::L2).algorithm(algo);
            group.bench_with_input(BenchmarkId::new(aname, eps), &cfg, |b, cfg| {
                b.iter(|| sgb_any(&points, cfg))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
