//! Substrate bench: Union-Find operations at the SGB-Any usage pattern.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sgb_dsu::DisjointSet;

fn bench(c: &mut Criterion) {
    let n = 100_000usize;
    let mut group = c.benchmark_group("dsu");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("union_chain_100k", |b| {
        b.iter(|| {
            let mut dsu = DisjointSet::with_len(n);
            for i in 1..n {
                dsu.union(i - 1, i);
            }
            dsu.components()
        })
    });
    group.bench_function("union_random_100k", |b| {
        b.iter(|| {
            let mut dsu = DisjointSet::with_len(n);
            let mut state = 0x5EEDu64;
            for _ in 0..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = (state >> 33) as usize % n;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let b = (state >> 33) as usize % n;
                dsu.union(a, b);
            }
            dsu.components()
        })
    });
    group.bench_function("find_after_compression", |b| {
        let mut dsu = DisjointSet::with_len(n);
        for i in 1..n {
            dsu.union(i - 1, i);
        }
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % n;
            dsu.find(i)
        })
    });
    group.bench_function("into_groups_100k", |b| {
        let mut dsu = DisjointSet::with_len(n);
        for i in 1..n {
            if i % 100 != 0 {
                dsu.union(i - 1, i);
            }
        }
        b.iter(|| dsu.clone().into_groups().len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
