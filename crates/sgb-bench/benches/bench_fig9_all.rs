//! Figure 9a–9c (micro): SGB-All runtime across algorithms, overlap
//! semantics, and ε, at criterion scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgb_bench::experiments::fig9_workload;
use sgb_core::{sgb_all, AllAlgorithm, OverlapAction, SgbAllConfig};
use sgb_geom::Metric;

fn bench(c: &mut Criterion) {
    let points = fig9_workload(2_000, 0xBE9C);
    let mut group = c.benchmark_group("fig9_all");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (aname, algo) in [
        ("all_pairs", AllAlgorithm::AllPairs),
        ("bounds_checking", AllAlgorithm::BoundsChecking),
        ("indexed", AllAlgorithm::Indexed),
    ] {
        for (oname, overlap) in [
            ("join_any", OverlapAction::JoinAny),
            ("eliminate", OverlapAction::Eliminate),
            ("form_new", OverlapAction::FormNewGroup),
        ] {
            for eps in [0.2, 0.8] {
                let cfg = SgbAllConfig::new(eps)
                    .metric(Metric::L2)
                    .overlap(overlap)
                    .algorithm(algo);
                group.bench_with_input(
                    BenchmarkId::new(format!("{aname}/{oname}"), eps),
                    &cfg,
                    |b, cfg| b.iter(|| sgb_all(&points, cfg)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
