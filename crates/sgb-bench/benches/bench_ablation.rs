//! Ablations of the design choices DESIGN.md calls out:
//!
//! * the convex-hull refinement threshold under `L2` (hull always /
//!   at 16 members / never — pure member scans);
//! * the R-tree fan-out of the on-the-fly group index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgb_bench::experiments::fig9_workload;
use sgb_core::{sgb_all, sgb_any, AllAlgorithm, SgbAllConfig, SgbAnyConfig};
use sgb_geom::Metric;

fn bench(c: &mut Criterion) {
    let points = fig9_workload(4_000, 0xAB1A);
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Hull threshold ablation (L2, Bounds-Checking: every candidate hit
    // runs the refinement).
    for (label, threshold) in [("always", 1usize), ("at_16", 16), ("never", usize::MAX)] {
        let cfg = SgbAllConfig::new(0.5)
            .metric(Metric::L2)
            .algorithm(AllAlgorithm::BoundsChecking)
            .hull_threshold(threshold);
        group.bench_with_input(BenchmarkId::new("hull_threshold", label), &cfg, |b, cfg| {
            b.iter(|| sgb_all(&points, cfg))
        });
    }

    // R-tree fan-out ablation (Indexed SGB-All and SGB-Any).
    for fanout in [4usize, 12, 32] {
        let cfg = SgbAllConfig::new(0.3)
            .metric(Metric::L2)
            .algorithm(AllAlgorithm::Indexed)
            .rtree_fanout(fanout);
        group.bench_with_input(
            BenchmarkId::new("all_rtree_fanout", fanout),
            &cfg,
            |b, cfg| b.iter(|| sgb_all(&points, cfg)),
        );
        let cfg = SgbAnyConfig::new(0.3)
            .metric(Metric::L2)
            .rtree_fanout(fanout);
        group.bench_with_input(
            BenchmarkId::new("any_rtree_fanout", fanout),
            &cfg,
            |b, cfg| b.iter(|| sgb_any(&points, cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
