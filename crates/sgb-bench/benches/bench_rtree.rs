//! Substrate bench: R-tree insert / window query / delete / kNN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgb_datagen::clustered_points;
use sgb_geom::{Metric, Point, Rect};
use sgb_spatial::RTree;

fn bench(c: &mut Criterion) {
    let points = clustered_points::<2>(10_000, 100, 0.01, 0x47EE);
    let mut group = c.benchmark_group("rtree");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.throughput(Throughput::Elements(points.len() as u64));
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut tree: RTree<2, usize> = RTree::new();
            for (i, p) in points.iter().enumerate() {
                tree.insert_point(*p, i);
            }
            tree
        })
    });

    let mut tree: RTree<2, usize> = RTree::new();
    for (i, p) in points.iter().enumerate() {
        tree.insert_point(*p, i);
    }
    for side in [0.01, 0.1] {
        group.bench_with_input(BenchmarkId::new("window_query", side), &side, |b, &side| {
            let mut acc = 0usize;
            let mut i = 0usize;
            b.iter(|| {
                let center = points[i % points.len()];
                i += 1;
                let mut hits = 0usize;
                tree.query(&Rect::centered(center, side), |_, _| hits += 1);
                acc += hits;
                hits
            });
            std::hint::black_box(acc);
        });
    }
    group.bench_function("knn_10", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = points[i % points.len()];
            i += 1;
            tree.nearest(&q, 10, Metric::L2)
        })
    });
    group.bench_function("delete_reinsert", |b| {
        let mut tree = tree.clone();
        let mut i = 0usize;
        b.iter(|| {
            let idx = i % points.len();
            i += 1;
            let p = points[idx];
            assert!(tree.remove(&Rect::point(p), &idx));
            tree.insert_point(p, idx);
        })
    });
    // The SGB-All maintenance pattern: update a rectangle in place.
    group.bench_function("update_group_rect", |b| {
        let mut tree: RTree<2, u32> = RTree::new();
        for g in 0..1000u32 {
            let p = Point::new([(g % 32) as f64, (g / 32) as f64]);
            tree.insert(Rect::centered(p, 0.3), g);
        }
        let mut i = 0u32;
        b.iter(|| {
            let g = i % 1000;
            i += 1;
            let p = Point::new([(g % 32) as f64, (g / 32) as f64]);
            let old = Rect::centered(p, 0.3);
            assert!(tree.update(&old, old, g));
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
