//! Figure 11 (micro): SGB vs the clustering baselines on check-in data.

use criterion::{criterion_group, criterion_main, Criterion};
use sgb_cluster::{birch, dbscan, kmeans, BirchConfig, DbscanConfig, KMeansConfig};
use sgb_core::{sgb_all, sgb_any, SgbAllConfig, SgbAnyConfig};
use sgb_datagen::CheckinConfig;
use sgb_geom::Metric;

fn bench(c: &mut Criterion) {
    let points = CheckinConfig::brightkite_like(3_000).generate().points();
    let eps = 0.2;
    let mut group = c.benchmark_group("fig11_clustering");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("dbscan", |b| {
        b.iter(|| dbscan(&points, &DbscanConfig::new(eps).min_pts(4)))
    });
    group.bench_function("birch", |b| {
        b.iter(|| birch(&points, &BirchConfig::new(eps)))
    });
    group.bench_function("kmeans_20", |b| {
        b.iter(|| kmeans(&points, &KMeansConfig::new(20).max_iters(50)))
    });
    group.bench_function("kmeans_40", |b| {
        b.iter(|| kmeans(&points, &KMeansConfig::new(40).max_iters(50)))
    });
    group.bench_function("sgb_all_join_any", |b| {
        b.iter(|| sgb_all(&points, &SgbAllConfig::new(eps).metric(Metric::L2)))
    });
    group.bench_function("sgb_any", |b| {
        b.iter(|| sgb_any(&points, &SgbAnyConfig::new(eps).metric(Metric::L2)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
