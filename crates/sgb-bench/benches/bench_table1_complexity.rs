//! Table 1 (micro): runtime growth of the SGB-All variants with input
//! size, under L∞.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgb_bench::experiments::fig9_workload;
use sgb_core::{sgb_all, AllAlgorithm, OverlapAction, SgbAllConfig};
use sgb_geom::Metric;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_complexity");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [500usize, 1_000, 2_000] {
        let points = fig9_workload(n, 0x7AB1);
        group.throughput(Throughput::Elements(n as u64));
        for (name, algo) in [
            ("all_pairs", AllAlgorithm::AllPairs),
            ("bounds_checking", AllAlgorithm::BoundsChecking),
            ("indexed", AllAlgorithm::Indexed),
        ] {
            let cfg = SgbAllConfig::new(0.3)
                .metric(Metric::LInf)
                .overlap(OverlapAction::JoinAny)
                .algorithm(algo);
            group.bench_with_input(BenchmarkId::new(name, n), &cfg, |b, cfg| {
                b.iter(|| sgb_all(&points, cfg))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
