//! Figure 10 (micro): SGB runtime as the TPC-H-derived input grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgb_bench::experiments::fig10_points;
use sgb_core::{sgb_all, sgb_any, AllAlgorithm, SgbAllConfig, SgbAnyConfig};
use sgb_geom::Metric;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_scale");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for sf in [1.0, 2.0, 4.0] {
        let points = fig10_points(sf, 0.2);
        group.throughput(Throughput::Elements(points.len() as u64));
        for (name, algo) in [
            ("bounds_checking", AllAlgorithm::BoundsChecking),
            ("indexed", AllAlgorithm::Indexed),
        ] {
            let cfg = SgbAllConfig::new(0.2).metric(Metric::L2).algorithm(algo);
            group.bench_with_input(
                BenchmarkId::new(format!("all/{name}"), sf),
                &cfg,
                |b, cfg| b.iter(|| sgb_all(&points, cfg)),
            );
        }
        let cfg = SgbAnyConfig::new(0.2).metric(Metric::L2);
        group.bench_with_input(BenchmarkId::new("any/indexed", sf), &cfg, |b, cfg| {
            b.iter(|| sgb_any(&points, cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
