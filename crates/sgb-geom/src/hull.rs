//! 2-D convex hulls for the `L1`/`L2` false-positive refinement
//! (Section 6.4).
//!
//! Under a metric whose ε-ball is a proper subset of the ε-square
//! ([`Metric::needs_refinement`] — the `L2` disc and the `L1` diamond) the
//! ε-All bounding rectangle of a group admits false positives (the grey
//! zone of Figure 7b). The paper refines them with the *Convex Hull Test*
//! (Procedure 6): a candidate point `p`
//!
//! * inside the group's convex hull is guaranteed similar to all members
//!   (the hull diameter of a valid group is at most ε, and a Minkowski
//!   distance is convex in each argument, so its maximum over the hull is
//!   attained at a vertex — every interior point is therefore within ε of
//!   every member);
//! * outside the hull is similar to all members iff its distance to the
//!   *farthest hull vertex* is at most ε (by the same convexity argument,
//!   the farthest group member from any query point is always a hull
//!   vertex — true for every Minkowski norm, not just `L2`).

use crate::{Metric, Point};

/// The convex hull of a set of 2-D points, stored in counter-clockwise
/// order starting from the lexicographically smallest vertex.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvexHull {
    /// CCW vertices; collinear interior points are dropped. For degenerate
    /// inputs this may hold one (single point) or two (segment) vertices.
    vertices: Vec<Point<2>>,
}

impl ConvexHull {
    /// Builds the hull of `points` with Andrew's monotone chain,
    /// `O(k log k)` (`getConvexHull(g)` in Procedure 6).
    ///
    /// Returns an empty hull for an empty input.
    pub fn build(points: &[Point<2>]) -> Self {
        let mut pts: Vec<Point<2>> = points.to_vec();
        pts.sort_by(|a, b| {
            a.x()
                .partial_cmp(&b.x())
                .unwrap()
                .then(a.y().partial_cmp(&b.y()).unwrap())
        });
        pts.dedup();
        if pts.len() <= 2 {
            return Self { vertices: pts };
        }

        let mut hull: Vec<Point<2>> = Vec::with_capacity(pts.len() + 1);
        // Lower chain.
        for p in &pts {
            while hull.len() >= 2
                && Point::cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
            {
                hull.pop();
            }
            hull.push(*p);
        }
        // Upper chain.
        let lower_len = hull.len() + 1;
        for p in pts.iter().rev() {
            while hull.len() >= lower_len
                && Point::cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
            {
                hull.pop();
            }
            hull.push(*p);
        }
        hull.pop(); // last point repeats the first
        if hull.len() <= 1 {
            // All input points collinear: monotone chain collapses; keep the
            // two extremes so the segment geometry survives.
            let first = *pts.first().unwrap();
            let last = *pts.last().unwrap();
            let vertices = if first == last {
                vec![first]
            } else {
                vec![first, last]
            };
            return Self { vertices };
        }
        Self { vertices: hull }
    }

    /// Number of hull vertices (the paper's `h`, expected `O(log k)` for
    /// random inputs).
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the hull has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Hull vertices in CCW order.
    #[inline]
    pub fn vertices(&self) -> &[Point<2>] {
        &self.vertices
    }

    /// `true` when `p` lies inside or on the hull (Procedure 6, line 2).
    ///
    /// `O(log h)` via binary search on the triangle fan rooted at
    /// `vertices[0]`.
    pub fn contains(&self, p: &Point<2>) -> bool {
        let v = &self.vertices;
        match v.len() {
            0 => false,
            1 => v[0] == *p,
            2 => {
                // On-segment test for the degenerate (collinear) hull.
                if Point::cross(&v[0], &v[1], p) != 0.0 {
                    return false;
                }
                let (lo_x, hi_x) = (v[0].x().min(v[1].x()), v[0].x().max(v[1].x()));
                let (lo_y, hi_y) = (v[0].y().min(v[1].y()), v[0].y().max(v[1].y()));
                lo_x <= p.x() && p.x() <= hi_x && lo_y <= p.y() && p.y() <= hi_y
            }
            n => {
                // p must be inside the fan sector [v0→v1, v0→v_{n-1}].
                if Point::cross(&v[0], &v[1], p) < 0.0 || Point::cross(&v[0], &v[n - 1], p) > 0.0 {
                    return false;
                }
                // Binary search for the sector v0, v[i], v[i+1] containing p.
                let (mut lo, mut hi) = (1, n - 1);
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if Point::cross(&v[0], &v[mid], p) >= 0.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                Point::cross(&v[lo], &v[lo + 1], p) >= 0.0
            }
        }
    }

    /// The hull vertex farthest from `p` under `metric`, with its distance
    /// (`getMaxDistElem` in Procedure 6). Linear in the hull size; hulls of
    /// valid ε-groups are tiny (`h ≈ log k`), so this matches the paper's
    /// `O(log k)` cost in practice without the fragile unimodality
    /// assumption a ternary search would need.
    pub fn farthest_from(&self, p: &Point<2>, metric: Metric) -> Option<(Point<2>, f64)> {
        self.vertices
            .iter()
            .map(|v| (*v, metric.distance(v, p)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }

    /// Hull diameter (largest pairwise vertex distance) under `metric`, via
    /// rotating calipers for `L2` on proper hulls, falling back to the
    /// quadratic scan for tiny/degenerate hulls and the polyhedral norms
    /// (`L1`/`L∞`, whose antipodal-pair structure the calipers do not
    /// model).
    ///
    /// The SGB-All invariant (Section 6.4) is `diameter ≤ ε`; the test
    /// suites use this to validate every output group.
    pub fn diameter(&self, metric: Metric) -> f64 {
        let v = &self.vertices;
        let n = v.len();
        if n < 2 {
            return 0.0;
        }
        if metric != Metric::L2 || n <= 3 {
            let mut best: f64 = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    best = best.max(metric.distance(&v[i], &v[j]));
                }
            }
            return best;
        }
        // Rotating calipers over antipodal pairs.
        let area2 = |a: &Point<2>, b: &Point<2>, c: &Point<2>| Point::cross(a, b, c).abs();
        let mut best = 0.0f64;
        let mut j = 1;
        for i in 0..n {
            let ni = (i + 1) % n;
            while area2(&v[i], &v[ni], &v[(j + 1) % n]) > area2(&v[i], &v[ni], &v[j]) {
                j = (j + 1) % n;
            }
            best = best.max(v[i].dist_l2(&v[j]));
            best = best.max(v[ni].dist_l2(&v[j]));
        }
        best
    }

    /// The Convex Hull Test of Procedure 6: `true` when `p` genuinely
    /// satisfies the similarity predicate against *all* group members
    /// (i.e. `p` is not a false positive of the rectangle filter). Valid
    /// under every [`Metric`] whenever the member set is a legal ε-clique
    /// (see the module docs for the convexity argument); SGB-All uses it
    /// for the metrics whose rectangle filter is conservative (`L1`/`L2`).
    ///
    /// The farthest-vertex branch evaluates [`Metric::within`] — the same
    /// floating-point expression the member-scan path uses — so the two
    /// exact checks cannot disagree on boundary-tied distances.
    pub fn admits(&self, p: &Point<2>, eps: f64, metric: Metric) -> bool {
        if self.is_empty() {
            return true;
        }
        if self.contains(p) {
            return true;
        }
        match self.farthest_from(p, metric) {
            Some((far, _)) => metric.within(&far, p, eps),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point<2> {
        Point::new([x, y])
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = [
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 2.0),
            p(0.0, 2.0),
            p(1.0, 1.0), // interior
            p(1.0, 0.0), // edge-collinear
            p(0.5, 1.9), // interior
        ];
        let h = ConvexHull::build(&pts);
        assert_eq!(h.len(), 4);
        let vs = h.vertices();
        assert!(vs.contains(&p(0.0, 0.0)));
        assert!(vs.contains(&p(2.0, 0.0)));
        assert!(vs.contains(&p(2.0, 2.0)));
        assert!(vs.contains(&p(0.0, 2.0)));
        assert!(!vs.contains(&p(1.0, 1.0)));
    }

    #[test]
    fn hull_vertices_are_ccw() {
        let pts = [
            p(0.0, 0.0),
            p(3.0, 1.0),
            p(2.0, 4.0),
            p(-1.0, 2.0),
            p(1.0, 1.5),
        ];
        let h = ConvexHull::build(&pts);
        let v = h.vertices();
        for i in 0..v.len() {
            let a = &v[i];
            let b = &v[(i + 1) % v.len()];
            let c = &v[(i + 2) % v.len()];
            assert!(Point::cross(a, b, c) > 0.0, "vertices must turn left");
        }
    }

    #[test]
    fn degenerate_hulls() {
        assert!(ConvexHull::build(&[]).is_empty());
        let single = ConvexHull::build(&[p(1.0, 1.0), p(1.0, 1.0)]);
        assert_eq!(single.len(), 1);
        assert!(single.contains(&p(1.0, 1.0)));
        assert!(!single.contains(&p(1.0, 1.1)));
        let seg = ConvexHull::build(&[p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)]);
        assert_eq!(seg.len(), 2);
        assert!(seg.contains(&p(1.5, 1.5)));
        assert!(!seg.contains(&p(1.5, 1.6)));
        assert!(!seg.contains(&p(3.0, 3.0)));
        assert_eq!(seg.diameter(Metric::L2), 8.0f64.sqrt());
    }

    #[test]
    fn containment_matches_halfplane_definition() {
        let pts = [
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 3.0),
            p(0.0, 3.0),
            p(2.0, 5.0),
        ];
        let h = ConvexHull::build(&pts);
        let inside = [
            p(2.0, 1.0),
            p(0.0, 0.0),
            p(2.0, 4.9),
            p(4.0, 3.0),
            p(2.0, 0.0),
        ];
        let outside = [
            p(-0.1, 0.0),
            p(4.1, 1.0),
            p(0.5, 4.5),
            p(2.0, 5.1),
            p(5.0, 5.0),
        ];
        for q in inside {
            assert!(h.contains(&q), "{q:?} should be inside");
        }
        for q in outside {
            assert!(!h.contains(&q), "{q:?} should be outside");
        }
    }

    #[test]
    fn farthest_vertex_is_true_farthest_member() {
        // The farthest point of a set from any query is always on the hull.
        let pts = [
            p(0.0, 0.0),
            p(2.0, 0.5),
            p(1.0, 1.0),
            p(0.5, 2.0),
            p(2.0, 2.0),
        ];
        let h = ConvexHull::build(&pts);
        let q = p(-1.0, -1.0);
        let (far, d) = h.farthest_from(&q, Metric::L2).unwrap();
        assert_eq!(far, p(2.0, 2.0));
        let brute = pts.iter().map(|m| m.dist_l2(&q)).fold(0.0f64, f64::max);
        assert!((d - brute).abs() < 1e-12);
    }

    #[test]
    fn fig7c_convex_hull_test() {
        // Figure 7c: group hull a1..a5, ε = 6. Interior point y passes; the
        // outside point x passes iff its farthest hull vertex is within ε.
        let hull_pts = [
            p(4.0, 3.0),
            p(7.0, 2.0),
            p(9.0, 4.0),
            p(8.0, 6.0),
            p(5.0, 6.0),
        ];
        let h = ConvexHull::build(&hull_pts);
        assert_eq!(h.len(), 5);
        let y = p(6.5, 4.0); // interior
        assert!(h.contains(&y));
        assert!(h.admits(&y, 6.0, Metric::L2));
        let x = p(10.0, 7.0); // outside, farthest vertex a1=(4,3): dist ≈ 7.2
        assert!(!h.contains(&x));
        assert!(!h.admits(&x, 6.0, Metric::L2));
        let x2 = p(9.5, 4.5); // outside but close to everything
        assert!(!h.contains(&x2));
        assert!(h.admits(&x2, 6.0, Metric::L2));
    }

    #[test]
    fn diameter_rotating_calipers_matches_brute_force() {
        let pts = [
            p(0.0, 0.0),
            p(5.0, 1.0),
            p(6.0, 4.0),
            p(3.0, 6.0),
            p(-1.0, 4.0),
            p(-2.0, 1.0),
            p(2.0, 3.0),
        ];
        let h = ConvexHull::build(&pts);
        let mut brute: f64 = 0.0;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                brute = brute.max(pts[i].dist_l2(&pts[j]));
            }
        }
        assert!((h.diameter(Metric::L2) - brute).abs() < 1e-12);
        // The polyhedral norms go through the quadratic scan.
        for metric in [Metric::L1, Metric::LInf] {
            let mut brute: f64 = 0.0;
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    brute = brute.max(metric.distance(&pts[i], &pts[j]));
                }
            }
            assert!((h.diameter(metric) - brute).abs() < 1e-12, "{metric}");
        }
    }

    #[test]
    fn admits_equals_all_pairs_check_under_every_metric() {
        // The convex-hull refinement must stay exact for the conservative
        // metrics (L1/L2) — and for L∞, where SGB-All never calls it.
        let members = [
            p(0.0, 0.0),
            p(0.6, 0.1),
            p(0.3, 0.55),
            p(0.5, 0.5),
            p(0.1, 0.3),
        ];
        let h = ConvexHull::build(&members);
        for metric in Metric::ALL {
            let eps = 1.1;
            // Valid clique under every metric: L1 diameter is the largest.
            assert!(h.diameter(metric) <= eps);
            for xi in -8..=16 {
                for yi in -8..=16 {
                    let q = p(xi as f64 * 0.125, yi as f64 * 0.125);
                    let truth = members.iter().all(|m| metric.within(m, &q, eps));
                    assert_eq!(h.admits(&q, eps, metric), truth, "{metric} probe {q:?}");
                }
            }
        }
    }

    #[test]
    fn admits_equals_all_pairs_check() {
        // admits(p) must equal "p within ε of every member" for points that
        // passed the rectangle filter — here checked for arbitrary probes.
        let members = [
            p(0.0, 0.0),
            p(1.0, 0.2),
            p(0.4, 0.9),
            p(0.8, 0.8),
            p(0.2, 0.4),
        ];
        let h = ConvexHull::build(&members);
        let eps = 1.3;
        for xi in -8..=16 {
            for yi in -8..=16 {
                let q = p(xi as f64 * 0.125, yi as f64 * 0.125);
                let truth = members.iter().all(|m| Metric::L2.within(m, &q, eps));
                assert_eq!(h.admits(&q, eps, Metric::L2), truth, "probe {q:?}");
            }
        }
    }
}
