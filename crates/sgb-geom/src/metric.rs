//! Minkowski distance functions and the similarity predicate.

use crate::Point;

/// The distance function `δ` of the metric space (Definition 1).
///
/// The paper considers two Minkowski distances (Section 3):
///
/// * [`Metric::L2`] — the Euclidean distance
///   `δ2(pi, pj) = sqrt(Σ_y (piy − pjy)²)`, selected in SQL with `L2`;
/// * [`Metric::LInf`] — the maximum distance
///   `δ∞(pi, pj) = max_y |piy − pjy|`, selected in SQL with `LINF`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Euclidean distance.
    #[default]
    L2,
    /// Maximum (Chebyshev / `L∞`) distance.
    LInf,
}

impl Metric {
    /// The distance `δ(a, b)` under this metric.
    #[inline]
    pub fn distance<const D: usize>(&self, a: &Point<D>, b: &Point<D>) -> f64 {
        match self {
            Metric::L2 => a.dist_l2(b),
            Metric::LInf => a.dist_linf(b),
        }
    }

    /// The similarity predicate `ξ(δ, ε)(a, b) : δ(a, b) ≤ ε`
    /// (Definition 2).
    ///
    /// For `L2` the comparison is done on squared distances so the hot path
    /// avoids a square root per pair.
    #[inline]
    pub fn within<const D: usize>(&self, a: &Point<D>, b: &Point<D>, eps: f64) -> bool {
        match self {
            Metric::L2 => a.dist_sq(b) <= eps * eps,
            Metric::LInf => a.dist_linf(b) <= eps,
        }
    }

    /// The SQL keyword for this metric in the paper's grammar
    /// (`DISTANCE-TO-ALL [L2 | LINF]`).
    pub fn sql_keyword(&self) -> &'static str {
        match self {
            Metric::L2 => "L2",
            Metric::LInf => "LINF",
        }
    }

    /// Parses the SQL keyword (case-insensitive). Accepts the paper's
    /// prose variants `lone`/`ltwo` (Table 2) as well.
    pub fn from_sql_keyword(word: &str) -> Option<Self> {
        match word.to_ascii_uppercase().as_str() {
            "L2" | "LTWO" => Some(Metric::L2),
            "LINF" | "LONE" | "L_INF" | "LINFINITY" => Some(Metric::LInf),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_dispatch() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(Metric::L2.distance(&a, &b), 5.0);
        assert_eq!(Metric::LInf.distance(&a, &b), 4.0);
    }

    #[test]
    fn predicate_is_inclusive_at_epsilon() {
        // Definition 2 uses δ(pi, pj) ≤ ε, i.e. the boundary is similar.
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 0.0]);
        assert!(Metric::L2.within(&a, &b, 3.0));
        assert!(Metric::LInf.within(&a, &b, 3.0));
        assert!(!Metric::L2.within(&a, &b, 2.999));
        assert!(!Metric::LInf.within(&a, &b, 2.999));
    }

    #[test]
    fn fig1_clique_points_are_pairwise_similar() {
        // Figure 1a: points a–e form a clique under ε = 3.
        let pts = [
            Point::new([1.0, 2.0]),
            Point::new([2.0, 4.0]),
            Point::new([3.0, 2.5]),
            Point::new([2.5, 1.5]),
            Point::new([1.5, 3.0]),
        ];
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                assert!(Metric::L2.within(&pts[i], &pts[j], 3.0));
            }
        }
    }

    #[test]
    fn sql_keyword_round_trip() {
        assert_eq!(Metric::from_sql_keyword("l2"), Some(Metric::L2));
        assert_eq!(Metric::from_sql_keyword("LINF"), Some(Metric::LInf));
        assert_eq!(Metric::from_sql_keyword("lone"), Some(Metric::LInf));
        assert_eq!(Metric::from_sql_keyword("ltwo"), Some(Metric::L2));
        assert_eq!(Metric::from_sql_keyword("cosine"), None);
        assert_eq!(Metric::L2.sql_keyword(), "L2");
        assert_eq!(Metric::LInf.sql_keyword(), "LINF");
    }

    #[test]
    fn within_matches_distance_for_both_metrics() {
        let a = Point::new([1.0, -2.0, 0.5]);
        let b = Point::new([4.0, 2.0, -1.0]);
        for metric in [Metric::L2, Metric::LInf] {
            let d = metric.distance(&a, &b);
            assert!(metric.within(&a, &b, d));
            assert!(metric.within(&a, &b, d + 1e-9));
            assert!(!metric.within(&a, &b, d - 1e-9));
        }
    }
}
