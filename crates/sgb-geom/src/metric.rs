//! Minkowski distance functions and the similarity predicate.
//!
//! Besides the distance itself, [`Metric`] centralises every piece of
//! per-metric behaviour the SGB operators need — how the ε-All rectangle
//! filter relates to the metric's ball ([`Metric::rect_filter`]), the SQL
//! keywords of the paper's grammar (Table 2), and a comparison-only
//! distance surrogate for nearest-element searches
//! ([`Metric::rank_distance`]). Adding a metric means extending the enum
//! and the `match` arms in this file (plus [`crate::Rect::min_distance`] /
//! [`crate::Rect::max_distance`]); the operator, index, SQL, and
//! clustering layers are metric-generic.

use std::fmt;

use crate::Point;

/// The distance function `δ` of the metric space (Definition 1).
///
/// Three Minkowski distances are supported (the paper's Section 3 evaluates
/// `L2`/`L∞`; its grammar in Table 2 also names `LONE`, the Manhattan
/// distance):
///
/// * [`Metric::L1`] — the Manhattan distance
///   `δ1(pi, pj) = Σ_y |piy − pjy|`, selected in SQL with `L1`/`LONE`;
/// * [`Metric::L2`] — the Euclidean distance
///   `δ2(pi, pj) = sqrt(Σ_y (piy − pjy)²)`, selected with `L2`/`LTWO`;
/// * [`Metric::LInf`] — the maximum distance
///   `δ∞(pi, pj) = max_y |piy − pjy|`, selected with `LINF`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Manhattan (`L1` / taxicab) distance. Its ε-ball is a diamond
    /// (cross-polytope), strictly inside the ε-square.
    L1,
    /// Euclidean distance.
    #[default]
    L2,
    /// Maximum (Chebyshev / `L∞`) distance. Its ε-ball is the ε-square
    /// itself.
    LInf,
}

/// How the axis-aligned ε-All rectangle filter of Definition 5 relates to a
/// metric's ε-ball — the per-metric policy driving the SGB-All refinement
/// step (Sections 6.3–6.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RectFilter {
    /// The rectangle **is** the intersection of the members' ε-balls:
    /// membership of the allowed region is an exact similarity test
    /// (`L∞`, Section 6.3).
    Exact,
    /// The rectangle strictly contains the intersection of the members'
    /// ε-balls: a point inside it may still be a false positive and needs
    /// refinement by the convex-hull test or a member scan (`L1`/`L2`,
    /// Section 6.4 — the `L1` diamond and the `L2` disc are both proper
    /// subsets of their bounding square).
    Conservative,
}

impl Metric {
    /// Every supported metric, for sweeps in tests and benchmarks.
    pub const ALL: [Metric; 3] = [Metric::L1, Metric::L2, Metric::LInf];

    /// The distance `δ(a, b)` under this metric.
    #[inline]
    pub fn distance<const D: usize>(&self, a: &Point<D>, b: &Point<D>) -> f64 {
        match self {
            Metric::L1 => a.dist_l1(b),
            Metric::L2 => a.dist_l2(b),
            Metric::LInf => a.dist_linf(b),
        }
    }

    /// The similarity predicate `ξ(δ, ε)(a, b) : δ(a, b) ≤ ε`
    /// (Definition 2).
    ///
    /// For `L2` the comparison is done on squared distances so the hot path
    /// avoids a square root per pair.
    #[inline]
    pub fn within<const D: usize>(&self, a: &Point<D>, b: &Point<D>, eps: f64) -> bool {
        match self {
            Metric::L1 => a.dist_l1(b) <= eps,
            Metric::L2 => a.dist_sq(b) <= eps * eps,
            Metric::LInf => a.dist_linf(b) <= eps,
        }
    }

    /// A monotone surrogate of [`distance`](Self::distance) for
    /// nearest-element comparisons: cheaper to compute but ordered
    /// identically (`rank_distance(a,b) < rank_distance(a,c)` ⇔
    /// `distance(a,b) < distance(a,c)`). For `L2` this is the squared
    /// distance (no square root); for `L1`/`L∞` the distance itself.
    ///
    /// Not a distance — never compare it against ε directly.
    #[inline]
    pub fn rank_distance<const D: usize>(&self, a: &Point<D>, b: &Point<D>) -> f64 {
        match self {
            Metric::L1 => a.dist_l1(b),
            Metric::L2 => a.dist_sq(b),
            Metric::LInf => a.dist_linf(b),
        }
    }

    /// How the ε-All allowed-rectangle filter relates to this metric's
    /// ball: [`RectFilter::Exact`] for `L∞`, [`RectFilter::Conservative`]
    /// for `L1`/`L2`.
    #[inline]
    pub fn rect_filter(&self) -> RectFilter {
        match self {
            Metric::LInf => RectFilter::Exact,
            Metric::L1 | Metric::L2 => RectFilter::Conservative,
        }
    }

    /// `true` when a hit of the rectangle filter still needs the exact
    /// refinement (convex-hull test or member scan) — shorthand for
    /// `rect_filter() == RectFilter::Conservative`.
    #[inline]
    pub fn needs_refinement(&self) -> bool {
        self.rect_filter() == RectFilter::Conservative
    }

    /// The canonical SQL keyword for this metric in the paper's grammar
    /// (`DISTANCE-TO-ALL [L1 | L2 | LINF]`).
    pub fn sql_keyword(&self) -> &'static str {
        match self {
            Metric::L1 => "L1",
            Metric::L2 => "L2",
            Metric::LInf => "LINF",
        }
    }

    /// All keyword spellings accepted by
    /// [`from_sql_keyword`](Self::from_sql_keyword), for building parser
    /// error messages.
    pub const SQL_KEYWORDS: &'static [&'static str] =
        &["L1", "LONE", "L2", "LTWO", "LINF", "L_INF", "LINFINITY"];

    /// Parses the SQL keyword (case-insensitive). Accepts the paper's
    /// prose variants `lone`/`ltwo` (Table 2) as well; `lone` is the
    /// Manhattan metric (it does **not** alias `L∞`).
    pub fn from_sql_keyword(word: &str) -> Option<Self> {
        match word.to_ascii_uppercase().as_str() {
            "L1" | "LONE" => Some(Metric::L1),
            "L2" | "LTWO" => Some(Metric::L2),
            "LINF" | "L_INF" | "LINFINITY" => Some(Metric::LInf),
            _ => None,
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_dispatch() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(Metric::L1.distance(&a, &b), 7.0);
        assert_eq!(Metric::L2.distance(&a, &b), 5.0);
        assert_eq!(Metric::LInf.distance(&a, &b), 4.0);
    }

    #[test]
    fn predicate_is_inclusive_at_epsilon() {
        // Definition 2 uses δ(pi, pj) ≤ ε, i.e. the boundary is similar.
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 0.0]);
        for metric in Metric::ALL {
            assert!(metric.within(&a, &b, 3.0), "{metric}");
            assert!(!metric.within(&a, &b, 2.999), "{metric}");
        }
    }

    #[test]
    fn fig1_clique_points_are_pairwise_similar() {
        // Figure 1a: points a–e form a clique under ε = 3.
        let pts = [
            Point::new([1.0, 2.0]),
            Point::new([2.0, 4.0]),
            Point::new([3.0, 2.5]),
            Point::new([2.5, 1.5]),
            Point::new([1.5, 3.0]),
        ];
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                assert!(Metric::L2.within(&pts[i], &pts[j], 3.0));
            }
        }
    }

    #[test]
    fn sql_keyword_round_trip() {
        assert_eq!(Metric::from_sql_keyword("l1"), Some(Metric::L1));
        assert_eq!(Metric::from_sql_keyword("lone"), Some(Metric::L1));
        assert_eq!(Metric::from_sql_keyword("l2"), Some(Metric::L2));
        assert_eq!(Metric::from_sql_keyword("ltwo"), Some(Metric::L2));
        assert_eq!(Metric::from_sql_keyword("LINF"), Some(Metric::LInf));
        assert_eq!(Metric::from_sql_keyword("LInfinity"), Some(Metric::LInf));
        assert_eq!(Metric::from_sql_keyword("cosine"), None);
        for metric in Metric::ALL {
            assert_eq!(Metric::from_sql_keyword(metric.sql_keyword()), Some(metric));
            assert!(Metric::SQL_KEYWORDS.contains(&metric.sql_keyword()));
        }
        for kw in Metric::SQL_KEYWORDS {
            assert!(Metric::from_sql_keyword(kw).is_some(), "{kw}");
        }
    }

    #[test]
    fn lone_is_manhattan_not_linf() {
        // Regression: LONE used to silently alias L∞; Table 2 names the
        // Manhattan metric.
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([0.6, 0.6]);
        let lone = Metric::from_sql_keyword("LONE").unwrap();
        assert!(!lone.within(&a, &b, 1.0)); // δ1 = 1.2 > 1
        assert!(Metric::LInf.within(&a, &b, 1.0)); // δ∞ = 0.6 ≤ 1
    }

    #[test]
    fn within_matches_distance_for_all_metrics() {
        let a = Point::new([1.0, -2.0, 0.5]);
        let b = Point::new([4.0, 2.0, -1.0]);
        for metric in Metric::ALL {
            let d = metric.distance(&a, &b);
            assert!(metric.within(&a, &b, d));
            assert!(metric.within(&a, &b, d + 1e-9));
            assert!(!metric.within(&a, &b, d - 1e-9));
        }
    }

    #[test]
    fn rect_filter_policy() {
        assert_eq!(Metric::LInf.rect_filter(), RectFilter::Exact);
        assert_eq!(Metric::L1.rect_filter(), RectFilter::Conservative);
        assert_eq!(Metric::L2.rect_filter(), RectFilter::Conservative);
        assert!(!Metric::LInf.needs_refinement());
        assert!(Metric::L1.needs_refinement());
        assert!(Metric::L2.needs_refinement());
    }

    #[test]
    fn rank_distance_orders_like_distance() {
        let q = Point::new([0.3, -0.7]);
        let others = [
            Point::new([1.0, 1.0]),
            Point::new([-2.0, 0.1]),
            Point::new([0.5, -0.5]),
            Point::new([3.0, 3.0]),
        ];
        for metric in Metric::ALL {
            let mut by_rank: Vec<usize> = (0..others.len()).collect();
            by_rank.sort_by(|&i, &j| {
                metric
                    .rank_distance(&q, &others[i])
                    .partial_cmp(&metric.rank_distance(&q, &others[j]))
                    .unwrap()
            });
            let mut by_dist: Vec<usize> = (0..others.len()).collect();
            by_dist.sort_by(|&i, &j| {
                metric
                    .distance(&q, &others[i])
                    .partial_cmp(&metric.distance(&q, &others[j]))
                    .unwrap()
            });
            assert_eq!(by_rank, by_dist, "{metric}");
        }
    }

    #[test]
    fn display_prints_sql_keyword() {
        assert_eq!(Metric::L1.to_string(), "L1");
        assert_eq!(Metric::L2.to_string(), "L2");
        assert_eq!(Metric::LInf.to_string(), "LINF");
    }
}
