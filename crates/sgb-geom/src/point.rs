//! `D`-dimensional points.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A point in `D`-dimensional Euclidean space.
///
/// The paper treats the grouping attributes of a tuple as a point
/// `p : 〈x1, …, xd〉` (Section 3). `D` is a compile-time constant because the
/// SGB operators are instantiated for a fixed set of grouping attributes.
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Self { coords }
    }

    /// The origin (all coordinates zero).
    #[inline]
    pub const fn origin() -> Self {
        Self { coords: [0.0; D] }
    }

    /// The number of dimensions.
    #[inline]
    pub const fn dims(&self) -> usize {
        D
    }

    /// Coordinate along dimension `d`.
    #[inline]
    pub fn coord(&self, d: usize) -> f64 {
        self.coords[d]
    }

    /// All coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64; D] {
        &self.coords
    }

    /// Returns `true` if every coordinate is finite (not NaN/±∞).
    ///
    /// The SGB operators require finite inputs; non-finite coordinates break
    /// the bounding-rectangle invariants of Section 6.3.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for (d, v) in out.iter_mut().enumerate() {
            *v = self.coords[d].min(other.coords[d]);
        }
        Self::new(out)
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for (d, v) in out.iter_mut().enumerate() {
            *v = self.coords[d].max(other.coords[d]);
        }
        Self::new(out)
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Kept separate from [`crate::Metric::distance`] so hot paths can avoid
    /// the square root: comparisons against a threshold `ε` use
    /// `dist_sq ≤ ε²`.
    #[inline]
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            let diff = self.coords[d] - other.coords[d];
            acc += diff * diff;
        }
        acc
    }

    /// Euclidean (`L2`) distance to `other`.
    #[inline]
    pub fn dist_l2(&self, other: &Self) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Manhattan (`L1`) distance to `other` — the norm behind
    /// [`crate::Metric::L1`]. The Minkowski-norm ordering is
    /// `δ∞ ≤ δ2 ≤ δ1 ≤ D·δ∞`.
    #[inline]
    pub fn dist_l1(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            acc += (self.coords[d] - other.coords[d]).abs();
        }
        acc
    }

    /// Maximum (`L∞` / Chebyshev) distance to `other`.
    #[inline]
    pub fn dist_linf(&self, other: &Self) -> f64 {
        let mut acc: f64 = 0.0;
        for d in 0..D {
            acc = acc.max((self.coords[d] - other.coords[d]).abs());
        }
        acc
    }
}

impl Point<2> {
    /// X coordinate of a 2-D point.
    #[inline]
    pub fn x(&self) -> f64 {
        self.coords[0]
    }

    /// Y coordinate of a 2-D point.
    #[inline]
    pub fn y(&self) -> f64 {
        self.coords[1]
    }

    /// Twice the signed area of triangle `(a, b, c)`.
    ///
    /// Positive when `c` lies to the left of the directed line `a → b`;
    /// the workhorse of the convex-hull routines.
    #[inline]
    pub fn cross(a: &Self, b: &Self, c: &Self) -> f64 {
        (b.x() - a.x()) * (c.y() - a.y()) - (b.y() - a.y()) * (c.x() - a.x())
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;

    #[inline]
    fn index(&self, d: usize) -> &f64 {
        &self.coords[d]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, d: usize) -> &mut f64 {
        &mut self.coords[d]
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    #[inline]
    fn from(coords: [f64; D]) -> Self {
        Self::new(coords)
    }
}

impl From<(f64, f64)> for Point<2> {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Self::new([x, y])
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_dims() {
        let p = Point::new([1.0, 2.0, 3.0]);
        assert_eq!(p.dims(), 3);
        assert_eq!(p.coord(0), 1.0);
        assert_eq!(p.coord(2), 3.0);
        assert_eq!(p[1], 2.0);
    }

    #[test]
    fn origin_is_all_zero() {
        let p = Point::<4>::origin();
        assert!(p.coords().iter().all(|&c| c == 0.0));
    }

    #[test]
    fn l2_distance_matches_hand_computation() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(a.dist_l2(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn linf_distance_takes_max_coordinate_gap() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, -4.0]);
        assert_eq!(a.dist_linf(&b), 4.0);
    }

    #[test]
    fn distances_are_symmetric() {
        let a = Point::new([1.5, -2.0, 7.0]);
        let b = Point::new([-3.0, 0.25, 2.0]);
        assert_eq!(a.dist_l2(&b), b.dist_l2(&a));
        assert_eq!(a.dist_linf(&b), b.dist_linf(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new([9.0, -1.0]);
        assert_eq!(a.dist_l2(&a), 0.0);
        assert_eq!(a.dist_linf(&a), 0.0);
    }

    #[test]
    fn linf_never_exceeds_l2() {
        let a = Point::new([0.3, 1.7, -9.2]);
        let b = Point::new([4.4, -3.3, 2.2]);
        assert!(a.dist_linf(&b) <= a.dist_l2(&b));
    }

    #[test]
    fn componentwise_min_max() {
        let a = Point::new([1.0, 5.0]);
        let b = Point::new([3.0, 2.0]);
        assert_eq!(a.min(&b), Point::new([1.0, 2.0]));
        assert_eq!(a.max(&b), Point::new([3.0, 5.0]));
    }

    #[test]
    fn cross_product_orientation() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([1.0, 0.0]);
        let left = Point::new([0.5, 1.0]);
        let right = Point::new([0.5, -1.0]);
        let on = Point::new([2.0, 0.0]);
        assert!(Point::cross(&a, &b, &left) > 0.0);
        assert!(Point::cross(&a, &b, &right) < 0.0);
        assert_eq!(Point::cross(&a, &b, &on), 0.0);
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new([1.0, 2.0]).is_finite());
        assert!(!Point::new([f64::NAN, 0.0]).is_finite());
        assert!(!Point::new([0.0, f64::INFINITY]).is_finite());
    }

    #[test]
    fn conversions() {
        let p: Point<2> = (1.0, 2.0).into();
        assert_eq!(p, Point::new([1.0, 2.0]));
        let q: Point<3> = [1.0, 2.0, 3.0].into();
        assert_eq!(q.coord(2), 3.0);
        assert_eq!(format!("{q}"), "p(1, 2, 3)");
    }
}
