#![warn(missing_docs)]

//! Geometry primitives underlying the similarity group-by (SGB) operators.
//!
//! The paper ("Similarity Group-by Operators for Multi-dimensional Relational
//! Data", Tang et al.) works over a metric space `〈D, δ〉` (Definition 1)
//! where `δ` is a Minkowski distance — Manhattan (`L1`, the grammar's
//! `LONE`), Euclidean (`L2`) or maximum (`L∞`) — and views each tuple's
//! grouping attributes as a point in a low dimensional space (two or three
//! dimensions).
//!
//! This crate provides those building blocks:
//!
//! * [`Point`] — a `D`-dimensional point (const-generic over the dimension),
//! * [`Metric`] — the `L1` / `L2` / `L∞` distance functions, the similarity
//!   predicate `ξ(δ, ε)` of Definition 2, and the per-metric policy
//!   ([`metric::RectFilter`]) describing how the rectangle filter relates
//!   to each metric's ε-ball,
//! * [`Rect`] — axis-aligned rectangles used both as group MBRs and as the
//!   ε-All *allowed regions* of Definition 5, with metric-aware
//!   [`Rect::min_distance`] / [`Rect::max_distance`] bounds,
//! * [`EpsAllRegion`] — the incrementally maintained ε-All bounding
//!   rectangle of a group (Section 6.3),
//! * [`hull`] — 2-D convex hulls used by the false-positive refinement step
//!   for the conservative metrics `L1`/`L2` (Section 6.4).

pub mod hull;
pub mod metric;
pub mod point;
pub mod rect;

pub use hull::ConvexHull;
pub use metric::{Metric, RectFilter};
pub use point::Point;
pub use rect::{EpsAllRegion, Rect};

/// A 2-dimensional point, the common case throughout the paper.
pub type Point2 = Point<2>;
/// A 3-dimensional point ("we mainly focus on two and three dimensional
/// data space", Section 1).
pub type Point3 = Point<3>;
/// A 2-dimensional rectangle.
pub type Rect2 = Rect<2>;
/// A 3-dimensional box.
pub type Rect3 = Rect<3>;
