//! Axis-aligned rectangles: group MBRs and ε-All allowed regions.

use crate::{Metric, Point};

/// An axis-aligned `D`-dimensional rectangle `[lo, hi]` (inclusive bounds).
///
/// Rectangles appear in three roles in the paper:
///
/// * the *minimum bounding rectangle* (MBR) of a group's points,
/// * the side-`2ε` window centred on a new point that drives window queries
///   on the on-the-fly index (Procedures 5 and 8),
/// * the ε-All *allowed region* of Definition 5 (see [`EpsAllRegion`]).
///
/// A rectangle may be *empty* (some `lo[d] > hi[d]`): ε-All regions shrink
/// as members join a group and can vanish entirely.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect<const D: usize> {
    lo: Point<D>,
    hi: Point<D>,
}

impl<const D: usize> Rect<D> {
    /// Creates a rectangle from its corner points. `lo` need not be below
    /// `hi`; such a rectangle is simply [`empty`](Self::is_empty).
    #[inline]
    pub const fn new(lo: Point<D>, hi: Point<D>) -> Self {
        Self { lo, hi }
    }

    /// The degenerate rectangle containing exactly `p`.
    #[inline]
    pub fn point(p: Point<D>) -> Self {
        Self { lo: p, hi: p }
    }

    /// The side-`2ε` rectangle centred at `p` — the ε-rectangle used for
    /// window queries (`CreateBoundingRectangle(pi, ε)` in Procedures 5/8).
    ///
    /// Under `L∞` it is exactly the ε-ball around `p`; under `L1`/`L2` it
    /// is the tightest axis-aligned superset of the ε-ball (diamond/disc),
    /// making it a conservative filter (Section 6.4).
    #[inline]
    pub fn centered(p: Point<D>, eps: f64) -> Self {
        let mut lo = p;
        let mut hi = p;
        for d in 0..D {
            lo[d] -= eps;
            hi[d] += eps;
        }
        Self { lo, hi }
    }

    /// A rectangle that is empty in every dimension; the identity for
    /// [`expand`](Self::expand).
    #[inline]
    pub fn empty() -> Self {
        Self {
            lo: Point::new([f64::INFINITY; D]),
            hi: Point::new([f64::NEG_INFINITY; D]),
        }
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &Point<D> {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &Point<D> {
        &self.hi
    }

    /// `true` when the rectangle contains no point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..D).any(|d| self.lo[d] > self.hi[d])
    }

    /// Side length along dimension `d` (zero when empty along it).
    #[inline]
    pub fn side(&self, d: usize) -> f64 {
        (self.hi[d] - self.lo[d]).max(0.0)
    }

    /// `D`-dimensional volume (area when `D = 2`). Empty rectangles have
    /// zero volume.
    #[inline]
    pub fn volume(&self) -> f64 {
        let mut v = 1.0;
        for d in 0..D {
            v *= self.side(d);
        }
        v
    }

    /// Half-perimeter style margin: the sum of side lengths. Used by the
    /// R-tree split heuristics.
    #[inline]
    pub fn margin(&self) -> f64 {
        (0..D).map(|d| self.side(d)).sum()
    }

    /// Geometric centre (meaningless for empty rectangles).
    #[inline]
    pub fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for (d, v) in c.iter_mut().enumerate() {
            *v = 0.5 * (self.lo[d] + self.hi[d]);
        }
        Point::new(c)
    }

    /// `true` when `p` lies inside the rectangle (boundary inclusive) —
    /// `PointInRectangleTest` of Procedure 4. Branch-free accumulation:
    /// this test runs once per existing group per input point in the
    /// Bounds-Checking scan, on unpredictable data.
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        let mut inside = true;
        for d in 0..D {
            inside &= (self.lo[d] <= p[d]) & (p[d] <= self.hi[d]);
        }
        inside
    }

    /// `true` when `other` lies fully inside `self` (boundary inclusive).
    #[inline]
    pub fn contains_rect(&self, other: &Rect<D>) -> bool {
        if other.is_empty() {
            return true;
        }
        (0..D).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// `true` when the two rectangles share at least one point
    /// (`OverlapRectangleTest` of Procedure 4). Empty rectangles intersect
    /// nothing.
    #[inline]
    pub fn intersects(&self, other: &Rect<D>) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        (0..D).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// The intersection of two rectangles (possibly empty). Rectangles are
    /// closed under intersection — the property the paper relies on for the
    /// correctness of the ε-All rectangle under `L∞` (Section 6.3).
    #[inline]
    pub fn intersection(&self, other: &Rect<D>) -> Rect<D> {
        Rect::new(self.lo.max(&other.lo), self.hi.min(&other.hi))
    }

    /// The smallest rectangle covering both inputs.
    #[inline]
    pub fn union(&self, other: &Rect<D>) -> Rect<D> {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect::new(self.lo.min(&other.lo), self.hi.max(&other.hi))
    }

    /// Grows the rectangle in place to cover `p`.
    #[inline]
    pub fn expand(&mut self, p: &Point<D>) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// How much [`volume`](Self::volume) would grow if `other` were unioned
    /// in. The R-tree `ChooseLeaf` criterion (least enlargement).
    #[inline]
    pub fn enlargement(&self, other: &Rect<D>) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Minimum distance from `p` to any point of the rectangle under
    /// `metric` (zero when `p` is inside). Used by kNN search and the
    /// metric-aware R-tree range query.
    ///
    /// Per-dimension gaps are single roundings of the exact clamp
    /// distances, so for any `q` inside the rectangle the computed value
    /// never exceeds the floating-point distance `δ(p, q)` — the property
    /// the R-tree pruning relies on to stay a superset of the similarity
    /// predicate.
    pub fn min_distance(&self, p: &Point<D>, metric: Metric) -> f64 {
        Self::combine_gaps(&self.min_gaps(p), metric)
    }

    /// Like [`min_distance`](Self::min_distance) but in the comparison-only
    /// rank space of [`Metric::rank_distance`] (squared for `L2`, so range
    /// pruning pays no square root per node). Compare it only against other
    /// rank values under the same metric.
    pub fn min_rank_distance(&self, p: &Point<D>, metric: Metric) -> f64 {
        Self::combine_gaps_rank(&self.min_gaps(p), metric)
    }

    /// Maximum distance from `p` to any point of the rectangle under
    /// `metric` — attained at the corner farthest from `p` per dimension.
    /// When `max_distance(p) ≤ ε`, *every* point of the rectangle is within
    /// ε of `p` (the all-inside fast path of the R-tree range query).
    /// Meaningless for empty rectangles.
    pub fn max_distance(&self, p: &Point<D>, metric: Metric) -> f64 {
        Self::combine_gaps(&self.max_gaps(p), metric)
    }

    /// Like [`max_distance`](Self::max_distance) but in the rank space of
    /// [`Metric::rank_distance`].
    pub fn max_rank_distance(&self, p: &Point<D>, metric: Metric) -> f64 {
        Self::combine_gaps_rank(&self.max_gaps(p), metric)
    }

    /// Per-dimension clamp distances from `p` to the rectangle.
    #[inline]
    fn min_gaps(&self, p: &Point<D>) -> [f64; D] {
        let mut gaps = [0.0; D];
        for d in 0..D {
            gaps[d] = if p[d] < self.lo[d] {
                self.lo[d] - p[d]
            } else if p[d] > self.hi[d] {
                p[d] - self.hi[d]
            } else {
                0.0
            };
        }
        gaps
    }

    /// Per-dimension distances from `p` to the farther rectangle face.
    #[inline]
    fn max_gaps(&self, p: &Point<D>) -> [f64; D] {
        let mut gaps = [0.0; D];
        for d in 0..D {
            gaps[d] = (p[d] - self.lo[d]).abs().max((self.hi[d] - p[d]).abs());
        }
        gaps
    }

    /// Folds per-dimension coordinate gaps into a distance under `metric`.
    #[inline]
    fn combine_gaps(gaps: &[f64; D], metric: Metric) -> f64 {
        match metric {
            Metric::L1 => gaps.iter().sum(),
            Metric::L2 => gaps.iter().map(|g| g * g).sum::<f64>().sqrt(),
            Metric::LInf => gaps.iter().cloned().fold(0.0, f64::max),
        }
    }

    /// Folds gaps into the rank space of [`Metric::rank_distance`]: same
    /// ordering as [`combine_gaps`](Self::combine_gaps), no square root.
    #[inline]
    fn combine_gaps_rank(gaps: &[f64; D], metric: Metric) -> f64 {
        match metric {
            Metric::L1 => gaps.iter().sum(),
            Metric::L2 => gaps.iter().map(|g| g * g).sum::<f64>(),
            Metric::LInf => gaps.iter().cloned().fold(0.0, f64::max),
        }
    }
}

/// The ε-All bounding rectangle `R(ε−All)` of Definition 5, maintained
/// incrementally as points join a group (Figures 5c–5e).
///
/// For a group whose members span `[lo_d, hi_d]` along dimension `d`, the
/// region of space within `L∞` distance ε of *every* member is exactly the
/// rectangle `A_d = [hi_d − ε, lo_d + ε]`: the intersection of the members'
/// ε-squares, which is closed under intersection.
///
/// * Under `L∞`, membership of the region is an **exact** test: a point
///   inside `A` is within ε of all members (Section 6.3).
/// * Under `L1`/`L2`, `A` is a **conservative filter** (the ε-ball — a
///   diamond for `L1`, a disc for `L2` — is a proper subset of the
///   ε-square): a point outside `A` cannot be within ε of all members, a
///   point inside might be a false positive, refined by the convex-hull
///   test or a member scan (Section 6.4). [`Metric::rect_filter`] names
///   this per-metric policy.
///
/// The structure also tracks the member MBR, used for
/// `OverlapRectangleTest` and for indexing groups in the on-the-fly R-tree.
#[derive(Clone, Debug, PartialEq)]
pub struct EpsAllRegion<const D: usize> {
    eps: f64,
    /// MBR of the member points inserted so far.
    mbr: Rect<D>,
    /// Cached allowed region: the running intersection of the members'
    /// ε-squares (rectangles are closed under intersection, Section 6.3).
    allowed: Rect<D>,
    /// Cached reach region: the smallest rectangle covering every
    /// member's ε-square, i.e. the MBR dilated by ε. A point outside it
    /// cannot be within ε of any member (`OverlapRectangleTest`); inside,
    /// a member scan decides.
    reach: Rect<D>,
    members: usize,
}

impl<const D: usize> EpsAllRegion<D> {
    /// An empty region for a group with no members yet.
    pub fn new(eps: f64) -> Self {
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "epsilon must be finite and non-negative"
        );
        Self {
            eps,
            mbr: Rect::empty(),
            allowed: Rect::empty(),
            reach: Rect::empty(),
            members: 0,
        }
    }

    /// A region for a group seeded with a single point (Figure 5c: the
    /// allowed region starts as the `2ε × 2ε` square centred on it).
    pub fn with_first(eps: f64, p: Point<D>) -> Self {
        let mut r = Self::new(eps);
        r.insert(&p);
        r
    }

    /// Similarity threshold.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of inserted member points.
    #[inline]
    pub fn members(&self) -> usize {
        self.members
    }

    /// MBR of the member points.
    #[inline]
    pub fn mbr(&self) -> Rect<D> {
        self.mbr
    }

    /// The current allowed region `A` (Definition 5). Empty iff the group
    /// has no members whose ε-squares still intersect — which cannot happen
    /// while the group is a valid `L∞` clique, but can transiently under
    /// `L2` filtering.
    ///
    /// Maintained incrementally: equals `[hi_d − ε, lo_d + ε]` for the
    /// member extremes `lo`/`hi` along each dimension.
    #[inline]
    pub fn allowed(&self) -> Rect<D> {
        self.allowed
    }

    /// The reach region: the smallest rectangle covering the members'
    /// ε-squares (the MBR dilated by ε). Contains every point possibly
    /// within ε of *some* member; being a bounding box, it may also
    /// contain corner points near ε of none.
    #[inline]
    pub fn reach(&self) -> Rect<D> {
        self.reach
    }

    /// Records a new member, growing the MBR (and therefore shrinking the
    /// allowed region — Figures 5d/5e). Constant time per insertion.
    #[inline]
    pub fn insert(&mut self, p: &Point<D>) {
        self.mbr.expand(p);
        let eps_box = Rect::centered(*p, self.eps);
        self.allowed = if self.members == 0 {
            eps_box
        } else {
            self.allowed.intersection(&eps_box)
        };
        self.reach = self.reach.union(&eps_box);
        self.members += 1;
    }

    /// Rebuilds the region from a fresh member set; used after ELIMINATE /
    /// FORM-NEW-GROUP remove points from a group (Section 6.2.2).
    pub fn rebuild<'a>(&mut self, points: impl IntoIterator<Item = &'a Point<D>>) {
        self.mbr = Rect::empty();
        self.allowed = Rect::empty();
        self.reach = Rect::empty();
        self.members = 0;
        for p in points {
            self.insert(p);
        }
    }

    /// `PointInRectangleTest` (Procedure 4, line 4): `true` when `p` lies in
    /// the allowed region. Exact under `L∞`; under `L1`/`L2` a `true` still
    /// needs the convex-hull (or member-scan) refinement.
    #[inline]
    pub fn point_in_region(&self, p: &Point<D>) -> bool {
        self.members > 0 && self.allowed.contains_point(p)
    }

    /// `OverlapRectangleTest` (Procedure 4, line 6): `true` when the
    /// ε-rectangle of `p` intersects the member MBR — equivalently, `p`
    /// lies in the cached reach region — i.e. some member *may* be within
    /// ε of `p`.
    #[inline]
    pub fn may_overlap(&self, p: &Point<D>) -> bool {
        self.members > 0 && self.reach.contains_point(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::new(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn centered_rect_has_side_two_eps() {
        let w = Rect::centered(Point::new([1.0, 2.0]), 3.0);
        assert_eq!(w, r([-2.0, -1.0], [4.0, 5.0]));
        assert_eq!(w.side(0), 6.0);
        assert_eq!(w.volume(), 36.0);
        assert_eq!(w.margin(), 12.0);
        assert_eq!(w.center(), Point::new([1.0, 2.0]));
    }

    #[test]
    fn empty_rect_behaviour() {
        let e = Rect::<2>::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        assert!(!e.contains_point(&Point::origin()));
        assert!(!e.intersects(&r([0.0, 0.0], [1.0, 1.0])));
        // Union with empty is identity.
        let a = r([0.0, 0.0], [1.0, 1.0]);
        assert_eq!(e.union(&a), a);
        assert_eq!(a.union(&e), a);
        // Everything contains the empty rectangle.
        assert!(a.contains_rect(&e));
    }

    #[test]
    fn containment_is_boundary_inclusive() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        assert!(a.contains_point(&Point::new([0.0, 2.0])));
        assert!(a.contains_point(&Point::new([1.0, 1.0])));
        assert!(!a.contains_point(&Point::new([2.0000001, 1.0])));
        assert!(a.contains_rect(&r([0.0, 0.0], [2.0, 2.0])));
        assert!(!a.contains_rect(&r([0.0, 0.0], [2.1, 2.0])));
    }

    #[test]
    fn intersection_of_overlapping_rects() {
        let a = r([0.0, 0.0], [4.0, 4.0]);
        let b = r([2.0, -1.0], [6.0, 3.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), r([2.0, 0.0], [4.0, 3.0]));
        // Rectangles are closed under intersection (the SGB-All invariant).
        assert!(!a.intersection(&b).is_empty());
    }

    #[test]
    fn disjoint_rects_do_not_intersect() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([2.0, 2.0], [3.0, 3.0]);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_empty());
        // Touching at a corner counts as intersecting (closed rectangles).
        let c = r([1.0, 1.0], [2.0, 2.0]);
        assert!(a.intersects(&c));
    }

    #[test]
    fn union_and_enlargement() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([2.0, 0.0], [3.0, 1.0]);
        let u = a.union(&b);
        assert_eq!(u, r([0.0, 0.0], [3.0, 1.0]));
        assert_eq!(a.enlargement(&b), 3.0 - 1.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn expand_grows_to_cover_point() {
        let mut a = Rect::point(Point::new([1.0, 1.0]));
        a.expand(&Point::new([-1.0, 3.0]));
        assert_eq!(a, r([-1.0, 1.0], [1.0, 3.0]));
    }

    #[test]
    fn min_distance_inside_is_zero() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(a.min_distance(&Point::new([1.0, 1.0]), Metric::L2), 0.0);
        assert_eq!(a.min_distance(&Point::new([5.0, 2.0]), Metric::L2), 3.0);
        assert_eq!(
            a.min_distance(&Point::new([5.0, 6.0]), Metric::L2),
            (9.0f64 + 16.0).sqrt()
        );
        assert_eq!(a.min_distance(&Point::new([5.0, 6.0]), Metric::LInf), 4.0);
        assert_eq!(a.min_distance(&Point::new([5.0, 6.0]), Metric::L1), 7.0);
        assert_eq!(a.min_distance(&Point::new([1.0, 1.0]), Metric::L1), 0.0);
    }

    #[test]
    fn min_and_max_distance_bracket_every_rect_point() {
        let a = r([-1.0, 0.5], [2.0, 3.0]);
        let probes = [
            Point::new([0.0, 1.0]), // inside
            Point::new([4.0, 4.0]), // outside both dims
            Point::new([0.5, -2.0]),
            Point::new([-3.0, 1.5]),
        ];
        for metric in Metric::ALL {
            for q in &probes {
                let lo = a.min_distance(q, metric);
                let hi = a.max_distance(q, metric);
                assert!(lo <= hi, "{metric}");
                // Sample rectangle points and check the bracket.
                for ti in 0..=4 {
                    for tj in 0..=4 {
                        let p =
                            Point::new([-1.0 + 3.0 * ti as f64 / 4.0, 0.5 + 2.5 * tj as f64 / 4.0]);
                        let d = metric.distance(&p, q);
                        assert!(d >= lo - 1e-12, "{metric} {q:?} {p:?}");
                        assert!(d <= hi + 1e-12, "{metric} {q:?} {p:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn max_distance_is_attained_at_a_corner() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let q = Point::new([-1.0, 0.5]);
        // Farthest corner from q is (2, 2).
        assert_eq!(a.max_distance(&q, Metric::L1), 3.0 + 1.5);
        assert_eq!(a.max_distance(&q, Metric::LInf), 3.0);
        assert_eq!(a.max_distance(&q, Metric::L2), (9.0f64 + 2.25).sqrt());
    }

    #[test]
    fn eps_all_region_single_point_fig5c() {
        // Figure 5c: group {a1}, ε = 2 → allowed region is the 2ε-square
        // (sides 2ε... the paper draws side 2·ε centred at a1: "2 by 2" with
        // ε=2 refers to half-side ε) centred at a1.
        let reg = EpsAllRegion::with_first(2.0, Point::new([3.0, 3.0]));
        assert_eq!(reg.allowed(), r([1.0, 1.0], [5.0, 5.0]));
        assert_eq!(reg.members(), 1);
        assert!(reg.point_in_region(&Point::new([4.9, 4.9])));
        assert!(!reg.point_in_region(&Point::new([5.1, 3.0])));
    }

    #[test]
    fn eps_all_region_shrinks_as_members_join() {
        // Figures 5d–5e: inserting members shrinks the allowed region.
        let mut reg = EpsAllRegion::with_first(2.0, Point::new([3.0, 3.0]));
        let before = reg.allowed();
        reg.insert(&Point::new([4.0, 4.0]));
        let after = reg.allowed();
        assert!(before.contains_rect(&after));
        assert_eq!(after, r([2.0, 2.0], [5.0, 5.0]));
        // Region floor: with members at the span extremes the region has
        // side 2ε − span.
        reg.insert(&Point::new([5.0, 3.0]));
        assert_eq!(reg.allowed(), r([3.0, 2.0], [5.0, 5.0]));
    }

    #[test]
    fn eps_all_region_exact_for_linf() {
        // Any point inside the allowed region is within L∞ ε of all members.
        let members = [
            Point::new([0.0, 0.0]),
            Point::new([1.5, 0.5]),
            Point::new([0.5, 1.5]),
        ];
        let eps = 2.0;
        let mut reg = EpsAllRegion::new(eps);
        for m in &members {
            reg.insert(m);
        }
        let a = reg.allowed();
        // Probe a grid of points; inside ⇔ within ε of every member.
        for xi in -10..=30 {
            for yi in -10..=30 {
                let p = Point::new([xi as f64 * 0.2, yi as f64 * 0.2]);
                let inside = a.contains_point(&p);
                let all_close = members.iter().all(|m| Metric::LInf.within(m, &p, eps));
                assert_eq!(inside, all_close, "mismatch at {p:?}");
            }
        }
    }

    #[test]
    fn eps_all_region_conservative_for_l2() {
        // Outside the region ⇒ not within L2 ε of all members. (The converse
        // may fail: that is the false-positive zone of Figure 7b.)
        let members = [Point::new([0.0, 0.0]), Point::new([1.0, 1.0])];
        let eps = 1.5;
        let mut reg = EpsAllRegion::new(eps);
        for m in &members {
            reg.insert(m);
        }
        let a = reg.allowed();
        for xi in -20..=30 {
            for yi in -20..=30 {
                let p = Point::new([xi as f64 * 0.17, yi as f64 * 0.17]);
                let all_close = members.iter().all(|m| Metric::L2.within(m, &p, eps));
                if all_close {
                    assert!(a.contains_point(&p), "region must cover {p:?}");
                }
            }
        }
        // And the false-positive zone exists: the region corner is inside
        // the rectangle but not within ε of both members.
        let corner = Point::new([a.lo()[0], a.hi()[1]]);
        assert!(a.contains_point(&corner));
        assert!(!members.iter().all(|m| Metric::L2.within(m, &corner, eps)));
    }

    #[test]
    fn eps_all_rebuild_after_removal() {
        let mut reg = EpsAllRegion::new(1.0);
        reg.insert(&Point::new([0.0, 0.0]));
        reg.insert(&Point::new([0.9, 0.0]));
        let remaining = [Point::new([0.0, 0.0])];
        reg.rebuild(remaining.iter());
        assert_eq!(reg.members(), 1);
        assert_eq!(reg.allowed(), r([-1.0, -1.0], [1.0, 1.0]));
        reg.rebuild(std::iter::empty());
        assert_eq!(reg.members(), 0);
        assert!(reg.allowed().is_empty());
        assert!(!reg.may_overlap(&Point::new([0.0, 0.0])));
    }

    #[test]
    fn may_overlap_tracks_mbr_dilation() {
        let mut reg = EpsAllRegion::new(1.0);
        reg.insert(&Point::new([0.0, 0.0]));
        reg.insert(&Point::new([2.0, 0.0]));
        assert!(reg.may_overlap(&Point::new([3.0, 0.0]))); // within ε of MBR
        assert!(!reg.may_overlap(&Point::new([3.1, 0.0])));
        assert!(reg.may_overlap(&Point::new([1.0, 0.9])));
    }

    #[test]
    fn reach_region_is_union_of_eps_boxes() {
        let mut reg = EpsAllRegion::new(1.0);
        let members = [Point::new([0.0, 0.0]), Point::new([3.0, 1.0])];
        for m in &members {
            reg.insert(m);
        }
        assert_eq!(reg.reach(), r([-1.0, -1.0], [4.0, 2.0]));
        // Conservativeness: within L∞ ε of some member ⇒ inside reach.
        // (Not ⇔: reach is a bounding box, so offset-box corners like
        // (-1, 1.1) are inside it without being near any member.)
        for xi in -25..=55 {
            for yi in -25..=35 {
                let p = Point::new([xi as f64 * 0.1, yi as f64 * 0.1]);
                let near_any = members.iter().any(|m| Metric::LInf.within(m, &p, 1.0));
                if near_any {
                    assert!(reg.reach().contains_point(&p), "{p:?}");
                }
            }
        }
        assert!(reg.reach().contains_point(&Point::new([-1.0, 1.1])));
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn negative_epsilon_rejected() {
        let _ = EpsAllRegion::<2>::new(-1.0);
    }
}
