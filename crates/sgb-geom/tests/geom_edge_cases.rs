//! Edge-case tests for the geometry layer: zero-epsilon behaviour,
//! degenerate and empty rectangles, and L1/L2/L∞ metric consistency.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgb_geom::{ConvexHull, EpsAllRegion, Metric, Point, Rect};

fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new([
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
                rng.gen_range(-10.0..10.0),
            ])
        })
        .collect()
}

// --- zero-epsilon ---------------------------------------------------------

#[test]
fn zero_epsilon_similarity_is_exact_equality() {
    let a = Point::new([1.0, 2.0]);
    let same = Point::new([1.0, 2.0]);
    let near = Point::new([1.0 + f64::EPSILON * 4.0, 2.0]);
    for metric in [Metric::L2, Metric::LInf] {
        assert!(metric.within(&a, &same, 0.0), "{metric:?}: p ~ p at eps 0");
        assert!(!metric.within(&a, &near, 0.0), "{metric:?}: nothing else");
    }
}

#[test]
fn zero_epsilon_region_degenerates_to_the_point() {
    let p = Point::new([3.0, -1.0]);
    let region = EpsAllRegion::with_first(0.0, p);
    // Allowed region and reach both collapse to the single point.
    assert_eq!(region.allowed(), Rect::point(p));
    assert_eq!(region.reach(), Rect::point(p));
    assert!(region.point_in_region(&p));
    assert!(region.may_overlap(&p));
    let off = Point::new([3.0, -1.0 + 1e-12]);
    assert!(!region.point_in_region(&off));
    assert!(!region.may_overlap(&off));
}

#[test]
fn zero_epsilon_region_with_distinct_members_becomes_empty() {
    let mut region = EpsAllRegion::new(0.0);
    region.insert(&Point::new([0.0, 0.0]));
    region.insert(&Point::new([1.0, 0.0]));
    // No point is at distance 0 from two distinct members.
    assert!(region.allowed().is_empty());
    for probe in [
        Point::new([0.0, 0.0]),
        Point::new([0.5, 0.0]),
        Point::new([1.0, 0.0]),
    ] {
        assert!(!region.point_in_region(&probe));
    }
}

// --- degenerate rectangles ------------------------------------------------

#[test]
fn point_rect_contains_exactly_itself() {
    let p = Point::new([2.0, 5.0]);
    let r = Rect::point(p);
    assert!(!r.is_empty());
    assert_eq!(r.volume(), 0.0);
    assert_eq!(r.margin(), 0.0);
    assert_eq!(r.center(), p);
    assert!(r.contains_point(&p));
    assert!(!r.contains_point(&Point::new([2.0, 5.0 + 1e-12])));
    // A degenerate rectangle still intersects things it touches.
    assert!(r.intersects(&Rect::centered(p, 1.0)));
    assert!(r.intersects(&r));
}

#[test]
fn empty_rect_is_an_annihilator_and_union_identity() {
    let e = Rect::<2>::empty();
    let r = Rect::new(Point::new([0.0, 0.0]), Point::new([2.0, 2.0]));
    assert!(e.is_empty());
    assert_eq!(e.volume(), 0.0);
    assert!(!e.intersects(&r));
    assert!(!r.intersects(&e));
    assert!(!e.contains_point(&Point::origin()));
    // Union treats empty as identity; intersection with empty stays empty.
    assert_eq!(e.union(&r), r);
    assert_eq!(r.union(&e), r);
    assert!(e.intersection(&r).is_empty());
    // Every rectangle trivially contains the empty one.
    assert!(r.contains_rect(&e));
}

#[test]
fn inverted_bounds_count_as_empty() {
    let r = Rect::new(Point::new([1.0, 0.0]), Point::new([0.0, 1.0]));
    assert!(r.is_empty());
    assert_eq!(r.volume(), 0.0);
    assert_eq!(r.side(0), 0.0);
    assert_eq!(r.side(1), 1.0);
    assert!(!r.contains_point(&Point::new([0.5, 0.5])));
}

#[test]
fn zero_epsilon_window_is_the_degenerate_point_rect() {
    let p = Point::new([4.0, 4.0]);
    assert_eq!(Rect::centered(p, 0.0), Rect::point(p));
}

#[test]
fn expanding_an_empty_rect_yields_the_point_rect() {
    let mut r = Rect::<3>::empty();
    let p = Point::new([1.0, 2.0, 3.0]);
    r.expand(&p);
    assert_eq!(r, Rect::point(p));
    let q = Point::new([0.0, 5.0, 3.0]);
    r.expand(&q);
    assert!(r.contains_point(&p) && r.contains_point(&q));
    assert_eq!(r.volume(), 0.0, "flat along z");
}

#[test]
fn min_distance_is_zero_inside_for_all_metrics() {
    let r = Rect::new(Point::new([0.0, 0.0]), Point::new([2.0, 2.0]));
    let inside = Point::new([1.0, 1.5]);
    let outside = Point::new([5.0, 6.0]);
    for metric in [Metric::L2, Metric::LInf] {
        assert_eq!(r.min_distance(&inside, metric), 0.0);
        assert!(r.min_distance(&outside, metric) > 0.0);
    }
    // Hand check: gaps are (3, 4) -> L2 = 5, LInf = 4.
    assert_eq!(r.min_distance(&outside, Metric::L2), 5.0);
    assert_eq!(r.min_distance(&outside, Metric::LInf), 4.0);
}

#[test]
fn degenerate_hulls_behave() {
    // Single point.
    let p = Point::new([1.0, 1.0]);
    let hull = ConvexHull::build(&[p]);
    assert_eq!(hull.len(), 1);
    assert!(hull.contains(&p));
    assert_eq!(hull.diameter(Metric::L2), 0.0);
    assert!(hull.admits(&p, 0.0, Metric::L2));
    // Collinear points: hull still contains every input and the segment's
    // diameter is the extreme pairwise distance.
    let line: Vec<Point<2>> = (0..5).map(|i| Point::new([i as f64, 2.0])).collect();
    let hull = ConvexHull::build(&line);
    for p in &line {
        assert!(hull.contains(p));
    }
    assert_eq!(hull.diameter(Metric::L2), 4.0);
    // Duplicated points collapse.
    let dup = ConvexHull::build(&[p, p, p]);
    assert_eq!(dup.diameter(Metric::LInf), 0.0);
    assert!(dup.contains(&p));
}

// --- L1 / L2 / L∞ consistency --------------------------------------------

#[test]
fn minkowski_norm_ordering_holds() {
    // For any pair: δ∞ ≤ δ2 ≤ δ1 ≤ √D·δ2 ≤ D·δ∞ (D = 3 here).
    let pts = random_points(64, 0x5EED);
    for a in &pts {
        for b in &pts {
            let (l1, l2, linf) = (a.dist_l1(b), a.dist_l2(b), a.dist_linf(b));
            let tol = 1e-12 * (1.0 + l1);
            assert!(linf <= l2 + tol, "linf {linf} > l2 {l2}");
            assert!(l2 <= l1 + tol, "l2 {l2} > l1 {l1}");
            assert!(l1 <= 3.0f64.sqrt() * l2 + tol, "l1 {l1} > sqrt(3)*l2");
            assert!(l2 <= 3.0f64.sqrt() * linf + tol, "l2 {l2} > sqrt(3)*linf");
        }
    }
}

#[test]
fn all_three_distances_are_metrics() {
    let pts = random_points(24, 42);
    let dists: [fn(&Point<3>, &Point<3>) -> f64; 3] =
        [Point::dist_l1, Point::dist_l2, Point::dist_linf];
    for dist in dists {
        for a in &pts {
            assert_eq!(dist(a, a), 0.0, "identity");
            for b in &pts {
                assert_eq!(dist(a, b), dist(b, a), "symmetry");
                assert!(dist(a, b) >= 0.0, "non-negativity");
                for c in &pts {
                    let lhs = dist(a, c);
                    let rhs = dist(a, b) + dist(b, c);
                    assert!(lhs <= rhs + 1e-9, "triangle: {lhs} > {rhs}");
                }
            }
        }
    }
}

#[test]
fn within_agrees_with_distance_at_random_thresholds() {
    let pts = random_points(32, 7);
    let mut rng = SmallRng::seed_from_u64(11);
    for metric in [Metric::L2, Metric::LInf] {
        for a in &pts {
            for b in &pts {
                let d = metric.distance(a, b);
                let eps = rng.gen_range(0.0..30.0);
                // The similarity predicate must be the inclusive threshold
                // test on the same distance, for every metric.
                assert_eq!(
                    metric.within(a, b, eps),
                    d <= eps,
                    "{metric:?} disagrees at d {d}, eps {eps}"
                );
            }
        }
    }
}

#[test]
fn unit_balls_nest_across_metrics() {
    // The L2 unit ball sits inside the L∞ unit ball; scaled squares bound
    // the disc from inside (side √2, via the L1 ball) and outside (side 2).
    let c = Point::new([0.0, 0.0, 0.0]);
    let pts = random_points(256, 0xBA11);
    for p in &pts {
        if Metric::L2.within(&c, p, 1.0) {
            assert!(
                Metric::LInf.within(&c, p, 1.0),
                "L2 ball must be inside L-inf ball: {p:?}"
            );
        }
        if p.dist_l1(&c) <= 1.0 {
            assert!(
                Metric::L2.within(&c, p, 1.0),
                "L1 ball must be inside L2 ball: {p:?}"
            );
        }
    }
}
