//! Property tests of the metric layer: axioms, the Minkowski-norm
//! sandwich, rectangle distance bounds, and the convex-hull refinement
//! under every metric.

use proptest::collection::vec;
use proptest::prelude::*;

use sgb_geom::{ConvexHull, Metric, Point, Rect, RectFilter};

fn arb_point3() -> impl Strategy<Value = Point<3>> {
    (-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y, z)| Point::new([x, y, z]))
}

fn arb_point2() -> impl Strategy<Value = Point<2>> {
    (0.0f64..4.0, 0.0f64..4.0).prop_map(|(x, y)| Point::new([x, y]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Non-negativity, identity of indiscernibles (for distinct inputs a
    /// positive distance), symmetry, triangle inequality — in 3-D.
    #[test]
    fn metric_axioms_3d(a in arb_point3(), b in arb_point3(), c in arb_point3()) {
        for metric in Metric::ALL {
            let dab = metric.distance(&a, &b);
            prop_assert!(dab >= 0.0);
            prop_assert_eq!(metric.distance(&a, &a), 0.0);
            if a != b {
                prop_assert!(dab > 0.0, "{}: distinct points at distance 0", metric);
            }
            prop_assert_eq!(dab, metric.distance(&b, &a));
            prop_assert!(
                dab <= metric.distance(&a, &c) + metric.distance(&c, &b) + 1e-8,
                "{}: triangle inequality violated", metric
            );
        }
    }

    /// `δ∞ ≤ δ2 ≤ δ1 ≤ D·δ∞` with `D = 3`.
    #[test]
    fn norm_sandwich_3d(a in arb_point3(), b in arb_point3()) {
        let l1 = a.dist_l1(&b);
        let l2 = a.dist_l2(&b);
        let linf = a.dist_linf(&b);
        prop_assert!(linf <= l2 + 1e-9);
        prop_assert!(l2 <= l1 + 1e-9);
        prop_assert!(l1 <= 3.0 * linf + 1e-6);
    }

    /// `within` agrees with `distance` at and around the threshold, and
    /// `rank_distance` induces the same order as `distance`.
    #[test]
    fn predicate_and_rank_consistency(
        a in arb_point3(),
        b in arb_point3(),
        c in arb_point3(),
        eps in 0.0f64..200.0,
    ) {
        for metric in Metric::ALL {
            // Away from the few-ulp boundary band (where the L2 predicate's
            // squared comparison may legitimately round differently) the
            // predicate must agree with the distance.
            let d = metric.distance(&a, &b);
            if d <= eps * (1.0 - 1e-12) {
                prop_assert!(metric.within(&a, &b, eps), "{}", metric);
            }
            if d > eps * (1.0 + 1e-12) {
                prop_assert!(!metric.within(&a, &b, eps), "{}", metric);
            }
            let d_order = metric.distance(&a, &b) < metric.distance(&a, &c);
            let r_order = metric.rank_distance(&a, &b) < metric.rank_distance(&a, &c);
            prop_assert_eq!(d_order, r_order, "{}", metric);
        }
    }

    /// The conservative-filter policy is truthful: the ε-ball of a metric
    /// is contained in the ε-square, with equality exactly for L∞.
    #[test]
    fn rect_filter_policy_is_truthful(p in arb_point3(), q in arb_point3(), eps in 0.1f64..50.0) {
        let square = Rect::centered(p, eps);
        for metric in Metric::ALL {
            if metric.within(&p, &q, eps) {
                prop_assert!(square.contains_point(&q), "{}: ball must fit the square", metric);
            }
            if metric.rect_filter() == RectFilter::Exact && square.contains_point(&q) {
                prop_assert!(metric.within(&p, &q, eps), "L∞ square is the ball");
            }
        }
    }

    /// `min_distance`/`max_distance` bracket the distance to every point of
    /// the rectangle, under every metric.
    #[test]
    fn rect_distance_bounds(
        q in arb_point3(),
        lo in arb_point3(),
        side in (0.0f64..20.0, 0.0f64..20.0, 0.0f64..20.0),
        t in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
    ) {
        let hi = Point::new([lo[0] + side.0, lo[1] + side.1, lo[2] + side.2]);
        let rect = Rect::new(lo, hi);
        // A point inside the rectangle, parameterised by t.
        let inner = Point::new([
            lo[0] + side.0 * t.0,
            lo[1] + side.1 * t.1,
            lo[2] + side.2 * t.2,
        ]);
        for metric in Metric::ALL {
            let d = metric.distance(&q, &inner);
            prop_assert!(rect.min_distance(&q, metric) <= d + 1e-9, "{}", metric);
            prop_assert!(rect.max_distance(&q, metric) >= d - 1e-9, "{}", metric);
        }
    }

    /// The convex-hull refinement (Procedure 6) is exact under every
    /// metric whenever the member set is a legal ε-clique.
    #[test]
    fn hull_admits_exact_under_every_metric(
        members in vec(arb_point2(), 1..40),
        probe in arb_point2(),
        eps in 0.1f64..6.0,
    ) {
        let hull = ConvexHull::build(&members);
        for metric in Metric::ALL {
            if hull.diameter(metric) <= eps {
                let truth = members.iter().all(|m| metric.within(m, &probe, eps));
                prop_assert_eq!(hull.admits(&probe, eps, metric), truth, "{}", metric);
            }
        }
    }
}
