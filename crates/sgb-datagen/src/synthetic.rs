//! Synthetic multi-dimensional point workloads.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgb_geom::Point;

/// `n` points uniform in the unit hypercube (seeded).
pub fn uniform_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen::<f64>();
            }
            Point::new(c)
        })
        .collect()
}

/// `n` points from a Gaussian mixture of `clusters` centres (uniform in the
/// unit hypercube) with per-coordinate standard deviation `spread`.
/// Coordinates are clamped to `[0, 1]` so ε thresholds stay comparable
/// across configurations. Deterministic per seed.
pub fn clustered_points<const D: usize>(
    n: usize,
    clusters: usize,
    spread: f64,
    seed: u64,
) -> Vec<Point<D>> {
    clustered_points_with_centers(n, clusters, spread, seed).0
}

/// Like [`clustered_points`] — same distribution, same random stream per
/// seed — but also returns the ground-truth mixture centres, so SGB-Around
/// benchmarks and tests can seed the operator with the true centres the
/// points were drawn from. Returns `(points, centers)`.
pub fn clustered_points_with_centers<const D: usize>(
    n: usize,
    clusters: usize,
    spread: f64,
    seed: u64,
) -> (Vec<Point<D>>, Vec<Point<D>>) {
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = SmallRng::seed_from_u64(seed);
    let centers: Vec<[f64; D]> = (0..clusters)
        .map(|_| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen::<f64>();
            }
            c
        })
        .collect();
    let points = (0..n)
        .map(|_| {
            let center = centers[rng.gen_range(0..clusters)];
            let mut c = [0.0; D];
            for (d, v) in c.iter_mut().enumerate() {
                *v = (center[d] + gaussian(&mut rng) * spread).clamp(0.0, 1.0);
            }
            Point::new(c)
        })
        .collect();
    (points, centers.into_iter().map(Point::new).collect())
}

/// A standard-normal sample via the Box–Muller transform (keeps `rand` the
/// only dependency; `rand_distr` is not in the offline set).
pub fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_points_in_unit_square() {
        let pts = uniform_points::<2>(1000, 1);
        assert_eq!(pts.len(), 1000);
        for p in &pts {
            assert!((0.0..=1.0).contains(&p.x()));
            assert!((0.0..=1.0).contains(&p.y()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uniform_points::<2>(50, 7), uniform_points::<2>(50, 7));
        assert_ne!(uniform_points::<2>(50, 7), uniform_points::<2>(50, 8));
        assert_eq!(
            clustered_points::<2>(50, 5, 0.01, 3),
            clustered_points::<2>(50, 5, 0.01, 3)
        );
    }

    #[test]
    fn clustered_points_are_clustered() {
        // Average nearest-neighbour distance of clustered data must be far
        // below that of uniform data at the same cardinality.
        let n = 500;
        let clustered = clustered_points::<2>(n, 10, 0.005, 42);
        let uniform = uniform_points::<2>(n, 42);
        let mean_nn = |pts: &[Point<2>]| {
            let mut total = 0.0;
            for (i, p) in pts.iter().enumerate() {
                let mut best = f64::INFINITY;
                for (j, q) in pts.iter().enumerate() {
                    if i != j {
                        best = best.min(p.dist_sq(q));
                    }
                }
                total += best.sqrt();
            }
            total / pts.len() as f64
        };
        assert!(mean_nn(&clustered) < mean_nn(&uniform) / 2.0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn with_centers_is_a_superset_of_clustered_points() {
        // The wrapper must reproduce the exact same point stream, and the
        // returned centers must be the mixture the points huddle around.
        let (points, centers) = clustered_points_with_centers::<2>(400, 6, 0.004, 17);
        assert_eq!(points, clustered_points::<2>(400, 6, 0.004, 17));
        assert_eq!(centers.len(), 6);
        assert!(centers
            .iter()
            .all(|c| c.coords().iter().all(|v| (0.0..=1.0).contains(v))));
        // Ground truth: almost every point lies within a few σ of some
        // center (clamping can push boundary points around, so allow slack).
        let near = points
            .iter()
            .filter(|p| centers.iter().any(|c| p.dist_l2(c) < 0.03))
            .count();
        assert!(near >= 399, "only {near}/400 points near a true center");
    }

    #[test]
    fn three_dimensional_generation() {
        let pts = clustered_points::<3>(100, 4, 0.01, 5);
        assert_eq!(pts.len(), 100);
        assert!(pts
            .iter()
            .all(|p| p.coords().iter().all(|c| (0.0..=1.0).contains(c))));
    }
}
