//! Synthetic social check-in datasets (Brightkite / Gowalla substitutes).
//!
//! The paper's Figure 11 clusters users of the Brightkite and Gowalla
//! location-based social networks by check-in coordinates. Those SNAP
//! datasets are not available offline, so this module generates check-ins
//! with the same *spatial structure*: a few thousand urban "hotspots" whose
//! popularity follows a power law (a handful of cities dominate), Gaussian
//! scatter around each hotspot, and a fraction of background noise spread
//! over the whole bounding box. That structure — many dense clusters at
//! wildly different densities plus sparse noise — is what drives the
//! behaviour of both the SGB operators and the clustering baselines.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgb_geom::Point;

use crate::synthetic::gaussian;

/// One check-in record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Checkin {
    /// User identifier.
    pub user: u32,
    /// Location, as `(latitude, longitude)`.
    pub location: Point<2>,
}

/// Configuration of the check-in generator.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckinConfig {
    /// Number of check-ins.
    pub n: usize,
    /// Number of users (each check-in is assigned to a user; users favour
    /// a home hotspot).
    pub users: usize,
    /// Number of hotspot centres.
    pub hotspots: usize,
    /// Standard deviation of the Gaussian scatter around a hotspot,
    /// in degrees.
    pub spread: f64,
    /// Fraction of check-ins scattered uniformly over the bounding box.
    pub noise: f64,
    /// Power-law exponent for hotspot popularity (larger ⇒ more skew).
    pub skew: f64,
    /// Latitude range of the bounding box.
    pub lat_range: (f64, f64),
    /// Longitude range of the bounding box.
    pub lon_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl CheckinConfig {
    /// A Brightkite-like configuration (Brightkite skews heavily towards
    /// the US): ~1.5k metro areas with city-scale scatter (σ ≈ 0.35°, the
    /// radius of a large metropolitan region), so an ε = 0.2° query window
    /// sees a *fraction* of a hotspot — the density regime of the real
    /// dataset.
    pub fn brightkite_like(n: usize) -> Self {
        Self {
            n,
            users: (n / 12).max(1),
            hotspots: 1_500,
            spread: 0.35,
            noise: 0.02,
            skew: 1.1,
            lat_range: (24.0, 50.0),
            lon_range: (-125.0, -66.0),
            seed: 0xB816,
        }
    }

    /// A Gowalla-like configuration: more hotspots over the whole globe
    /// with more background travel noise.
    pub fn gowalla_like(n: usize) -> Self {
        Self {
            n,
            users: (n / 20).max(1),
            hotspots: 3_000,
            spread: 0.5,
            noise: 0.05,
            skew: 0.9,
            lat_range: (-55.0, 70.0),
            lon_range: (-180.0, 180.0),
            seed: 0x60A11A,
        }
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    pub fn generate(&self) -> CheckinDataset {
        assert!(self.n > 0 && self.hotspots > 0 && self.users > 0);
        assert!((0.0..=1.0).contains(&self.noise));
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // Hotspot centres with power-law popularity weights.
        let centers: Vec<(f64, f64)> = (0..self.hotspots)
            .map(|_| {
                (
                    rng.gen_range(self.lat_range.0..self.lat_range.1),
                    rng.gen_range(self.lon_range.0..self.lon_range.1),
                )
            })
            .collect();
        let weights: Vec<f64> = (0..self.hotspots)
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.skew))
            .collect();
        let total_weight: f64 = weights.iter().sum();
        // Cumulative distribution for O(log H) sampling.
        let mut cdf = Vec::with_capacity(self.hotspots);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total_weight;
            cdf.push(acc);
        }

        // Each user gets a home hotspot (also popularity-skewed).
        let sample_hotspot = |rng: &mut SmallRng, cdf: &[f64]| -> usize {
            let u: f64 = rng.gen();
            cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
        };
        let homes: Vec<usize> = (0..self.users)
            .map(|_| sample_hotspot(&mut rng, &cdf))
            .collect();

        let mut checkins = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let user = rng.gen_range(0..self.users) as u32;
            let location = if rng.gen::<f64>() < self.noise {
                Point::new([
                    rng.gen_range(self.lat_range.0..self.lat_range.1),
                    rng.gen_range(self.lon_range.0..self.lon_range.1),
                ])
            } else {
                // 70% of check-ins at the user's home hotspot, the rest at
                // a popularity-sampled one (travel).
                let spot = if rng.gen::<f64>() < 0.7 {
                    homes[user as usize]
                } else {
                    sample_hotspot(&mut rng, &cdf)
                };
                let (clat, clon) = centers[spot];
                Point::new([
                    (clat + gaussian(&mut rng) * self.spread)
                        .clamp(self.lat_range.0, self.lat_range.1),
                    (clon + gaussian(&mut rng) * self.spread)
                        .clamp(self.lon_range.0, self.lon_range.1),
                ])
            };
            checkins.push(Checkin { user, location });
        }
        CheckinDataset { checkins }
    }
}

/// A generated check-in dataset.
#[derive(Clone, Debug)]
pub struct CheckinDataset {
    /// The check-ins, in generation order.
    pub checkins: Vec<Checkin>,
}

impl CheckinDataset {
    /// Number of check-ins.
    pub fn len(&self) -> usize {
        self.checkins.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.checkins.is_empty()
    }

    /// The check-in locations only.
    pub fn points(&self) -> Vec<Point<2>> {
        self.checkins.iter().map(|c| c.location).collect()
    }

    /// Locations rescaled to the unit square (the evaluation uses ε values
    /// like 0.2, which presuppose normalised coordinates).
    pub fn normalized_points(&self) -> Vec<Point<2>> {
        let (mut lat_min, mut lat_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lon_min, mut lon_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for c in &self.checkins {
            lat_min = lat_min.min(c.location.x());
            lat_max = lat_max.max(c.location.x());
            lon_min = lon_min.min(c.location.y());
            lon_max = lon_max.max(c.location.y());
        }
        let lat_span = (lat_max - lat_min).max(f64::MIN_POSITIVE);
        let lon_span = (lon_max - lon_min).max(f64::MIN_POSITIVE);
        self.checkins
            .iter()
            .map(|c| {
                Point::new([
                    (c.location.x() - lat_min) / lat_span,
                    (c.location.y() - lon_min) / lon_span,
                ])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_cardinality() {
        let data = CheckinConfig::brightkite_like(5000).generate();
        assert_eq!(data.len(), 5000);
        assert!(!data.is_empty());
    }

    #[test]
    fn locations_respect_bounding_box() {
        let cfg = CheckinConfig::brightkite_like(2000);
        let data = cfg.generate();
        for c in &data.checkins {
            assert!((cfg.lat_range.0..=cfg.lat_range.1).contains(&c.location.x()));
            assert!((cfg.lon_range.0..=cfg.lon_range.1).contains(&c.location.y()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CheckinConfig::gowalla_like(1000).generate();
        let b = CheckinConfig::gowalla_like(1000).generate();
        assert_eq!(a.checkins, b.checkins);
        let c = CheckinConfig::gowalla_like(1000).seed(1).generate();
        assert_ne!(a.checkins, c.checkins);
    }

    #[test]
    fn hotspot_structure_beats_uniform() {
        // Clusteredness: mean nearest-neighbour distance on normalised
        // check-ins must be well below uniform data's.
        let data = CheckinConfig::brightkite_like(800).generate();
        let pts = data.normalized_points();
        let uniform = crate::synthetic::uniform_points::<2>(800, 0xFEED);
        let mean_nn = |pts: &[Point<2>]| {
            let mut total = 0.0;
            for (i, p) in pts.iter().enumerate() {
                let mut best = f64::INFINITY;
                for (j, q) in pts.iter().enumerate() {
                    if i != j {
                        best = best.min(p.dist_sq(q));
                    }
                }
                total += best.sqrt();
            }
            total / pts.len() as f64
        };
        assert!(mean_nn(&pts) < mean_nn(&uniform));
    }

    #[test]
    fn normalized_points_fill_unit_square() {
        let data = CheckinConfig::gowalla_like(3000).generate();
        let pts = data.normalized_points();
        for p in &pts {
            assert!((0.0..=1.0).contains(&p.x()));
            assert!((0.0..=1.0).contains(&p.y()));
        }
        // The extremes touch the borders.
        let max_x = pts.iter().map(|p| p.x()).fold(0.0f64, f64::max);
        let min_x = pts.iter().map(|p| p.x()).fold(1.0f64, f64::min);
        assert!(max_x > 0.999 && min_x < 0.001);
    }

    #[test]
    fn users_are_in_range() {
        let cfg = CheckinConfig::brightkite_like(1000);
        let data = cfg.generate();
        assert!(data.checkins.iter().all(|c| (c.user as usize) < cfg.users));
    }
}
