#![warn(missing_docs)]

//! Deterministic workload generators for the SGB evaluation (Section 8.3).
//!
//! The paper evaluates on three datasets:
//!
//! * the **TPC-H benchmark** at scale factors 1–60 ([`tpch`]) — regenerated
//!   here by a seeded generator producing the columns the evaluation
//!   queries (Table 2) touch, with a configurable rows-per-scale-factor
//!   density so sweeps finish on a single machine;
//! * the **Brightkite** and **Gowalla** social check-in datasets
//!   ([`checkin`]) — substituted by a seeded Gaussian-mixture "hotspot"
//!   generator reproducing their spatial clusteredness (dense city centres
//!   plus background noise), since the original SNAP downloads are not
//!   available offline;
//! * **synthetic multi-dimensional points** ([`synthetic`]) used for the
//!   ε-sweep of Figure 9.

pub mod checkin;
pub mod synthetic;
pub mod tpch;

pub use checkin::{CheckinConfig, CheckinDataset};
pub use synthetic::{clustered_points, clustered_points_with_centers, uniform_points};
pub use tpch::{TpchConfig, TpchData};
