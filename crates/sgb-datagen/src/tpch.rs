//! A seeded TPC-H-like data generator.
//!
//! Generates the five tables the paper's evaluation queries (Table 2)
//! touch — `customer`, `orders`, `lineitem`, `supplier`, `partsupp` — with
//! TPC-H's schema fragments, key structure (orders reference customers,
//! lineitems reference orders/parts/suppliers) and plausible value
//! distributions. The `density` knob scales the rows-per-SF constants down
//! from the official 150k-customers-per-SF so that the paper's SF 1–60
//! sweeps complete on one machine; the *relative* table sizes match TPC-H.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgb_geom::Point;
use sgb_relation::value::days_from_civil;
use sgb_relation::{Database, Schema, Table, Value};

/// Generator configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct TpchConfig {
    /// Scale factor (the paper sweeps 1–60).
    pub scale_factor: f64,
    /// Fraction of official TPC-H cardinalities per SF
    /// (1.0 = 150,000 customers per SF; default 0.01).
    pub density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TpchConfig {
    /// A configuration at `scale_factor` with the default density.
    pub fn new(scale_factor: f64) -> Self {
        assert!(scale_factor > 0.0);
        Self {
            scale_factor,
            density: 0.01,
            seed: 0x79C4,
        }
    }

    /// Overrides the density.
    pub fn density(mut self, density: f64) -> Self {
        assert!(density > 0.0 && density <= 1.0);
        self.density = density;
        self
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn rows(&self, per_sf: f64) -> usize {
        ((per_sf * self.scale_factor * self.density).round() as usize).max(1)
    }

    /// Generates only the `(customer, orders)` pair — the tables behind
    /// the SGB1 two-dimensional grouping attribute. Orders of magnitude
    /// faster than [`generate`](Self::generate) at high scale factors
    /// because the lineitem fan-out is skipped; used by the Figure 10
    /// sweeps, which only consume [`TpchData::sgb1_points`]-style data.
    pub fn generate_customer_orders(&self) -> (Table, Table) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n_customer = self.rows(150_000.0);
        let n_orders = self.rows(1_500_000.0);
        let mut customer = Table::empty(Schema::new([
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_nationkey",
        ]));
        for k in 1..=n_customer {
            customer
                .push(vec![
                    Value::Int(k as i64),
                    Value::Str(format!("Customer#{k:09}")),
                    Value::Float(round2(rng.gen_range(-999.99..9999.99))),
                    Value::Int(rng.gen_range(0..25)),
                ])
                .unwrap();
        }
        let date_lo = days_from_civil(1992, 1, 1);
        let date_hi = days_from_civil(1998, 8, 2);
        let mut orders = Table::empty(Schema::new([
            "o_orderkey",
            "o_custkey",
            "o_totalprice",
            "o_orderdate",
        ]));
        for ok in 1..=n_orders {
            orders
                .push(vec![
                    Value::Int(ok as i64),
                    Value::Int(rng.gen_range(1..=n_customer) as i64),
                    Value::Float(round2(rng.gen_range(1_000.0..500_000.0))),
                    Value::Date(rng.gen_range(date_lo..date_hi)),
                ])
                .unwrap();
        }
        (customer, orders)
    }

    /// Generates all tables.
    pub fn generate(&self) -> TpchData {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n_customer = self.rows(150_000.0);
        let n_orders = self.rows(1_500_000.0);
        let n_supplier = self.rows(10_000.0);
        let n_part = self.rows(200_000.0);

        // customer(c_custkey, c_name, c_acctbal, c_nationkey)
        let mut customer = Table::empty(Schema::new([
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_nationkey",
        ]));
        for k in 1..=n_customer {
            customer
                .push(vec![
                    Value::Int(k as i64),
                    Value::Str(format!("Customer#{k:09}")),
                    Value::Float(round2(rng.gen_range(-999.99..9999.99))),
                    Value::Int(rng.gen_range(0..25)),
                ])
                .unwrap();
        }

        // supplier(s_suppkey, s_name, s_acctbal, s_nationkey)
        let mut supplier = Table::empty(Schema::new([
            "s_suppkey",
            "s_name",
            "s_acctbal",
            "s_nationkey",
        ]));
        for k in 1..=n_supplier {
            supplier
                .push(vec![
                    Value::Int(k as i64),
                    Value::Str(format!("Supplier#{k:09}")),
                    Value::Float(round2(rng.gen_range(-999.99..9999.99))),
                    Value::Int(rng.gen_range(0..25)),
                ])
                .unwrap();
        }

        // partsupp(ps_partkey, ps_suppkey, ps_supplycost): 4 suppliers/part.
        let mut partsupp = Table::empty(Schema::new(["ps_partkey", "ps_suppkey", "ps_supplycost"]));
        for part in 1..=n_part {
            for s in 0..4usize {
                // TPC-H's supplier spreading formula keeps pairs distinct.
                let supp = ((part + s * (n_supplier / 4 + (part - 1) / n_supplier.max(1)))
                    % n_supplier)
                    + 1;
                partsupp
                    .push(vec![
                        Value::Int(part as i64),
                        Value::Int(supp as i64),
                        Value::Float(round2(rng.gen_range(1.0..1000.0))),
                    ])
                    .unwrap();
            }
        }

        // orders(o_orderkey, o_custkey, o_totalprice, o_orderdate) and
        // lineitem(l_orderkey, l_partkey, l_suppkey, l_quantity,
        //          l_extendedprice, l_discount, l_shipdate, l_receiptdate).
        let mut orders = Table::empty(Schema::new([
            "o_orderkey",
            "o_custkey",
            "o_totalprice",
            "o_orderdate",
        ]));
        let mut lineitem = Table::empty(Schema::new([
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_shipdate",
            "l_receiptdate",
        ]));
        let date_lo = days_from_civil(1992, 1, 1);
        let date_hi = days_from_civil(1998, 8, 2);
        for ok in 1..=n_orders {
            let custkey = rng.gen_range(1..=n_customer) as i64;
            let orderdate = rng.gen_range(date_lo..date_hi);
            let lines = rng.gen_range(1..=7usize);
            let mut total = 0.0;
            for _ in 0..lines {
                let quantity = rng.gen_range(1..=50i64);
                let partkey = rng.gen_range(1..=n_part) as i64;
                // TPC-H price formula: part-derived base price × quantity.
                let base = 900.0 + (partkey % 1000) as f64 / 10.0;
                let extended = round2(base * quantity as f64);
                let discount = round2(rng.gen_range(0.0..0.10));
                let shipdate = orderdate + rng.gen_range(1..=121);
                let receiptdate = shipdate + rng.gen_range(1..=30);
                let suppkey = rng.gen_range(1..=n_supplier) as i64;
                total += extended * (1.0 - discount);
                lineitem
                    .push(vec![
                        Value::Int(ok as i64),
                        Value::Int(partkey),
                        Value::Int(suppkey),
                        Value::Int(quantity),
                        Value::Float(extended),
                        Value::Float(discount),
                        Value::Date(shipdate),
                        Value::Date(receiptdate),
                    ])
                    .unwrap();
            }
            orders
                .push(vec![
                    Value::Int(ok as i64),
                    Value::Int(custkey),
                    Value::Float(round2(total)),
                    Value::Date(orderdate),
                ])
                .unwrap();
        }

        TpchData {
            customer,
            orders,
            lineitem,
            supplier,
            partsupp,
        }
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// The generated tables.
#[derive(Clone, Debug)]
pub struct TpchData {
    /// `customer`.
    pub customer: Table,
    /// `orders`.
    pub orders: Table,
    /// `lineitem`.
    pub lineitem: Table,
    /// `supplier`.
    pub supplier: Table,
    /// `partsupp`.
    pub partsupp: Table,
}

impl TpchData {
    /// Registers every table in `db` under its TPC-H name.
    pub fn register_all(&self, db: &mut Database) {
        db.register("customer", self.customer.clone());
        db.register("orders", self.orders.clone());
        db.register("lineitem", self.lineitem.clone());
        db.register("supplier", self.supplier.clone());
        db.register("partsupp", self.partsupp.clone());
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.customer.len()
            + self.orders.len()
            + self.lineitem.len()
            + self.supplier.len()
            + self.partsupp.len()
    }

    /// The two-dimensional grouping attribute of the SGB1/SGB2 queries
    /// (customer account balance × total order spend), computed directly
    /// and rescaled to the unit square. This is the point stream the
    /// Figure 10 sweeps feed to the SGB operators.
    pub fn sgb1_points(&self) -> Vec<Point<2>> {
        sgb1_points_from(&self.customer, &self.orders)
    }
}

/// [`TpchData::sgb1_points`] over standalone `(customer, orders)` tables
/// (as produced by [`TpchConfig::generate_customer_orders`]).
pub fn sgb1_points_from(customer: &Table, orders: &Table) -> Vec<Point<2>> {
    // sum(o_totalprice) per customer.
    let n = customer.len();
    let mut spend = vec![0.0f64; n + 1];
    for row in &orders.rows {
        let cust = row[1].as_i64().unwrap() as usize;
        spend[cust] += row[2].as_f64().unwrap();
    }
    let mut pts = Vec::with_capacity(n);
    let mut max_spend = f64::MIN_POSITIVE;
    for &s in &spend {
        max_spend = max_spend.max(s);
    }
    for row in &customer.rows {
        let key = row[0].as_i64().unwrap() as usize;
        let ab = row[2].as_f64().unwrap();
        // acctbal spans [-1000, 10000): rescale to [0, 1].
        let x = (ab + 1000.0) / 11_000.0;
        let y = spend[key] / max_spend;
        pts.push(Point::new([x, y]));
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TpchData {
        TpchConfig::new(1.0).density(0.002).generate()
    }

    #[test]
    fn cardinalities_scale_with_sf_and_density() {
        let d1 = TpchConfig::new(1.0).density(0.002).generate();
        assert_eq!(d1.customer.len(), 300);
        assert_eq!(d1.orders.len(), 3000);
        assert_eq!(d1.supplier.len(), 20);
        let d2 = TpchConfig::new(2.0).density(0.002).generate();
        assert_eq!(d2.customer.len(), 600);
        assert_eq!(d2.orders.len(), 6000);
        // Lineitem averages 4 lines per order.
        let ratio = d1.lineitem.len() as f64 / d1.orders.len() as f64;
        assert!((1.0..=7.0).contains(&ratio));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TpchConfig::new(1.0).density(0.001).generate();
        let b = TpchConfig::new(1.0).density(0.001).generate();
        assert_eq!(a.customer.rows, b.customer.rows);
        assert_eq!(a.lineitem.rows, b.lineitem.rows);
        let c = TpchConfig::new(1.0).density(0.001).seed(9).generate();
        assert_ne!(a.customer.rows, c.customer.rows);
    }

    #[test]
    fn referential_integrity() {
        let d = small();
        let n_cust = d.customer.len() as i64;
        let n_supp = d.supplier.len() as i64;
        let n_orders = d.orders.len() as i64;
        for row in &d.orders.rows {
            let ck = row[1].as_i64().unwrap();
            assert!(ck >= 1 && ck <= n_cust, "o_custkey {ck} out of range");
        }
        for row in &d.lineitem.rows {
            let ok = row[0].as_i64().unwrap();
            let sk = row[2].as_i64().unwrap();
            assert!(ok >= 1 && ok <= n_orders);
            assert!(sk >= 1 && sk <= n_supp);
        }
        for row in &d.partsupp.rows {
            let sk = row[1].as_i64().unwrap();
            assert!(sk >= 1 && sk <= n_supp, "ps_suppkey {sk} out of range");
        }
    }

    #[test]
    fn dates_are_ordered() {
        let d = small();
        for row in &d.lineitem.rows {
            let (Value::Date(ship), Value::Date(receipt)) = (&row[6], &row[7]) else {
                panic!("expected dates")
            };
            assert!(receipt > ship, "receipt must follow ship");
        }
    }

    #[test]
    fn totalprice_matches_lineitems() {
        let d = small();
        let mut per_order = std::collections::HashMap::new();
        for row in &d.lineitem.rows {
            let ok = row[0].as_i64().unwrap();
            let ext = row[4].as_f64().unwrap();
            let disc = row[5].as_f64().unwrap();
            *per_order.entry(ok).or_insert(0.0) += ext * (1.0 - disc);
        }
        for row in &d.orders.rows {
            let ok = row[0].as_i64().unwrap();
            let total = row[2].as_f64().unwrap();
            let expect = per_order.get(&ok).copied().unwrap_or(0.0);
            assert!(
                (total - expect).abs() < 0.5,
                "order {ok}: {total} vs {expect}"
            );
        }
    }

    #[test]
    fn registers_and_queries_through_sql() {
        let mut db = Database::new();
        small().register_all(&mut db);
        assert_eq!(db.table_names().len(), 5);
        let out = db
            .query("SELECT count(*) FROM customer WHERE c_acctbal > 0")
            .unwrap();
        let n = out.scalar().unwrap().as_i64().unwrap();
        assert!(n > 0 && n <= 300);
    }

    #[test]
    fn sgb1_points_live_in_unit_square() {
        let d = small();
        let pts = d.sgb1_points();
        assert_eq!(pts.len(), d.customer.len());
        for p in &pts {
            assert!((0.0..=1.0).contains(&p.x()), "{p:?}");
            assert!((0.0..=1.0).contains(&p.y()), "{p:?}");
        }
    }
}
