//! EXPLAIN golden tests: snapshot-style assertions pinning the **exact**
//! plan rendering — one query per similarity operator — so refactors of
//! the algorithm vocabulary (the unified `Algorithm` enum, the session
//! options, the cost model's reason strings) can never silently change
//! what `EXPLAIN` tells the user. Every assertion is full-string equality:
//! if any of these fail, either fix the regression or consciously update
//! the snapshot *and* the documentation that quotes it.

use sgb_core::Algorithm;
use sgb_relation::{Database, SessionOptions};

/// A fixed five-point table (Figure 2 of the paper) so the planner's
/// row estimate — and therefore the cost model's reason string — is
/// deterministic.
fn fig2_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0, 7.0), (2.0, 6.0), (6.0, 2.0), (7.0, 1.0), (4.0, 4.0)")
        .unwrap();
    db
}

#[test]
fn sgb_all_explain_snapshot() {
    let db = fig2_db();
    let plan = db
        .explain(
            "SELECT count(*) FROM pts \
             GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE",
        )
        .unwrap();
    assert_eq!(
        plan,
        "SimilarityGroupBy [SGB-All LINF WITHIN 3 ON-OVERLAP ELIMINATE] \
         [path: AllPairs, threads: 1; auto: n = 5 <= 256, plain scan beats index construction; \
         index: none] (aggs: 1)\n\
         \x20 Scan pts\n"
    );
}

#[test]
fn sgb_any_explain_snapshot() {
    let db = fig2_db();
    let plan = db
        .explain("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5")
        .unwrap();
    assert_eq!(
        plan,
        "SimilarityGroupBy [SGB-Any L2 WITHIN 1.5] \
         [path: AllPairs, threads: 1; auto: n = 5 <= 512, plain scan beats index construction; \
         index: none] (aggs: 1)\n\
         \x20 Scan pts\n"
    );
}

#[test]
fn sgb_around_explain_snapshot() {
    let db = fig2_db();
    let plan = db
        .explain(
            "SELECT count(*) FROM pts \
             GROUP BY x, y AROUND ((1, 1), (9, 9), (4, 4)) L1 WITHIN 2.5",
        )
        .unwrap();
    // The brute center scan speaks the unified vocabulary: `AllPairs`.
    assert_eq!(
        plan,
        "SimilarityAround [3 centers, L1 WITHIN 2.5, path: AllPairs, threads: 1] \
         [auto: 3 centers <= 128, center scan beats index construction \
         (BENCH_around.json crossover ~1k); index: none] (aggs: 1)\n\
         \x20 Scan pts\n"
    );
}

#[test]
fn session_pinned_algorithm_explain_snapshot() {
    // A session override replaces the cost model's reason with an explicit
    // note that the session options chose the path.
    let mut db = fig2_db();
    db.session_mut().any_algorithm = Algorithm::Indexed;
    let plan = db
        .explain("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5")
        .unwrap();
    assert_eq!(
        plan,
        "SimilarityGroupBy [SGB-Any L2 WITHIN 1.5] \
         [path: Indexed, threads: 1; pinned by session options; index: built] (aggs: 1)\n\
         \x20 Scan pts\n"
    );
}

#[test]
fn cache_hit_explain_snapshot() {
    // Executing the query builds the R-tree into the session cache; the
    // next EXPLAIN of the same shape reports the index as already cached.
    let mut db = fig2_db();
    db.session_mut().any_algorithm = Algorithm::Indexed;
    let sql = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5";
    db.execute(sql).unwrap();
    assert_eq!(
        db.explain(sql).unwrap(),
        "SimilarityGroupBy [SGB-Any L2 WITHIN 1.5] \
         [path: Indexed, threads: 1; pinned by session options; index: cached (hit)] \
         (aggs: 1)\n\
         \x20 Scan pts\n"
    );
}

#[test]
fn cache_invalidation_explain_snapshot() {
    // An INSERT bumps the table version: the cached index no longer
    // applies and EXPLAIN goes back to reporting a fresh build.
    let mut db = fig2_db();
    db.session_mut().any_algorithm = Algorithm::Indexed;
    let sql = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5";
    db.execute(sql).unwrap();
    db.execute("INSERT INTO pts VALUES (8.0, 8.0)").unwrap();
    assert_eq!(
        db.explain(sql).unwrap(),
        "SimilarityGroupBy [SGB-Any L2 WITHIN 1.5] \
         [path: Indexed, threads: 1; pinned by session options; index: built] (aggs: 1)\n\
         \x20 Scan pts\n"
    );
}

#[test]
fn cache_disabled_explain_snapshot() {
    // With the session cache off, index paths report that every build is
    // per-query — even after executing the same query.
    let mut db = fig2_db();
    db.session_mut().any_algorithm = Algorithm::Indexed;
    db.session_mut().cache = false;
    let sql = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5";
    db.execute(sql).unwrap();
    assert_eq!(
        db.explain(sql).unwrap(),
        "SimilarityGroupBy [SGB-Any L2 WITHIN 1.5] \
         [path: Indexed, threads: 1; pinned by session options; \
         index: built (session cache disabled)] (aggs: 1)\n\
         \x20 Scan pts\n"
    );
}

#[test]
fn subscription_snapshot_explain_snapshot() {
    // With an active subscription whose published snapshot is fresh, the
    // node reports serve-from-snapshot; a DELETE advances the epoch (the
    // subscription keeps pace, so the annotation stays); dropping the
    // table would deactivate it entirely.
    let mut db = fig2_db();
    let sql = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5";
    db.subscribe(sql).unwrap();
    assert_eq!(
        db.explain(sql).unwrap(),
        "SimilarityGroupBy [SGB-Any L2 WITHIN 1.5] \
         [path: AllPairs, threads: 1; auto: n = 5 <= 512, plain scan beats index construction; \
         index: none; snapshot: subscription #0 (epoch 0)] (aggs: 1)\n\
         \x20 Scan pts\n"
    );
    db.execute("DELETE FROM pts WHERE x = 4").unwrap();
    assert_eq!(
        db.explain(sql).unwrap(),
        "SimilarityGroupBy [SGB-Any L2 WITHIN 1.5] \
         [path: AllPairs, threads: 1; auto: n = 4 <= 512, plain scan beats index construction; \
         index: none; snapshot: subscription #0 (epoch 1)] (aggs: 1)\n\
         \x20 Scan pts\n"
    );
    // A different ε is a different grouping — no snapshot annotation.
    let other = db
        .explain("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2.5")
        .unwrap();
    assert!(!other.contains("snapshot:"), "got: {other}");
}

#[test]
fn subscription_around_explain_snapshot() {
    let mut db = fig2_db();
    let sql = "SELECT count(*) FROM pts \
               GROUP BY x, y AROUND ((1, 1), (9, 9), (4, 4)) L1 WITHIN 2.5";
    db.subscribe(sql).unwrap();
    assert_eq!(
        db.explain(sql).unwrap(),
        "SimilarityAround [3 centers, L1 WITHIN 2.5, path: AllPairs, threads: 1] \
         [auto: 3 centers <= 128, center scan beats index construction \
         (BENCH_around.json crossover ~1k); index: none; \
         snapshot: subscription #0 (epoch 0)] (aggs: 1)\n\
         \x20 Scan pts\n"
    );
}

#[test]
fn session_options_at_construction_match_session_mut() {
    // `Database::with_options` and `session_mut` are the same surface:
    // identical options produce identical plans.
    let mut a = fig2_db();
    a.session_mut().all_algorithm = Algorithm::Grid;
    a.session_mut().seed = 9;

    let mut b = Database::with_options(
        SessionOptions::new()
            .with_all_algorithm(Algorithm::Grid)
            .with_seed(9),
    );
    b.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    b.execute("INSERT INTO pts VALUES (1.0, 7.0), (2.0, 6.0), (6.0, 2.0), (7.0, 1.0), (4.0, 4.0)")
        .unwrap();

    let sql = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 3";
    assert_eq!(a.explain(sql).unwrap(), b.explain(sql).unwrap());
    assert!(a
        .explain(sql)
        .unwrap()
        .contains("path: Grid, threads: 1; pinned by session options"));
}

#[test]
fn inapplicable_session_algorithm_is_a_clear_error() {
    // BoundsChecking exists only for SGB-All; planning a DISTANCE-TO-ANY
    // or AROUND query under it must fail with a message naming the valid
    // choices, not panic or silently fall back.
    let mut db = fig2_db();
    db.session_mut().any_algorithm = Algorithm::BoundsChecking;
    let err = db
        .query("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        .unwrap_err();
    assert!(
        err.to_string().contains("BoundsChecking")
            && err.to_string().contains("DISTANCE-TO-ANY")
            && err
                .to_string()
                .contains("valid: Auto, AllPairs, Indexed, Grid"),
        "got: {err}"
    );

    db.session_mut().any_algorithm = Algorithm::Auto;
    db.session_mut().around_algorithm = Algorithm::BoundsChecking;
    let err = db
        .query("SELECT count(*) FROM pts GROUP BY x, y AROUND ((1, 1))")
        .unwrap_err();
    assert!(err.to_string().contains("AROUND"), "got: {err}");
}
