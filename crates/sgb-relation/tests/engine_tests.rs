//! End-to-end SQL tests: parse → plan → execute against in-memory tables.

use sgb_core::Algorithm;
use sgb_relation::{Database, Schema, Table, Value};

fn db_with_people() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE people (id INT, name TEXT, age INT, city TEXT)")
        .unwrap();
    db.execute(
        "INSERT INTO people VALUES \
         (1, 'ann', 34, 'rome'), (2, 'bob', 28, 'oslo'), (3, 'cat', 34, 'rome'), \
         (4, 'dan', 51, 'oslo'), (5, 'eve', 28, 'rome')",
    )
    .unwrap();
    db
}

fn ints(t: &Table, col: usize) -> Vec<i64> {
    t.rows.iter().map(|r| r[col].as_i64().unwrap()).collect()
}

#[test]
fn select_filter_project() {
    let db = db_with_people();
    let out = db
        .query("SELECT name, age * 2 AS dbl FROM people WHERE age > 30 ORDER BY id")
        .unwrap();
    assert_eq!(out.len(), 3);
    assert_eq!(out.schema.columns[1].name, "dbl");
    assert_eq!(ints(&out, 1), vec![68, 68, 102]);
}

#[test]
fn wildcard_and_limit() {
    let db = db_with_people();
    let out = db
        .query("SELECT * FROM people ORDER BY id DESC LIMIT 2")
        .unwrap();
    assert_eq!(out.schema.len(), 4);
    assert_eq!(ints(&out, 0), vec![5, 4]);
}

#[test]
fn standard_group_by_having() {
    let db = db_with_people();
    let out = db
        .query(
            "SELECT city, count(*) AS n, avg(age) FROM people \
             GROUP BY city HAVING count(*) >= 2 ORDER BY n DESC",
        )
        .unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out.rows[0][0], Value::from("rome"));
    assert_eq!(out.rows[0][1], Value::Int(3));
    assert_eq!(out.rows[1][1], Value::Int(2));
}

#[test]
fn global_aggregate_without_group_by() {
    let db = db_with_people();
    let out = db
        .query("SELECT count(*), min(age), max(age), sum(age) FROM people")
        .unwrap();
    assert_eq!(
        out.rows[0],
        vec![
            Value::Int(5),
            Value::Int(28),
            Value::Int(51),
            Value::Int(175)
        ]
    );
    // Global aggregate over an empty relation still yields one row.
    let empty = db
        .query("SELECT count(*), sum(age) FROM people WHERE age > 100")
        .unwrap();
    assert_eq!(empty.rows[0][0], Value::Int(0));
    assert!(empty.rows[0][1].is_null(), "sum over empty is NULL");
}

#[test]
fn hash_join_via_where_equality() {
    let mut db = db_with_people();
    db.execute("CREATE TABLE orders (oid INT, person_id INT, total DOUBLE)")
        .unwrap();
    db.execute(
        "INSERT INTO orders VALUES (10, 1, 99.5), (11, 1, 0.5), (12, 3, 10.0), (13, 9, 1.0)",
    )
    .unwrap();
    let out = db
        .query(
            "SELECT p.name, sum(o.total) AS spent FROM people p, orders o \
             WHERE p.id = o.person_id GROUP BY p.name ORDER BY spent DESC",
        )
        .unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out.rows[0][0], Value::from("ann"));
    assert_eq!(out.rows[0][1], Value::Float(100.0));
    assert_eq!(out.rows[1][0], Value::from("cat"));
    // The plan must use a hash join, not a filtered cross product.
    let plan = db
        .explain("SELECT p.name FROM people p, orders o WHERE p.id = o.person_id")
        .unwrap();
    assert!(plan.contains("HashJoin"), "plan:\n{plan}");
    assert!(!plan.contains("CrossJoin"), "plan:\n{plan}");
}

#[test]
fn predicate_pushdown_below_join() {
    let mut db = db_with_people();
    db.execute("CREATE TABLE orders (oid INT, person_id INT, total DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO orders VALUES (10, 1, 99.5)")
        .unwrap();
    let plan = db
        .explain(
            "SELECT p.name FROM people p, orders o \
             WHERE p.id = o.person_id AND p.age > 30 AND o.total > 50",
        )
        .unwrap();
    // Both single-table filters sit below the join.
    let join_pos = plan.find("HashJoin").unwrap();
    let filters: Vec<usize> = plan.match_indices("Filter").map(|(i, _)| i).collect();
    assert_eq!(filters.len(), 2, "plan:\n{plan}");
    assert!(filters.iter().all(|&f| f > join_pos), "plan:\n{plan}");
}

#[test]
fn in_subquery_semijoin() {
    let mut db = db_with_people();
    db.execute("CREATE TABLE vip (pid INT)").unwrap();
    db.execute("INSERT INTO vip VALUES (1), (4)").unwrap();
    let out = db
        .query("SELECT name FROM people WHERE id IN (SELECT pid FROM vip) ORDER BY name")
        .unwrap();
    assert_eq!(out.column(0), vec![Value::from("ann"), Value::from("dan")]);
    let not_in = db
        .query("SELECT count(*) FROM people WHERE id NOT IN (SELECT pid FROM vip)")
        .unwrap();
    assert_eq!(not_in.scalar().unwrap(), &Value::Int(3));
}

#[test]
fn derived_table_with_aggregate() {
    let db = db_with_people();
    let out = db
        .query("SELECT max(n) FROM (SELECT city, count(*) AS n FROM people GROUP BY city) AS c")
        .unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Int(3));
}

#[test]
fn sgb_any_counts_connected_components() {
    let mut db = Database::new();
    db.execute("CREATE TABLE gps (lat DOUBLE, lon DOUBLE)")
        .unwrap();
    // Figure 2: two pairs bridged by a5 → all five merge under SGB-Any.
    db.execute("INSERT INTO gps VALUES (1.0, 7.0), (2.0, 6.0), (6.0, 2.0), (7.0, 1.0), (4.0, 4.0)")
        .unwrap();
    let out = db
        .query("SELECT count(*) FROM gps GROUP BY lat, lon DISTANCE-TO-ANY LINF WITHIN 3")
        .unwrap();
    assert_eq!(
        out.scalar().unwrap(),
        &Value::Int(5),
        "Example 2 output is {{5}}"
    );
}

#[test]
fn sgb_all_three_overlap_semantics() {
    let mut db = Database::new();
    db.execute("CREATE TABLE gps (lat DOUBLE, lon DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO gps VALUES (1.0, 7.0), (2.0, 6.0), (6.0, 2.0), (7.0, 1.0), (4.0, 4.0)")
        .unwrap();
    let counts = |sql: &str, db: &Database| -> Vec<i64> {
        let mut v = ints(&db.query(sql).unwrap(), 0);
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    };
    assert_eq!(
        counts(
            "SELECT count(*) FROM gps GROUP BY lat, lon \
             DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP JOIN-ANY",
            &db
        ),
        vec![3, 2],
        "Example 1 JOIN-ANY output is {{3, 2}}"
    );
    assert_eq!(
        counts(
            "SELECT count(*) FROM gps GROUP BY lat, lon \
             DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE",
            &db
        ),
        vec![2, 2],
        "Example 1 ELIMINATE output is {{2, 2}}"
    );
    assert_eq!(
        counts(
            "SELECT count(*) FROM gps GROUP BY lat, lon \
             DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP FORM-NEW-GROUP",
            &db
        ),
        vec![2, 2, 1],
        "Example 1 FORM-NEW-GROUP output is {{2, 2, 1}}"
    );
}

#[test]
fn sgb_runs_after_join_in_one_pipeline() {
    // The headline integration: SGB consumes join output directly.
    let mut db = Database::new();
    db.execute("CREATE TABLE users (uid INT, region INT)")
        .unwrap();
    db.execute("CREATE TABLE checkins (uid INT, lat DOUBLE, lon DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO users VALUES (1, 10), (2, 10), (3, 20)")
        .unwrap();
    db.execute(
        "INSERT INTO checkins VALUES (1, 0.0, 0.0), (1, 0.1, 0.1), (2, 0.2, 0.0), \
         (3, 5.0, 5.0), (3, 5.1, 5.1)",
    )
    .unwrap();
    let out = db
        .query(
            "SELECT count(*), array_agg(u.uid) FROM users u, checkins c \
             WHERE u.uid = c.uid \
             GROUP BY c.lat, c.lon DISTANCE-TO-ANY L2 WITHIN 0.5",
        )
        .unwrap();
    let mut sizes = ints(&out, 0);
    sizes.sort_unstable();
    assert_eq!(sizes, vec![2, 3]);
    let plan = db
        .explain(
            "SELECT count(*) FROM users u, checkins c WHERE u.uid = c.uid \
             GROUP BY c.lat, c.lon DISTANCE-TO-ANY L2 WITHIN 0.5",
        )
        .unwrap();
    assert!(
        plan.contains("SimilarityGroupBy [SGB-Any L2 WITHIN 0.5]"),
        "plan:\n{plan}"
    );
    assert!(plan.contains("HashJoin"), "plan:\n{plan}");
}

#[test]
fn sgb_aggregates_and_having() {
    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE, w INT)")
        .unwrap();
    db.execute("INSERT INTO pts VALUES (0.0, 0.0, 10), (0.5, 0.0, 20), (9.0, 9.0, 5)")
        .unwrap();
    let out = db
        .query(
            "SELECT count(*) AS n, sum(w), avg(w), min(w), max(w) FROM pts \
             GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1 HAVING count(*) > 1",
        )
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(
        out.rows[0],
        vec![
            Value::Int(2),
            Value::Int(30),
            Value::Float(15.0),
            Value::Int(10),
            Value::Int(20)
        ]
    );
}

#[test]
fn sgb_algorithm_choice_is_transparent() {
    // The engine setting flips the algorithm without changing results.
    let mut results = Vec::new();
    for algo in [
        Algorithm::AllPairs,
        Algorithm::BoundsChecking,
        Algorithm::Indexed,
    ] {
        let mut db = Database::new();
        db.session_mut().all_algorithm = algo;
        db.execute("CREATE TABLE g (x DOUBLE, y DOUBLE)").unwrap();
        db.execute(
            "INSERT INTO g VALUES (1.0, 7.0), (2.0, 6.0), (6.0, 2.0), (7.0, 1.0), (4.0, 4.0)",
        )
        .unwrap();
        let out = db
            .query(
                "SELECT count(*) FROM g GROUP BY x, y \
                 DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE",
            )
            .unwrap();
        results.push(out.sorted());
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn sgb_rejects_non_numeric_grouping() {
    let mut db = db_with_people();
    let err = db
        .execute("SELECT count(*) FROM people GROUP BY name, age DISTANCE-TO-ALL WITHIN 1")
        .unwrap_err();
    assert!(err.to_string().contains("numeric"), "got: {err}");
}

#[test]
fn sgb_grouped_select_list_rejects_bare_columns() {
    let db = db_with_people();
    let err = db
        .query("SELECT age FROM people GROUP BY age, id DISTANCE-TO-ALL WITHIN 1")
        .unwrap_err();
    assert!(err.to_string().contains("aggregates"), "got: {err}");
}

#[test]
fn errors_are_informative() {
    let db = db_with_people();
    assert!(db.query("SELECT nope FROM people").is_err());
    assert!(db.query("SELECT name FROM nonexistent").is_err());
    assert!(db.query("SELECT name people").is_err());
    let mut db2 = Database::new();
    assert!(db2.execute("INSERT INTO missing VALUES (1)").is_err());
    db2.execute("CREATE TABLE t (a INT)").unwrap();
    assert!(db2.execute("CREATE TABLE t (b INT)").is_err());
}

#[test]
fn register_programmatic_table() {
    let mut db = Database::new();
    let table = Table::new(
        Schema::new(["a", "b"]),
        vec![
            vec![Value::Int(1), Value::Float(2.0)],
            vec![Value::Int(3), Value::Float(4.0)],
        ],
    )
    .unwrap();
    db.register("t", table);
    let out = db.query("SELECT sum(a + b) FROM t").unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Float(10.0));
    assert_eq!(db.table_names(), vec!["t"]);
    assert!(db.drop_table("t"));
    assert!(!db.drop_table("t"));
}

#[test]
fn date_filtering_end_to_end() {
    let mut db = Database::new();
    db.execute("CREATE TABLE l (d DATE, v INT)").unwrap();
    db.execute(
        "INSERT INTO l VALUES (date '1995-03-15', 1), (date '1995-12-01', 2), (date '1996-06-01', 4)",
    )
    .unwrap();
    let out = db
        .query(
            "SELECT sum(v) FROM l WHERE d > date '1995-01-01' \
             AND d < date '1995-01-01' + interval '10' month",
        )
        .unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Int(1));
}

#[test]
fn cross_join_fallback_when_no_equi_key() {
    let mut db = Database::new();
    db.execute("CREATE TABLE a (x INT)").unwrap();
    db.execute("CREATE TABLE b (y INT)").unwrap();
    db.execute("INSERT INTO a VALUES (1), (2)").unwrap();
    db.execute("INSERT INTO b VALUES (10), (20), (30)").unwrap();
    let out = db.query("SELECT count(*) FROM a, b").unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Int(6));
    let plan = db.explain("SELECT x FROM a, b WHERE x < y").unwrap();
    assert!(plan.contains("CrossJoin"), "plan:\n{plan}");
    // Range predicates still apply after the cross join.
    let out = db
        .query("SELECT count(*) FROM a, b WHERE x * 10 = y")
        .unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Int(2));
}

#[test]
fn ambiguous_column_is_an_error() {
    let mut db = Database::new();
    db.execute("CREATE TABLE a (k INT, v INT)").unwrap();
    db.execute("CREATE TABLE b (k INT, w INT)").unwrap();
    db.execute("INSERT INTO a VALUES (1, 2)").unwrap();
    db.execute("INSERT INTO b VALUES (1, 3)").unwrap();
    let err = db.query("SELECT k FROM a, b WHERE a.k = b.k").unwrap_err();
    assert!(err.to_string().contains("ambiguous"), "{err}");
    // Qualified references resolve fine.
    let ok = db
        .query("SELECT a.k, b.w FROM a, b WHERE a.k = b.k")
        .unwrap();
    assert_eq!(ok.rows[0], vec![Value::Int(1), Value::Int(3)]);
}

#[test]
fn in_list_and_not_in_list() {
    let db = db_with_people();
    let out = db
        .query("SELECT count(*) FROM people WHERE city IN ('rome', 'paris')")
        .unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Int(3));
    let out = db
        .query("SELECT count(*) FROM people WHERE age NOT IN (28, 34)")
        .unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Int(1));
}

#[test]
fn multi_key_order_by_with_directions() {
    let db = db_with_people();
    let out = db
        .query("SELECT city, age, name FROM people ORDER BY city ASC, age DESC, name")
        .unwrap();
    let names: Vec<String> = out.rows.iter().map(|r| r[2].to_string()).collect();
    assert_eq!(names, vec!["dan", "bob", "ann", "cat", "eve"]);
}

#[test]
fn limit_zero_and_overlimit() {
    let db = db_with_people();
    assert_eq!(db.query("SELECT * FROM people LIMIT 0").unwrap().len(), 0);
    assert_eq!(db.query("SELECT * FROM people LIMIT 99").unwrap().len(), 5);
}

#[test]
fn array_agg_renders_braced_list() {
    let db = db_with_people();
    let out = db
        .query("SELECT array_agg(name) FROM people WHERE city = 'oslo'")
        .unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::from("{bob,dan}"));
}

#[test]
fn arithmetic_and_boolean_expressions() {
    let db = db_with_people();
    let out = db
        .query(
            "SELECT name FROM people \
             WHERE (age > 30 AND city = 'rome') OR NOT (age >= 28) ORDER BY name",
        )
        .unwrap();
    assert_eq!(out.column(0), vec![Value::from("ann"), Value::from("cat")]);
    let out = db
        .query("SELECT -age, age / 2, age - 4 FROM people WHERE id = 1")
        .unwrap();
    assert_eq!(
        out.rows[0],
        vec![Value::Int(-34), Value::Int(17), Value::Int(30)]
    );
}

#[test]
fn group_by_expression_key() {
    let db = db_with_people();
    // Group by a computed key (age bucket).
    let out = db
        .query("SELECT age / 10, count(*) FROM people GROUP BY age / 10 ORDER BY age / 10")
        .unwrap();
    assert_eq!(
        out.rows,
        vec![
            vec![Value::Int(2), Value::Int(2)],
            vec![Value::Int(3), Value::Int(2)],
            vec![Value::Int(5), Value::Int(1)],
        ]
    );
}

#[test]
fn count_distinct_is_rejected_with_clear_error() {
    let db = db_with_people();
    // DISTINCT inside aggregates is unsupported; the parser sees "distinct"
    // as a column reference and binding fails cleanly rather than silently
    // mis-aggregating.
    assert!(db.query("SELECT count(distinct) FROM people").is_err());
}

#[test]
fn sgb_on_empty_relation_yields_no_groups() {
    let mut db = Database::new();
    db.execute("CREATE TABLE e (x DOUBLE, y DOUBLE)").unwrap();
    let out = db
        .query("SELECT count(*) FROM e GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1")
        .unwrap();
    assert_eq!(out.len(), 0);
    let out = db
        .query("SELECT count(*) FROM e GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        .unwrap();
    assert_eq!(out.len(), 0);
}

#[test]
fn having_filters_sgb_groups() {
    let mut db = Database::new();
    db.execute("CREATE TABLE p (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO p VALUES (0.0, 0.0), (0.1, 0.0), (0.2, 0.0), (5.0, 5.0)")
        .unwrap();
    let out = db
        .query(
            "SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5 \
             HAVING count(*) >= 2",
        )
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows[0][0], Value::Int(3));
}

#[test]
fn nested_derived_tables_two_levels() {
    let db = db_with_people();
    let out = db
        .query(
            "SELECT max(total) FROM \
             (SELECT city, sum(n) AS total FROM \
              (SELECT city, age, count(*) AS n FROM people GROUP BY city, age) AS inner1 \
              GROUP BY city) AS outer1",
        )
        .unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Int(3));
}

#[test]
fn min_max_over_strings_and_dates() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (s TEXT, d DATE)").unwrap();
    db.execute("INSERT INTO t VALUES ('pear', date '1999-05-01'), ('apple', date '2001-02-03')")
        .unwrap();
    let out = db
        .query("SELECT min(s), max(s), min(d), max(d) FROM t")
        .unwrap();
    assert_eq!(out.rows[0][0], Value::from("apple"));
    assert_eq!(out.rows[0][1], Value::from("pear"));
    assert_eq!(out.rows[0][2].to_string(), "1999-05-01");
    assert_eq!(out.rows[0][3].to_string(), "2001-02-03");
}

#[test]
fn aggregates_skip_nulls() {
    let mut db = Database::new();
    db.execute("CREATE TABLE n (v INT)").unwrap();
    db.execute("INSERT INTO n VALUES (1), (NULL), (3), (NULL)")
        .unwrap();
    let out = db
        .query("SELECT count(*), count(v), sum(v), avg(v), min(v), max(v) FROM n")
        .unwrap();
    assert_eq!(
        out.rows[0],
        vec![
            Value::Int(4), // count(*) counts rows
            Value::Int(2), // count(v) counts non-null
            Value::Int(4),
            Value::Float(2.0),
            Value::Int(1),
            Value::Int(3),
        ]
    );
}

#[test]
fn null_comparisons_filter_out() {
    let mut db = Database::new();
    db.execute("CREATE TABLE n (v INT)").unwrap();
    db.execute("INSERT INTO n VALUES (1), (NULL), (3)").unwrap();
    // NULL = NULL is NULL, not TRUE: no row survives v = NULL.
    let out = db.query("SELECT count(*) FROM n WHERE v = NULL").unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Int(0));
    // NULL keys do not join.
    db.execute("CREATE TABLE m (v INT)").unwrap();
    db.execute("INSERT INTO m VALUES (NULL), (3)").unwrap();
    let out = db
        .query("SELECT count(*) FROM n, m WHERE n.v = m.v")
        .unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Int(1));
}

#[test]
fn group_by_groups_nulls_together() {
    let mut db = Database::new();
    db.execute("CREATE TABLE n (k INT, v INT)").unwrap();
    db.execute("INSERT INTO n VALUES (NULL, 1), (NULL, 2), (7, 3)")
        .unwrap();
    let out = db.query("SELECT k, count(*) FROM n GROUP BY k").unwrap();
    assert_eq!(out.len(), 2);
    let null_row = out.rows.iter().find(|r| r[0].is_null()).unwrap();
    assert_eq!(null_row[1], Value::Int(2));
}

#[test]
fn sum_promotes_to_float_when_mixed() {
    let mut db = Database::new();
    db.execute("CREATE TABLE n (v DOUBLE)").unwrap();
    db.execute("INSERT INTO n VALUES (1), (2.5)").unwrap();
    let out = db.query("SELECT sum(v) FROM n").unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Float(3.5));
}

#[test]
fn boolean_literals_and_string_compare() {
    let mut db = Database::new();
    db.execute("CREATE TABLE f (s TEXT, ok BOOL)").unwrap();
    db.execute("INSERT INTO f VALUES ('abc', true), ('abd', false)")
        .unwrap();
    let out = db
        .query("SELECT count(*) FROM f WHERE s < 'abd' AND ok = true")
        .unwrap();
    assert_eq!(out.scalar().unwrap(), &Value::Int(1));
}

#[test]
fn three_dimensional_similarity_grouping_in_sql() {
    let mut db = Database::new();
    db.execute("CREATE TABLE p3 (x DOUBLE, y DOUBLE, z DOUBLE)")
        .unwrap();
    db.execute(
        "INSERT INTO p3 VALUES \
         (0.0, 0.0, 0.0), (0.3, 0.3, 0.3), \
         (0.0, 0.0, 5.0), (0.3, 0.3, 5.3)",
    )
    .unwrap();
    let out = db
        .query("SELECT count(*) FROM p3 GROUP BY x, y, z DISTANCE-TO-ANY L2 WITHIN 1")
        .unwrap();
    assert_eq!(out.len(), 2);
    assert!(out.rows.iter().all(|r| r[0] == Value::Int(2)));
    // Collapsing z shows the third dimension mattered: 2-D grouping merges
    // everything.
    let out2d = db
        .query("SELECT count(*) FROM p3 GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        .unwrap();
    assert_eq!(out2d.len(), 1);
    // SGB-All in 3-D with all three overlap clauses runs too.
    for overlap in ["JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"] {
        let out = db
            .query(&format!(
                "SELECT count(*) FROM p3 GROUP BY x, y, z \
                 DISTANCE-TO-ALL LINF WITHIN 1 ON-OVERLAP {overlap}"
            ))
            .unwrap();
        assert_eq!(out.len(), 2, "{overlap}");
    }
}

#[test]
fn sgb_around_assigns_to_nearest_center() {
    let mut db = Database::new();
    db.execute("CREATE TABLE gps (lat DOUBLE, lon DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO gps VALUES (1.0, 1.0), (1.5, 0.5), (9.0, 9.0), (8.5, 9.5), (5.0, 5.0)")
        .unwrap();
    // No radius: everything joins a center group; (5, 5) ties exactly and
    // goes to the first center.
    let out = db
        .query("SELECT count(*) FROM gps GROUP BY lat, lon AROUND ((1, 1), (9, 9))")
        .unwrap();
    assert_eq!(ints(&out, 0), vec![3, 2]);
    // With a radius the midpoint becomes the trailing outlier group.
    let out = db
        .query("SELECT count(*) FROM gps GROUP BY lat, lon AROUND ((1, 1), (9, 9)) L2 WITHIN 2")
        .unwrap();
    assert_eq!(ints(&out, 0), vec![2, 2, 1]);
}

#[test]
fn sgb_around_composes_with_aggregates_and_having() {
    let mut db = Database::new();
    db.execute("CREATE TABLE sales (x DOUBLE, y DOUBLE, amount DOUBLE)")
        .unwrap();
    db.execute(
        "INSERT INTO sales VALUES \
         (0.1, 0.1, 10.0), (0.2, 0.0, 20.0), (5.1, 5.0, 7.0), (4.9, 5.2, 3.0), (0.0, 0.3, 5.0)",
    )
    .unwrap();
    let out = db
        .query(
            "SELECT count(*), sum(amount), avg(amount) FROM sales \
             GROUP BY x, y AROUND ((0, 0), (5, 5)) \
             HAVING sum(amount) > 15 ORDER BY count(*) DESC",
        )
        .unwrap();
    assert_eq!(out.len(), 1, "only the first center's group passes HAVING");
    assert_eq!(out.rows[0][0], Value::Int(3));
    assert_eq!(out.rows[0][1], Value::Int(35));
}

#[test]
fn sgb_around_explain_names_centers_metric_radius_and_path() {
    let mut db = Database::new();
    db.execute("CREATE TABLE gps (lat DOUBLE, lon DOUBLE)")
        .unwrap();
    let plan = db
        .explain(
            "SELECT count(*) FROM gps \
             GROUP BY lat, lon AROUND ((1, 1), (9, 9), (4, 4)) LINF WITHIN 2.5",
        )
        .unwrap();
    assert!(plan.contains("SimilarityAround"), "{plan}");
    assert!(plan.contains("3 centers"), "{plan}");
    assert!(plan.contains("LINF"), "{plan}");
    assert!(plan.contains("WITHIN 2.5"), "{plan}");
    // Default engine setting is Auto: 3 centers resolve to the brute
    // center scan, and EXPLAIN prints the resolved path plus the reason.
    assert!(plan.contains("path: AllPairs"), "{plan}");
    assert!(plan.contains("auto: 3 centers"), "{plan}");
    // An explicit setting shows up as such (resolved path + reason).
    db.session_mut().around_algorithm = sgb_core::Algorithm::Indexed;
    let plan = db
        .explain("SELECT count(*) FROM gps GROUP BY lat, lon AROUND ((1, 1))")
        .unwrap();
    assert!(plan.contains("path: Indexed"), "{plan}");
    assert!(plan.contains("pinned by session options"), "{plan}");
    assert!(!plan.contains("WITHIN"), "no radius → no WITHIN: {plan}");
    db.session_mut().around_algorithm = sgb_core::Algorithm::AllPairs;
    let plan = db
        .explain("SELECT count(*) FROM gps GROUP BY lat, lon AROUND ((1, 1))")
        .unwrap();
    assert!(plan.contains("path: AllPairs"), "{plan}");
}

#[test]
fn explain_prints_cost_based_resolution_for_all_and_any() {
    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    // Empty table: Auto resolves to the small-n scan, with the reason.
    let plan = db
        .explain("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5")
        .unwrap();
    assert!(plan.contains("path: AllPairs"), "{plan}");
    assert!(plan.contains("auto: n = 0"), "{plan}");
    // Grow the table past the threshold: the resolved path flips to the
    // grid — same SQL, cost-based plan.
    let rows: Vec<String> = (0..600).map(|i| format!("({}, {})", i, i % 7)).collect();
    db.execute(&format!("INSERT INTO pts VALUES {}", rows.join(", ")))
        .unwrap();
    let plan = db
        .explain("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5")
        .unwrap();
    assert!(plan.contains("path: Grid"), "{plan}");
    assert!(plan.contains("auto: n = 600"), "{plan}");
    let plan = db
        .explain("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.5")
        .unwrap();
    assert!(plan.contains("path: BoundsChecking"), "{plan}");
    assert!(plan.contains("auto: n = 600"), "{plan}");
    // Explicit settings print as configured.
    db.session_mut().all_algorithm = sgb_core::Algorithm::BoundsChecking;
    let plan = db
        .explain("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.5")
        .unwrap();
    assert!(plan.contains("path: BoundsChecking"), "{plan}");
    assert!(plan.contains("pinned by session options"), "{plan}");
}

#[test]
fn sgb_around_algorithm_choice_is_transparent() {
    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    let mut inserts = Vec::new();
    let mut state: u64 = 31;
    for _ in 0..200 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = ((state >> 33) % 1000) as f64 / 100.0;
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let y = ((state >> 33) % 1000) as f64 / 100.0;
        inserts.push(format!("({x}, {y})"));
    }
    db.execute(&format!("INSERT INTO pts VALUES {}", inserts.join(", ")))
        .unwrap();
    let sql = "SELECT count(*) FROM pts \
               GROUP BY x, y AROUND ((2, 2), (8, 2), (5, 8), (2.5, 2.5)) L1 WITHIN 3 \
               ORDER BY count(*) DESC";
    let indexed = db.query(sql).unwrap();
    db.session_mut().around_algorithm = sgb_core::Algorithm::AllPairs;
    let brute = db.query(sql).unwrap();
    assert_eq!(indexed.rows, brute.rows);
}

#[test]
fn sgb_around_after_join_in_one_pipeline() {
    let mut db = Database::new();
    db.execute("CREATE TABLE cities (id INT, x DOUBLE, y DOUBLE)")
        .unwrap();
    db.execute("CREATE TABLE visits (city_id INT, n INT)")
        .unwrap();
    db.execute("INSERT INTO cities VALUES (1, 0.0, 0.0), (2, 0.5, 0.5), (3, 9.0, 9.0)")
        .unwrap();
    db.execute("INSERT INTO visits VALUES (1, 10), (2, 20), (3, 5), (1, 1)")
        .unwrap();
    let out = db
        .query(
            "SELECT count(*), sum(n) FROM cities, visits \
             WHERE id = city_id \
             GROUP BY x, y AROUND ((0, 0), (9, 9))",
        )
        .unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(ints(&out, 1), vec![31, 5]);
}

#[test]
fn sgb_around_rejects_malformed_queries() {
    let mut db = Database::new();
    db.execute("CREATE TABLE gps (lat DOUBLE, lon DOUBLE)")
        .unwrap();
    for bad in [
        "SELECT count(*) FROM gps GROUP BY lat, lon AROUND ()",
        "SELECT count(*) FROM gps GROUP BY lat, lon AROUND ((1, 2, 3))",
        "SELECT count(*) FROM gps GROUP BY lat, lon AROUND ((1, 2), (1, 2))",
        "SELECT count(*) FROM gps GROUP BY lat, lon AROUND ((1, 2)) COSINE",
        "SELECT count(*) FROM gps GROUP BY lat, lon AROUND ((1, 2)) WITHIN -3",
        "SELECT lat FROM gps GROUP BY lat, lon AROUND ((1, 2))",
    ] {
        assert!(db.query(bad).is_err(), "must reject: {bad}");
    }
}

#[test]
fn programmatic_around_plan_with_bad_centers_errors_cleanly() {
    // The SQL parser rejects these earlier; a plan constructed by hand must
    // get an Err from the executor, not a process-aborting panic from the
    // core config asserts.
    use sgb_relation::exec::execute;
    use sgb_relation::{BoundExpr, Plan};

    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0, 2.0)").unwrap();
    let scan = Plan::Scan {
        table: "pts".into(),
        schema: Schema::new(["x", "y"]),
    };
    let around = |centers: Vec<Vec<f64>>, radius: Option<f64>| Plan::SimilarityAround {
        input: Box::new(scan.clone()),
        coords: vec![BoundExpr::Column(0), BoundExpr::Column(1)],
        centers,
        metric: sgb_core::Metric::L2,
        radius,
        algorithm: sgb_core::Algorithm::Indexed,
        threads: 1,
        selection: "hand-built".into(),
        index: sgb_relation::IndexCacheStatus::Built,
        snapshot: None,
        aggs: vec![],
        having: None,
        outputs: vec![],
        schema: Schema::new(Vec::<String>::new()),
    };
    for (plan, what) in [
        (around(vec![], None), "empty centers"),
        (around(vec![vec![f64::NAN, 0.0]], None), "NaN center"),
        (around(vec![vec![0.0]], None), "wrong arity"),
        (around(vec![vec![0.0, 0.0]], Some(-1.0)), "negative radius"),
        (
            around(vec![vec![0.0, 0.0]], Some(f64::INFINITY)),
            "infinite radius",
        ),
    ] {
        assert!(execute(&plan, &db).is_err(), "{what} must be an Err");
    }

    // The unified Algorithm enum makes BoundsChecking representable on
    // every node; hand-built plans carrying it for an operator that does
    // not implement it must error cleanly too (the planner rejects the
    // combination earlier on the SQL path).
    let mut bad_around = around(vec![vec![0.0, 0.0]], None);
    if let Plan::SimilarityAround { algorithm, .. } = &mut bad_around {
        *algorithm = sgb_core::Algorithm::BoundsChecking;
    }
    let err = execute(&bad_around, &db).unwrap_err();
    assert!(err.to_string().contains("BoundsChecking"), "got: {err}");

    let bad_any = Plan::SimilarityGroupBy {
        input: Box::new(scan.clone()),
        coords: vec![BoundExpr::Column(0), BoundExpr::Column(1)],
        mode: sgb_relation::SgbMode::Any {
            eps: 1.0,
            metric: sgb_core::Metric::L2,
            algorithm: sgb_core::Algorithm::BoundsChecking,
            threads: 1,
            selection: "hand-built".into(),
            index: sgb_relation::IndexCacheStatus::Built,
        },
        snapshot: None,
        aggs: vec![],
        having: None,
        outputs: vec![],
        schema: Schema::new(Vec::<String>::new()),
    };
    let err = execute(&bad_any, &db).unwrap_err();
    assert!(err.to_string().contains("BoundsChecking"), "got: {err}");
}

// -- DELETE + subscriptions ---------------------------------------------------

#[test]
fn delete_removes_matching_rows_end_to_end() {
    let mut db = db_with_people();
    db.execute("DELETE FROM people WHERE city = 'rome' AND age > 30")
        .unwrap();
    let out = db.query("SELECT id FROM people ORDER BY id").unwrap();
    assert_eq!(ints(&out, 0), vec![2, 4, 5]);
    // No predicate: empties the table but keeps the schema.
    db.execute("DELETE FROM people").unwrap();
    assert_eq!(db.query("SELECT * FROM people").unwrap().len(), 0);
    assert_eq!(db.table("people").unwrap().schema.len(), 4);
    // Unknown table and evaluation errors surface cleanly.
    assert!(db.execute("DELETE FROM nope").is_err());
    assert!(db.execute("DELETE FROM people WHERE nope = 1").is_err());
}

#[test]
fn delete_predicate_error_leaves_rows_untouched() {
    let mut db = db_with_people();
    // `age + name` type-errors on row 1 — the whole statement must fail
    // without removing anything (predicates evaluate before any mutation).
    assert!(db
        .execute("DELETE FROM people WHERE age + name > 0")
        .is_err());
    assert_eq!(db.query("SELECT * FROM people").unwrap().len(), 5);
}

#[test]
fn delete_bumps_version_and_invalidates_caches() {
    let mut db = Database::new();
    db.session_mut().any_algorithm = Algorithm::Indexed;
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0, 1.0), (2.0, 2.0), (9.0, 9.0)")
        .unwrap();
    let sql = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5";
    let before = db.table("pts").unwrap().version();
    db.execute(sql).unwrap();
    assert!(db.explain(sql).unwrap().contains("index: cached (hit)"));
    db.execute("DELETE FROM pts WHERE x > 5").unwrap();
    assert!(db.table("pts").unwrap().version() > before);
    // The cached index no longer applies — exactly as after an INSERT.
    assert!(db.explain(sql).unwrap().contains("index: built"));
    let out = db.execute(sql).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(ints(&out, 0), vec![2]);
    // A DELETE matching nothing keeps the version (nothing changed).
    let v = db.table("pts").unwrap().version();
    db.execute("DELETE FROM pts WHERE x > 100").unwrap();
    assert_eq!(db.table("pts").unwrap().version(), v);
}

#[test]
fn subscription_maintains_grouping_under_mixed_traffic() {
    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0, 1.0), (2.0, 2.0), (9.0, 9.0)")
        .unwrap();
    let sql = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5";
    let sub = db.subscribe(sql).unwrap();
    assert!(sub.is_active());
    assert_eq!(sub.snapshot().epoch(), 0);
    assert_eq!(sub.snapshot().grouping().sorted_sizes(), vec![2, 1]);

    // Insert a bridge point: {1,2} ∪ {3} via (2.9, 2.9)… still far from 9.
    db.execute("INSERT INTO pts VALUES (3.0, 3.0)").unwrap();
    assert_eq!(sub.snapshot().epoch(), 1);
    assert_eq!(sub.snapshot().grouping().sorted_sizes(), vec![3, 1]);

    // Delete the bridge: (1,1) and (3,3) are > 1.5 apart, so the merged
    // component splits into singletons.
    db.execute("DELETE FROM pts WHERE x = 2").unwrap();
    assert_eq!(sub.snapshot().epoch(), 2);
    assert_eq!(sub.snapshot().grouping().sorted_sizes(), vec![1, 1, 1]);

    // The published snapshot always matches a from-scratch SQL run.
    let direct = db.query(sql).unwrap();
    let counts: Vec<i64> = ints(&direct, 0);
    let mut sizes = sub.snapshot().grouping().sizes();
    sizes.sort_unstable();
    let mut direct_sizes: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
    direct_sizes.sort_unstable();
    assert_eq!(sizes, direct_sizes);

    // Snapshots are immutable: one taken before an edit never changes.
    let pinned = sub.snapshot();
    db.execute("INSERT INTO pts VALUES (50.0, 50.0)").unwrap();
    assert_eq!(pinned.epoch(), 2);
    assert_eq!(sub.snapshot().epoch(), 3);
}

#[test]
fn subscription_serves_identical_results_and_deactivates_on_drop() {
    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0, 1.0), (1.5, 1.2), (9.0, 9.0), (8.5, 8.8)")
        .unwrap();
    let sql = "SELECT count(*) FROM pts \
               GROUP BY x, y AROUND ((1, 1), (9, 9)) L2 WITHIN 2";
    let cold = db.query(sql).unwrap();
    let sub = db.subscribe(sql).unwrap();
    assert!(db.explain(sql).unwrap().contains("snapshot: subscription"));
    let served = db.query(sql).unwrap();
    assert_eq!(cold, served, "serving from the snapshot must be invisible");

    db.execute("DROP TABLE pts").unwrap();
    assert!(!sub.is_active());
    // The last snapshot stays readable after the drop.
    assert_eq!(sub.snapshot().grouping().num_groups(), 2);
}

#[test]
fn subscription_rejects_unsupported_shapes_and_disabled_sessions() {
    let mut db = db_with_people();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0, 1.0)").unwrap();
    for bad in [
        "SELECT id FROM people",             // no similarity clause
        "INSERT INTO pts VALUES (2.0, 2.0)", // not a SELECT
        "SELECT count(*) FROM pts WHERE x > 0 \
         GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1", // filtered input
        "SELECT count(*) FROM pts GROUP BY x, y \
         DISTANCE-TO-ANY L2 WITHIN 1 ORDER BY count(*)", // post-grouping sort
    ] {
        assert!(db.subscribe(bad).is_err(), "must reject: {bad}");
    }

    let mut gated =
        Database::with_options(sgb_relation::SessionOptions::new().with_subscriptions(false));
    gated
        .execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)")
        .unwrap();
    let err = gated
        .subscribe("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        .unwrap_err();
    assert!(err.to_string().contains("disabled"), "got: {err}");
}

#[test]
fn subscription_deactivates_on_bad_insert_but_keeps_last_snapshot() {
    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y TEXT)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0, '2.0')").unwrap();
    // The text column coerces… no: as_f64 on Str fails, so even the
    // initial build rejects non-numeric grouping attributes.
    assert!(db
        .subscribe("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        .is_err());

    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0, 1.0)").unwrap();
    let sub = db
        .subscribe("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        .unwrap();
    // A later insert with a non-numeric grouping attribute cannot be
    // applied as a delta: the subscription deactivates, the table keeps
    // the row, and the last snapshot stays readable.
    db.execute("INSERT INTO pts VALUES (2.0, 'oops')").unwrap();
    assert!(!sub.is_active());
    assert_eq!(sub.snapshot().epoch(), 0);
    assert_eq!(db.query("SELECT * FROM pts").unwrap().len(), 2);
    // Queries no longer serve from the stale snapshot (and now error on
    // the bad attribute, like any cold run would).
    assert!(!db
        .explain("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        .unwrap()
        .contains("snapshot:"));
}

// -- UPDATE -------------------------------------------------------------------

#[test]
fn update_rewrites_matching_rows_end_to_end() {
    let mut db = db_with_people();
    db.execute("UPDATE people SET age = age + 1 WHERE city = 'rome'")
        .unwrap();
    let out = db.query("SELECT id, age FROM people ORDER BY id").unwrap();
    assert_eq!(ints(&out, 1), vec![35, 28, 35, 51, 29]);
    // Executed as delete+insert: the rewritten rows move to the end of
    // the table, exactly as a manual DELETE + INSERT would place them.
    let scan = db.query("SELECT id FROM people").unwrap();
    assert_eq!(ints(&scan, 0), vec![2, 4, 1, 3, 5]);
    // No predicate: every row updates.
    db.execute("UPDATE people SET age = 0").unwrap();
    let all = db.query("SELECT sum(age) FROM people").unwrap();
    assert_eq!(ints(&all, 0), vec![0]);
    // Unknown table / column errors surface cleanly.
    assert!(db.execute("UPDATE nope SET age = 1").is_err());
    assert!(db.execute("UPDATE people SET nope = 1").is_err());
    assert!(db
        .execute("UPDATE people SET age = 1 WHERE nope = 2")
        .is_err());
}

#[test]
fn update_rhs_sees_the_old_row() {
    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0, 9.0)").unwrap();
    // Both right-hand sides evaluate against the pre-update row, so this
    // swaps instead of cascading x into y.
    db.execute("UPDATE pts SET x = y, y = x").unwrap();
    let out = db.query("SELECT x, y FROM pts").unwrap();
    assert_eq!(out.rows[0][0].as_f64().unwrap(), 9.0);
    assert_eq!(out.rows[0][1].as_f64().unwrap(), 1.0);
}

#[test]
fn update_error_leaves_rows_untouched() {
    let mut db = db_with_people();
    let before = db.table("people").unwrap().version();
    // `age + name` type-errors on the first row — the whole statement
    // fails without rewriting anything (replacements evaluate before any
    // mutation, like INSERT and DELETE).
    assert!(db.execute("UPDATE people SET age = age + name").is_err());
    assert!(db
        .execute("UPDATE people SET age = 1 WHERE age + name > 0")
        .is_err());
    let out = db.query("SELECT id, age FROM people ORDER BY id").unwrap();
    assert_eq!(ints(&out, 1), vec![34, 28, 34, 51, 28]);
    assert_eq!(db.table("people").unwrap().version(), before);
}

#[test]
fn update_bumps_version_and_invalidates_caches() {
    let mut db = Database::new();
    db.session_mut().any_algorithm = Algorithm::Indexed;
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0, 1.0), (2.0, 2.0), (9.0, 9.0)")
        .unwrap();
    let sql = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5";
    let first = db.execute(sql).unwrap();
    assert_eq!(first.len(), 2);
    assert!(db.explain(sql).unwrap().contains("index: cached (hit)"));
    // Moving the far point next to the pair must recompute, not serve the
    // stale cached result or index.
    db.execute("UPDATE pts SET x = 3.0, y = 3.0 WHERE x = 9.0")
        .unwrap();
    assert!(db.explain(sql).unwrap().contains("index: built"));
    let out = db.execute(sql).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(ints(&out, 0), vec![3]);
    // An UPDATE matching nothing keeps the version (nothing changed).
    let v = db.table("pts").unwrap().version();
    db.execute("UPDATE pts SET x = 0.0 WHERE x > 100").unwrap();
    assert_eq!(db.table("pts").unwrap().version(), v);
}

#[test]
fn update_flows_through_subscriptions_as_delete_plus_insert() {
    let mut db = Database::new();
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0, 1.0), (1.5, 1.5), (9.0, 9.0)")
        .unwrap();
    let sub = db
        .subscribe("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        .unwrap();
    assert_eq!(sub.snapshot().grouping().num_groups(), 2);
    let epoch = sub.snapshot().epoch();
    // The UPDATE reaches the maintained grouping as a delete batch plus
    // an insert batch: the far point joins the near pair.
    db.execute("UPDATE pts SET x = 2.0, y = 2.0 WHERE x = 9.0")
        .unwrap();
    let snap = sub.snapshot();
    assert!(snap.epoch() > epoch, "epoch must advance across an UPDATE");
    assert_eq!(snap.grouping().num_groups(), 1);
    assert!(sub.is_active());
    // Similarity queries can serve straight from the refreshed snapshot.
    let out = db
        .execute("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        .unwrap();
    assert_eq!(ints(&out, 0), vec![3]);
}
