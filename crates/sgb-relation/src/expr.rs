//! Bound (executable) expressions.
//!
//! The SQL parser produces name-based ASTs (`crate::sql::ast::Expr`); the
//! planner *binds* them against an input schema, resolving column references
//! to positions and materialising uncorrelated `IN (SELECT …)` subqueries
//! into hash sets. The result is a [`BoundExpr`] evaluable against a row.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::Value;

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// `true` for `= <> < <= > >=`.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// The SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql())
    }
}

/// An expression bound to a concrete input row layout.
#[derive(Clone, Debug)]
pub enum BoundExpr {
    /// Constant.
    Literal(Value),
    /// Input column by position.
    Column(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Arithmetic negation.
    Neg(Box<BoundExpr>),
    /// Logical negation (three-valued).
    Not(Box<BoundExpr>),
    /// `expr [NOT] IN (set)` — the set comes from a list literal or a
    /// materialised uncorrelated subquery.
    InSet {
        /// Probe expression.
        expr: Box<BoundExpr>,
        /// Materialised membership set (shared: subqueries run once).
        set: Arc<HashSet<Value>>,
        /// `NOT IN` when true.
        negated: bool,
    },
}

impl BoundExpr {
    /// Evaluates against a row.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| Error::Eval(format!("column index {i} out of bounds"))),
            BoundExpr::Binary { op, left, right } => {
                // Short-circuit three-valued AND/OR.
                match op {
                    BinOp::And => {
                        let l = left.eval(row)?.as_bool();
                        if l == Some(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = right.eval(row)?.as_bool();
                        return Ok(match (l, r) {
                            (_, Some(false)) => Value::Bool(false),
                            (Some(true), Some(true)) => Value::Bool(true),
                            _ => Value::Null,
                        });
                    }
                    BinOp::Or => {
                        let l = left.eval(row)?.as_bool();
                        if l == Some(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = right.eval(row)?.as_bool();
                        return Ok(match (l, r) {
                            (_, Some(true)) => Value::Bool(true),
                            (Some(false), Some(false)) => Value::Bool(false),
                            _ => Value::Null,
                        });
                    }
                    _ => {}
                }
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                match op {
                    BinOp::Add => l.arith('+', &r),
                    BinOp::Sub => l.arith('-', &r),
                    BinOp::Mul => l.arith('*', &r),
                    BinOp::Div => l.arith('/', &r),
                    cmp => {
                        if l.is_null() || r.is_null() {
                            return Ok(Value::Null);
                        }
                        let ord = l.cmp_non_null(&r);
                        let out = match cmp {
                            BinOp::Eq => ord == std::cmp::Ordering::Equal,
                            BinOp::Ne => ord != std::cmp::Ordering::Equal,
                            BinOp::Lt => ord == std::cmp::Ordering::Less,
                            BinOp::Le => ord != std::cmp::Ordering::Greater,
                            BinOp::Gt => ord == std::cmp::Ordering::Greater,
                            BinOp::Ge => ord != std::cmp::Ordering::Less,
                            _ => unreachable!(),
                        };
                        Ok(Value::Bool(out))
                    }
                }
            }
            BoundExpr::Neg(inner) => {
                let v = inner.eval(row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(Error::Eval(format!("cannot negate {other}"))),
                }
            }
            BoundExpr::Not(inner) => Ok(match inner.eval(row)?.as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            }),
            BoundExpr::InSet { expr, set, negated } => {
                let probe = expr.eval(row)?;
                if probe.is_null() {
                    return Ok(Value::Null);
                }
                let hit = set.contains(&probe);
                Ok(Value::Bool(hit != *negated))
            }
        }
    }

    /// Evaluates as a predicate: `true` only for a definite SQL TRUE
    /// (NULL filters out, per WHERE semantics).
    pub fn eval_predicate(&self, row: &[Value]) -> Result<bool> {
        Ok(self.eval(row)?.as_bool() == Some(true))
    }

    /// Collects the input column indices this expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Literal(_) => {}
            BoundExpr::Column(i) => out.push(*i),
            BoundExpr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            BoundExpr::Neg(e) | BoundExpr::Not(e) => e.referenced_columns(out),
            BoundExpr::InSet { expr, .. } => expr.referenced_columns(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column(i)
    }

    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic_over_row() {
        let row = vec![Value::Int(10), Value::Float(2.5)];
        let e = bin(BinOp::Mul, col(0), bin(BinOp::Add, col(1), lit(0.5)));
        assert_eq!(e.eval(&row).unwrap(), Value::Float(30.0));
    }

    #[test]
    fn comparisons_and_null() {
        let row = vec![Value::Int(5), Value::Null];
        assert_eq!(
            bin(BinOp::Gt, col(0), lit(3i64)).eval(&row).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(BinOp::Eq, col(0), col(1)).eval(&row).unwrap(),
            Value::Null
        );
        assert!(!bin(BinOp::Eq, col(0), col(1)).eval_predicate(&row).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let row = vec![Value::Null];
        let null_cmp = bin(BinOp::Eq, col(0), lit(1i64)); // NULL
                                                          // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
        assert_eq!(
            bin(BinOp::And, null_cmp.clone(), lit(false))
                .eval(&row)
                .unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            bin(BinOp::Or, null_cmp.clone(), lit(true))
                .eval(&row)
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(BinOp::And, null_cmp.clone(), lit(true))
                .eval(&row)
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            BoundExpr::Not(Box::new(null_cmp)).eval(&row).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn short_circuit_skips_errors() {
        // FALSE AND (1/0 = 1) must not error.
        let explode = bin(BinOp::Eq, bin(BinOp::Div, lit(1i64), lit(0i64)), lit(1i64));
        let e = bin(BinOp::And, lit(false), explode);
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn in_set_membership() {
        let set: HashSet<Value> = [Value::Int(1), Value::Int(3)].into_iter().collect();
        let set = Arc::new(set);
        let e = BoundExpr::InSet {
            expr: Box::new(col(0)),
            set: set.clone(),
            negated: false,
        };
        assert_eq!(e.eval(&[Value::Int(3)]).unwrap(), Value::Bool(true));
        assert_eq!(e.eval(&[Value::Int(2)]).unwrap(), Value::Bool(false));
        assert_eq!(e.eval(&[Value::Null]).unwrap(), Value::Null);
        let not_in = BoundExpr::InSet {
            expr: Box::new(col(0)),
            set,
            negated: true,
        };
        assert_eq!(not_in.eval(&[Value::Int(2)]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn negation() {
        assert_eq!(
            BoundExpr::Neg(Box::new(lit(3i64))).eval(&[]).unwrap(),
            Value::Int(-3)
        );
        assert_eq!(
            BoundExpr::Neg(Box::new(lit(2.5))).eval(&[]).unwrap(),
            Value::Float(-2.5)
        );
        assert!(BoundExpr::Neg(Box::new(lit("x"))).eval(&[]).is_err());
    }

    #[test]
    fn referenced_columns_collects_all() {
        let e = bin(BinOp::Add, col(2), bin(BinOp::Mul, col(0), col(2)));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols, vec![0, 2]);
    }
}
