//! Plan executor: materialises a [`Plan`] tree bottom-up.
//!
//! Every statement executes under a [`QueryGovernor`] built from the
//! session options (`Database::statement_governor`): the
//! similarity operators run through the core's governed `try_run` /
//! `try_run_cached` entry points, so a statement that overruns its
//! deadline, gets cancelled, or exceeds the memory budget fails with
//! [`Error::Aborted`] — and fails *cleanly*: no partial grouping enters
//! the session caches, and the database stays fully usable.
#![deny(clippy::unwrap_used)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

use sgb_core::query::Grouping;
use sgb_core::{Algorithm, QueryGovernor, SgbQuery};
use sgb_geom::{Metric, Point};
use sgb_telemetry::{Counter, Phase, Telemetry};

use crate::cache::{slot_key, Slot};
use crate::engine::Database;
use crate::error::{Error, Result};
use crate::expr::BoundExpr;
use crate::plan::{AggCall, AggKind, NodeStat, Plan, SgbMode};
use crate::subscription::QueryKey;
use crate::table::{Row, Table};
use crate::value::Value;

/// Executes `plan` against the database catalog, under a statement
/// governor drawn from the session options (deadline, memory budget,
/// session cancel token).
pub fn execute(plan: &Plan, db: &Database) -> Result<Table> {
    let governor = db.statement_governor();
    execute_governed(plan, db, &governor)
}

/// [`execute`] under an explicit governor; one governor (and thus one
/// deadline) spans the whole plan tree.
pub(crate) fn execute_governed(
    plan: &Plan,
    db: &Database,
    governor: &QueryGovernor,
) -> Result<Table> {
    execute_node(plan, db, governor, 0, None)
}

/// `EXPLAIN ANALYZE` entry point: executes `plan` with per-node actuals
/// collection. The returned stats are indexed in pre-order (node 0 is the
/// root; a join's left subtree precedes its right), matching
/// [`Plan::explain_analyze`]'s walk. Only this instrumented path pays for
/// clock reads and per-query telemetry; plain [`execute`] passes `None`
/// sinks throughout and stays on the zero-cost path.
pub(crate) fn execute_with_stats(
    plan: &Plan,
    db: &Database,
    governor: &QueryGovernor,
) -> Result<(Table, Vec<NodeStat>)> {
    let stats = RefCell::new(vec![NodeStat::default(); plan.node_count()]);
    let table = execute_node(plan, db, governor, 0, Some(&stats))?;
    Ok((table, stats.into_inner()))
}

/// The recursive worker: executes one node (and its inputs), recording
/// inclusive elapsed time and output cardinality into `stats[id]` when a
/// sink is present. `id` is the node's pre-order index within the root
/// plan.
fn execute_node(
    plan: &Plan,
    db: &Database,
    governor: &QueryGovernor,
    id: usize,
    stats: Option<&RefCell<Vec<NodeStat>>>,
) -> Result<Table> {
    let started = stats.map(|_| Instant::now());
    let out = execute_inner(plan, db, governor, id, stats)?;
    if let (Some(stats), Some(started)) = (stats, started) {
        let stat = &mut stats.borrow_mut()[id];
        stat.elapsed_nanos = started.elapsed().as_nanos() as u64;
        stat.rows = out.rows.len();
    }
    Ok(out)
}

fn execute_inner(
    plan: &Plan,
    db: &Database,
    governor: &QueryGovernor,
    id: usize,
    stats: Option<&RefCell<Vec<NodeStat>>>,
) -> Result<Table> {
    let execute = |plan: &Plan, child_id: usize| execute_node(plan, db, governor, child_id, stats);
    match plan {
        Plan::Scan { table, .. } => {
            let t = db.table(table)?;
            Ok(Table::from_parts(plan.schema().clone(), t.rows.clone()))
        }
        Plan::Filter { input, predicate } => {
            let mut t = execute(input, id + 1)?;
            let mut kept = Vec::with_capacity(t.rows.len());
            for row in t.rows.drain(..) {
                if predicate.eval_predicate(&row)? {
                    kept.push(row);
                }
            }
            t.rows = kept;
            Ok(t)
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            let t = execute(input, id + 1)?;
            let mut rows = Vec::with_capacity(t.rows.len());
            for row in &t.rows {
                let mut out = Vec::with_capacity(exprs.len());
                for e in exprs {
                    out.push(e.eval(row)?);
                }
                rows.push(out);
            }
            Ok(Table::from_parts(schema.clone(), rows))
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            schema,
        } => {
            let l = execute(left, id + 1)?;
            let r = execute(right, id + 1 + left.node_count())?;
            // Build on the right input.
            let mut build: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            'rows: for (i, row) in r.rows.iter().enumerate() {
                let mut key = Vec::with_capacity(right_keys.len());
                for k in right_keys {
                    let v = k.eval(row)?;
                    if v.is_null() {
                        continue 'rows; // NULL keys never join
                    }
                    key.push(v);
                }
                build.entry(key).or_default().push(i);
            }
            let mut rows = Vec::new();
            'probe: for lrow in &l.rows {
                let mut key = Vec::with_capacity(left_keys.len());
                for k in left_keys {
                    let v = k.eval(lrow)?;
                    if v.is_null() {
                        continue 'probe;
                    }
                    key.push(v);
                }
                if let Some(matches) = build.get(&key) {
                    for &ri in matches {
                        let mut out = lrow.clone();
                        out.extend(r.rows[ri].iter().cloned());
                        rows.push(out);
                    }
                }
            }
            Ok(Table::from_parts(schema.clone(), rows))
        }
        Plan::CrossJoin {
            left,
            right,
            schema,
        } => {
            let l = execute(left, id + 1)?;
            let r = execute(right, id + 1 + left.node_count())?;
            let mut rows = Vec::with_capacity(l.rows.len() * r.rows.len());
            for lrow in &l.rows {
                for rrow in &r.rows {
                    let mut out = lrow.clone();
                    out.extend(rrow.iter().cloned());
                    rows.push(out);
                }
            }
            Ok(Table::from_parts(schema.clone(), rows))
        }
        Plan::HashAggregate {
            input,
            group_exprs,
            aggs,
            having,
            outputs,
            schema,
        } => {
            let t = execute(input, id + 1)?;
            // First-seen group order (like PostgreSQL's hash agg output is
            // unordered, but determinism helps tests).
            let mut order: Vec<Vec<Value>> = Vec::new();
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            let mut states: Vec<Vec<AggState>> = Vec::new();
            for row in &t.rows {
                let mut key = Vec::with_capacity(group_exprs.len());
                for g in group_exprs {
                    key.push(g.eval(row)?);
                }
                let slot = match index.get(&key) {
                    Some(&s) => s,
                    None => {
                        index.insert(key.clone(), states.len());
                        order.push(key);
                        states.push(aggs.iter().map(AggState::new).collect());
                        states.len() - 1
                    }
                };
                for (st, call) in states[slot].iter_mut().zip(aggs) {
                    st.update(call, row)?;
                }
            }
            // Global aggregation over empty input still yields one row.
            if group_exprs.is_empty() && states.is_empty() {
                order.push(Vec::new());
                states.push(aggs.iter().map(AggState::new).collect());
            }
            let mut rows = Vec::with_capacity(states.len());
            for (key, st) in order.into_iter().zip(states) {
                let mut internal = key;
                internal.extend(st.into_iter().map(AggState::finish));
                if let Some(h) = having {
                    if !h.eval_predicate(&internal)? {
                        continue;
                    }
                }
                let mut out = Vec::with_capacity(outputs.len());
                for e in outputs {
                    out.push(e.eval(&internal)?);
                }
                rows.push(out);
            }
            Ok(Table::from_parts(schema.clone(), rows))
        }
        Plan::SimilarityGroupBy {
            input,
            coords,
            mode,
            aggs,
            having,
            outputs,
            schema,
            ..
        } => {
            let t = execute(input, id + 1)?;
            // Per-query profile only when an EXPLAIN ANALYZE sink exists:
            // plain execution keeps the inert handle (zero clock reads).
            let tel = if stats.is_some() {
                Telemetry::new()
            } else {
                Telemetry::off()
            };
            let (op, algorithm) = match mode {
                SgbMode::All { algorithm, .. } => ("sgb_all", *algorithm),
                SgbMode::Any { algorithm, .. } => ("sgb_any", *algorithm),
            };
            db.registry().inc(
                "sgb_operator_runs_total",
                &[("operator", op), ("algorithm", &algorithm.to_string())],
                1,
            );
            // Serve from a fresh subscription snapshot when one matches;
            // otherwise route through the session's shared-work cache when
            // the node reads a base table directly — only then does the
            // table's version counter describe the operator's actual input.
            let served = subscription_grouping(db, input, coords, &QueryKey::from_sgb_mode(mode));
            let grouping = match served {
                Some(g) => g,
                None => match cached_scan_table(db, input) {
                    Some(table) => {
                        run_sgb_cached(db, &table, &t.rows, coords, mode, governor, &tel)?
                    }
                    None => run_sgb(&t.rows, coords, mode, governor, &tel)?,
                },
            };
            let out = {
                let _agg = tel.phase(Phase::Aggregate);
                aggregate_grouping(&t, &grouping, aggs, having, outputs, schema)
            };
            if let Some(stats) = stats {
                stats.borrow_mut()[id].detail = similarity_detail(&grouping, &tel);
            }
            out
        }
        Plan::SimilarityAround {
            input,
            coords,
            centers,
            metric,
            radius,
            algorithm,
            threads,
            aggs,
            having,
            outputs,
            schema,
            ..
        } => {
            let t = execute(input, id + 1)?;
            let tel = if stats.is_some() {
                Telemetry::new()
            } else {
                Telemetry::off()
            };
            db.registry().inc(
                "sgb_operator_runs_total",
                &[
                    ("operator", "around"),
                    ("algorithm", &algorithm.to_string()),
                ],
                1,
            );
            let served = subscription_grouping(
                db,
                input,
                coords,
                &QueryKey::around(centers, *metric, *radius),
            );
            let grouping = match served {
                Some(g) => g,
                None => match cached_scan_table(db, input) {
                    Some(table) => run_around_cached(
                        db, &table, &t.rows, coords, centers, *metric, *radius, *algorithm,
                        *threads, governor, &tel,
                    )?,
                    None => run_around(
                        &t.rows, coords, centers, *metric, *radius, *algorithm, *threads, governor,
                        &tel,
                    )?,
                },
            };
            let out = {
                let _agg = tel.phase(Phase::Aggregate);
                aggregate_grouping(&t, &grouping, aggs, having, outputs, schema)
            };
            if let Some(stats) = stats {
                stats.borrow_mut()[id].detail = similarity_detail(&grouping, &tel);
            }
            out
        }
        Plan::Sort { input, keys } => {
            let mut t = execute(input, id + 1)?;
            // Pre-compute sort keys (decorate-sort-undecorate).
            let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(t.rows.len());
            for row in t.rows.drain(..) {
                let mut ks = Vec::with_capacity(keys.len());
                for (e, _) in keys {
                    ks.push(e.eval(&row)?);
                }
                decorated.push((ks, row));
            }
            decorated.sort_by(|(a, _), (b, _)| {
                for ((x, y), (_, desc)) in a.iter().zip(b.iter()).zip(keys) {
                    let ord = match (x.is_null(), y.is_null()) {
                        (true, true) => std::cmp::Ordering::Equal,
                        (true, false) => std::cmp::Ordering::Less,
                        (false, true) => std::cmp::Ordering::Greater,
                        (false, false) => x.cmp_non_null(y),
                    };
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            t.rows = decorated.into_iter().map(|(_, r)| r).collect();
            Ok(t)
        }
        Plan::Limit { input, n } => {
            let mut t = execute(input, id + 1)?;
            t.rows.truncate(*n);
            Ok(t)
        }
    }
}

/// Aggregates the rows of each answer group into one output row, applying
/// HAVING and the output expressions over the internal `[aggregates…]`
/// layout — shared by the similarity group-by plan nodes. The iteration
/// uses the relational output shape ([`Grouping::output_groups`]): answer
/// groups first, then — for radius-bounded AROUND — the outlier group.
fn aggregate_grouping(
    t: &Table,
    grouping: &Grouping,
    aggs: &[AggCall],
    having: &Option<BoundExpr>,
    outputs: &[BoundExpr],
    schema: &crate::schema::Schema,
) -> Result<Table> {
    let mut rows = Vec::with_capacity(grouping.num_groups() + 1);
    for members in grouping.output_groups() {
        let mut st: Vec<AggState> = aggs.iter().map(AggState::new).collect();
        for &r in members {
            for (s, call) in st.iter_mut().zip(aggs) {
                s.update(call, &t.rows[r])?;
            }
        }
        let internal: Row = st.into_iter().map(AggState::finish).collect();
        if let Some(h) = having {
            if !h.eval_predicate(&internal)? {
                continue;
            }
        }
        let mut out = Vec::with_capacity(outputs.len());
        for e in outputs {
            out.push(e.eval(&internal)?);
        }
        rows.push(out);
    }
    Ok(Table::from_parts(schema.clone(), rows))
}

/// The `EXPLAIN ANALYZE` detail line of a similarity node: answer-group
/// and outlier cardinality, the candidate-pair count the filter phase
/// visited, and the phase breakdown of the query profile. Snapshot-served
/// groupings carry no live profile — the detail then reports cardinality
/// only, which is exactly what was (not) computed.
fn similarity_detail(grouping: &Grouping, tel: &Telemetry) -> String {
    let mut d = format!("groups: {}", grouping.num_groups());
    let outliers = grouping.outliers().len();
    if outliers > 0 {
        d.push_str(&format!(", outliers: {outliers}"));
    }
    if let Some(profile) = tel.profile() {
        let candidates = profile.counter(Counter::CandidatePairs);
        if candidates > 0 {
            d.push_str(&format!(", candidates: {candidates}"));
        }
        let phases = profile.phase_summary();
        if !phases.is_empty() {
            d.push_str(&format!("; phases: {phases}"));
        }
    }
    d
}

/// The grouping served from a fresh subscription snapshot, when one
/// matches the node: the node reads a base table directly, an active
/// subscription over it has the same grouping attributes and
/// result-relevant operator parameters, and its published snapshot
/// reflects the table's current version. Freshness is re-checked here at
/// execution time, so serving is always consistent with what a recompute
/// would produce.
fn subscription_grouping(
    db: &Database,
    input: &Plan,
    coords: &[BoundExpr],
    key: &QueryKey,
) -> Option<Grouping> {
    let table = match input {
        Plan::Scan { table, .. } if !table.is_empty() => table.to_ascii_lowercase(),
        _ => return None,
    };
    let version = db.table(&table).ok()?.version();
    db.subscriptions()
        .serve(&table, &slot_key(coords), key, version)
}

/// The table a similarity node's cache slot is scoped to, when caching
/// applies: the session cache is on and the node's input is a bare
/// catalog scan (the planner's pushdown briefly uses empty-named `Scan`
/// placeholders; those never qualify). Lower-cased, matching the catalog.
fn cached_scan_table(db: &Database, input: &Plan) -> Option<String> {
    if !db.session().cache {
        return None;
    }
    match input {
        Plan::Scan { table, .. } if !table.is_empty() => Some(table.to_ascii_lowercase()),
        _ => None,
    }
}

/// Extracts the 2-D or 3-D grouping points of every row (the paper's "two
/// and three dimensional data space").
pub(crate) fn extract_points<const D: usize>(
    rows: &[Row],
    coords: &[BoundExpr],
) -> Result<Vec<Point<D>>> {
    debug_assert_eq!(coords.len(), D);
    let mut points: Vec<Point<D>> = Vec::with_capacity(rows.len());
    for row in rows {
        let mut c = [0.0f64; D];
        for (d, expr) in coords.iter().enumerate() {
            let v = expr.eval(row)?;
            let Some(f) = v.as_f64() else {
                return Err(Error::Eval(format!(
                    "similarity grouping attributes must be numeric and non-null, got {v}"
                )));
            };
            if !f.is_finite() {
                return Err(Error::Eval(
                    "similarity grouping attributes must be finite".into(),
                ));
            }
            c[d] = f;
        }
        points.push(Point::new(c));
    }
    Ok(points)
}

/// Runs the configured SGB-All / SGB-Any operator over the grouping points.
fn run_sgb(
    rows: &[Row],
    coords: &[BoundExpr],
    mode: &SgbMode,
    governor: &QueryGovernor,
    telemetry: &Telemetry,
) -> Result<Grouping> {
    match coords.len() {
        2 => run_sgb_d::<2>(rows, coords, mode, governor, telemetry),
        3 => run_sgb_d::<3>(rows, coords, mode, governor, telemetry),
        n => Err(Error::Unsupported(format!(
            "similarity grouping over {n} attributes (2 or 3 supported)"
        ))),
    }
}

fn run_sgb_d<const D: usize>(
    rows: &[Row],
    coords: &[BoundExpr],
    mode: &SgbMode,
    governor: &QueryGovernor,
    telemetry: &Telemetry,
) -> Result<Grouping> {
    let points = extract_points::<D>(rows, coords)?;
    Ok(sgb_query::<D>(mode)?
        .telemetry(telemetry.clone())
        .try_run(&points, governor)?)
}

/// Lowers a plan's SGB-All / SGB-Any mode into the core query. The plan's
/// algorithm is already resolved (never `Auto`), so the query's own cost
/// model passes it through unchanged.
pub(crate) fn sgb_query<const D: usize>(mode: &SgbMode) -> Result<SgbQuery<D>> {
    Ok(match mode {
        SgbMode::All {
            eps,
            metric,
            overlap,
            algorithm,
            seed,
            ..
        } => SgbQuery::all(*eps)
            .metric(*metric)
            .overlap(*overlap)
            .algorithm(*algorithm)
            .seed(*seed),
        SgbMode::Any {
            eps,
            metric,
            algorithm,
            threads,
            ..
        } => {
            // The planner only emits algorithms the operator implements;
            // a hand-built plan must get an Err, not the builder's panic.
            if algorithm.for_any().is_none() {
                return Err(Error::Eval(format!(
                    "{algorithm} is not an execution path of DISTANCE-TO-ANY"
                )));
            }
            SgbQuery::any(*eps)
                .metric(*metric)
                .algorithm(*algorithm)
                .threads(*threads)
        }
    })
}

/// [`run_sgb`] through the session's shared-work cache: the slot supplies
/// the extracted points of the current table version (skipping the
/// O(n·d) conversion-and-validation pass on repeats), the cached spatial
/// indexes, and whole results of exact repeat queries. Bit-identical to
/// the cold path.
#[allow(clippy::too_many_arguments)]
fn run_sgb_cached(
    db: &Database,
    table: &str,
    rows: &[Row],
    coords: &[BoundExpr],
    mode: &SgbMode,
    governor: &QueryGovernor,
    telemetry: &Telemetry,
) -> Result<Grouping> {
    let key = slot_key(coords);
    match coords.len() {
        2 => {
            let slot = db.caches().slot2(table, &key);
            run_sgb_cached_d::<2>(db, table, rows, coords, mode, &slot, governor, telemetry)
        }
        3 => {
            let slot = db.caches().slot3(table, &key);
            run_sgb_cached_d::<3>(db, table, rows, coords, mode, &slot, governor, telemetry)
        }
        n => Err(Error::Unsupported(format!(
            "similarity grouping over {n} attributes (2 or 3 supported)"
        ))),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_sgb_cached_d<const D: usize>(
    db: &Database,
    table: &str,
    rows: &[Row],
    coords: &[BoundExpr],
    mode: &SgbMode,
    slot: &Slot<D>,
    governor: &QueryGovernor,
    telemetry: &Telemetry,
) -> Result<Grouping> {
    let version = db.table(table)?.version();
    let points = slot.points_for(version, || extract_points::<D>(rows, coords))?;
    Ok(sgb_query::<D>(mode)?
        .telemetry(telemetry.clone())
        .try_run_cached(&points, slot.core(), version, governor)?)
}

/// Runs SGB-Around over the grouping points: every row joins the group of
/// its nearest center; rows beyond `radius` (when set) form the trailing
/// outlier group.
#[allow(clippy::too_many_arguments)]
fn run_around(
    rows: &[Row],
    coords: &[BoundExpr],
    centers: &[Vec<f64>],
    metric: Metric,
    radius: Option<f64>,
    algorithm: Algorithm,
    threads: usize,
    governor: &QueryGovernor,
    telemetry: &Telemetry,
) -> Result<Grouping> {
    match coords.len() {
        2 => run_around_d::<2>(
            rows, coords, centers, metric, radius, algorithm, threads, governor, telemetry,
        ),
        3 => run_around_d::<3>(
            rows, coords, centers, metric, radius, algorithm, threads, governor, telemetry,
        ),
        n => Err(Error::Unsupported(format!(
            "similarity grouping over {n} attributes (2 or 3 supported)"
        ))),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_around_d<const D: usize>(
    rows: &[Row],
    coords: &[BoundExpr],
    centers: &[Vec<f64>],
    metric: Metric,
    radius: Option<f64>,
    algorithm: Algorithm,
    threads: usize,
    governor: &QueryGovernor,
    telemetry: &Telemetry,
) -> Result<Grouping> {
    let points = extract_points::<D>(rows, coords)?;
    Ok(
        around_query::<D>(centers, metric, radius, algorithm, threads)?
            .telemetry(telemetry.clone())
            .try_run(&points, governor)?,
    )
}

/// Lowers a plan's AROUND parameters into the core query.
pub(crate) fn around_query<const D: usize>(
    centers: &[Vec<f64>],
    metric: Metric,
    radius: Option<f64>,
    algorithm: Algorithm,
    threads: usize,
) -> Result<SgbQuery<D>> {
    // The parser guarantees a non-empty list of finite, correctly-sized
    // centers and a valid radius; keep defensive errors for plans built
    // programmatically (the core config asserts on these and would abort).
    if centers.is_empty() {
        return Err(Error::Eval("AROUND requires at least one center".into()));
    }
    let mut center_points: Vec<Point<D>> = Vec::with_capacity(centers.len());
    for c in centers {
        let arr: [f64; D] = c.as_slice().try_into().map_err(|_| {
            Error::Eval(format!(
                "AROUND center has {} coordinate(s), expected {D}",
                c.len()
            ))
        })?;
        if !arr.iter().all(|v| v.is_finite()) {
            return Err(Error::Eval(
                "AROUND center coordinates must be finite".into(),
            ));
        }
        center_points.push(Point::new(arr));
    }
    if algorithm.for_around().is_none() {
        return Err(Error::Eval(format!(
            "{algorithm} is not an execution path of AROUND"
        )));
    }
    let mut query = SgbQuery::around(center_points)
        .metric(metric)
        .algorithm(algorithm)
        .threads(threads);
    if let Some(r) = radius {
        if !r.is_finite() || r < 0.0 {
            return Err(Error::Eval(format!(
                "AROUND radius must be finite and >= 0, got {r}"
            )));
        }
        query = query.max_radius(r);
    }
    Ok(query)
}

/// [`run_around`] through the session's shared-work cache; see
/// [`run_sgb_cached`]. The center index additionally survives table
/// mutations — it is built from the query's centers, never the table.
#[allow(clippy::too_many_arguments)]
fn run_around_cached(
    db: &Database,
    table: &str,
    rows: &[Row],
    coords: &[BoundExpr],
    centers: &[Vec<f64>],
    metric: Metric,
    radius: Option<f64>,
    algorithm: Algorithm,
    threads: usize,
    governor: &QueryGovernor,
    telemetry: &Telemetry,
) -> Result<Grouping> {
    let key = slot_key(coords);
    match coords.len() {
        2 => {
            let slot = db.caches().slot2(table, &key);
            let version = db.table(table)?.version();
            let points = slot.points_for(version, || extract_points::<2>(rows, coords))?;
            Ok(
                around_query::<2>(centers, metric, radius, algorithm, threads)?
                    .telemetry(telemetry.clone())
                    .try_run_cached(&points, slot.core(), version, governor)?,
            )
        }
        3 => {
            let slot = db.caches().slot3(table, &key);
            let version = db.table(table)?.version();
            let points = slot.points_for(version, || extract_points::<3>(rows, coords))?;
            Ok(
                around_query::<3>(centers, metric, radius, algorithm, threads)?
                    .telemetry(telemetry.clone())
                    .try_run_cached(&points, slot.core(), version, governor)?,
            )
        }
        n => Err(Error::Unsupported(format!(
            "similarity grouping over {n} attributes (2 or 3 supported)"
        ))),
    }
}

/// Running accumulator for one aggregate call.
enum AggState {
    CountStar(i64),
    Count(i64),
    Sum { sum: f64, all_int: bool, seen: bool },
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
    ArrayAgg(Vec<String>),
}

impl AggState {
    fn new(call: &AggCall) -> Self {
        match call.kind {
            AggKind::CountStar => AggState::CountStar(0),
            AggKind::Count => AggState::Count(0),
            AggKind::Sum => AggState::Sum {
                sum: 0.0,
                all_int: true,
                seen: false,
            },
            AggKind::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggKind::Min => AggState::Min(None),
            AggKind::Max => AggState::Max(None),
            AggKind::ArrayAgg => AggState::ArrayAgg(Vec::new()),
        }
    }

    fn update(&mut self, call: &AggCall, row: &[Value]) -> Result<()> {
        if let AggState::CountStar(n) = self {
            *n += 1;
            return Ok(());
        }
        // The planner always attaches an argument to non-count(*)
        // aggregates; a hand-built plan without one gets an Err, not a
        // panic.
        let Some(arg_expr) = call.arg.as_ref() else {
            return Err(Error::Eval("aggregate call is missing its argument".into()));
        };
        let arg = arg_expr.eval(row)?;
        if arg.is_null() {
            return Ok(()); // SQL aggregates skip NULLs
        }
        match self {
            AggState::CountStar(_) => {} // handled by the early return above
            AggState::Count(n) => *n += 1,
            AggState::Sum { sum, all_int, seen } => {
                let v = arg
                    .as_f64()
                    .ok_or_else(|| Error::Eval(format!("sum over non-numeric value {arg}")))?;
                *sum += v;
                *all_int &= matches!(arg, Value::Int(_));
                *seen = true;
            }
            AggState::Avg { sum, n } => {
                let v = arg
                    .as_f64()
                    .ok_or_else(|| Error::Eval(format!("avg over non-numeric value {arg}")))?;
                *sum += v;
                *n += 1;
            }
            AggState::Min(best) => {
                let better = match best {
                    None => true,
                    Some(b) => arg.cmp_non_null(b) == std::cmp::Ordering::Less,
                };
                if better {
                    *best = Some(arg);
                }
            }
            AggState::Max(best) => {
                let better = match best {
                    None => true,
                    Some(b) => arg.cmp_non_null(b) == std::cmp::Ordering::Greater,
                };
                if better {
                    *best = Some(arg);
                }
            }
            AggState::ArrayAgg(items) => items.push(arg.to_string()),
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::CountStar(n) | AggState::Count(n) => Value::Int(n),
            AggState::Sum { sum, all_int, seen } => {
                if !seen {
                    Value::Null
                } else if all_int && sum.fract() == 0.0 && sum.abs() < 9e15 {
                    Value::Int(sum as i64)
                } else {
                    Value::Float(sum)
                }
            }
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::ArrayAgg(items) => Value::Str(format!("{{{}}}", items.join(","))),
        }
    }
}
