//! The database façade: catalog + SQL entry points.

use std::collections::HashMap;

use sgb_core::{AllAlgorithm, AnyAlgorithm, AroundAlgorithm};

use crate::error::{Error, Result};
use crate::exec::execute;
use crate::planner::plan_select;
use crate::schema::Schema;
use crate::sql::ast::Statement;
use crate::sql::parser::parse_statement;
use crate::table::Table;

/// An in-memory database: named tables plus engine settings for the
/// similarity operators.
///
/// ```
/// use sgb_relation::Database;
///
/// let mut db = Database::new();
/// db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
/// db.execute("INSERT INTO pts VALUES (1.0, 1.0), (2.0, 2.0), (9.0, 9.0)").unwrap();
/// let out = db
///     .execute("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5")
///     .unwrap();
/// assert_eq!(out.len(), 2); // {1,2} and {9}
/// ```
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    sgb_all_algorithm: AllAlgorithm,
    sgb_any_algorithm: AnyAlgorithm,
    sgb_around_algorithm: AroundAlgorithm,
    sgb_seed: u64,
}

impl Database {
    /// An empty database with default operator settings: every similarity
    /// operator runs with its `Auto` algorithm, cost-selected per query
    /// from the estimated input cardinality, center count, and
    /// dimensionality (`EXPLAIN` prints the resolved path and the reason).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table under `name`.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_ascii_lowercase(), table);
    }

    /// Removes a table; `true` when it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        self.tables.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::Binding(format!("unknown table '{name}'")))
    }

    /// Registered table names (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Algorithm used by `DISTANCE-TO-ALL` queries.
    pub fn sgb_all_algorithm(&self) -> AllAlgorithm {
        self.sgb_all_algorithm
    }

    /// Algorithm used by `DISTANCE-TO-ANY` queries.
    pub fn sgb_any_algorithm(&self) -> AnyAlgorithm {
        self.sgb_any_algorithm
    }

    /// Algorithm used by `AROUND` queries.
    pub fn sgb_around_algorithm(&self) -> AroundAlgorithm {
        self.sgb_around_algorithm
    }

    /// Seed for `ON-OVERLAP JOIN-ANY` arbitration.
    pub fn sgb_seed(&self) -> u64 {
        self.sgb_seed
    }

    /// Selects the SGB-All algorithm (the paper's All-Pairs /
    /// Bounds-Checking / on-the-fly Index variants, the ε-grid engine, or
    /// cost-based `Auto` — the default).
    pub fn set_sgb_all_algorithm(&mut self, algorithm: AllAlgorithm) {
        self.sgb_all_algorithm = algorithm;
    }

    /// Selects the SGB-Any algorithm (all-pairs, on-the-fly R-tree, the
    /// ε-grid engine, or cost-based `Auto` — the default).
    pub fn set_sgb_any_algorithm(&mut self, algorithm: AnyAlgorithm) {
        self.sgb_any_algorithm = algorithm;
    }

    /// Selects the SGB-Around algorithm (brute-force center scan, the
    /// bulk-loaded center R-tree, the center grid, or cost-based `Auto` —
    /// the default).
    pub fn set_sgb_around_algorithm(&mut self, algorithm: AroundAlgorithm) {
        self.sgb_around_algorithm = algorithm;
    }

    /// Sets the JOIN-ANY arbitration seed (reproducible runs).
    pub fn set_sgb_seed(&mut self, seed: u64) {
        self.sgb_seed = seed;
    }

    /// Executes any statement (SELECT, CREATE TABLE, INSERT, DROP TABLE).
    /// DDL/DML return an empty result table.
    pub fn execute(&mut self, sql: &str) -> Result<Table> {
        match parse_statement(sql)? {
            Statement::Select(stmt) => {
                let plan = plan_select(self, &stmt)?;
                execute(&plan, self)
            }
            Statement::CreateTable { name, columns } => {
                if self.tables.contains_key(&name.to_ascii_lowercase()) {
                    return Err(Error::Binding(format!("table '{name}' already exists")));
                }
                self.register(&name, Table::empty(Schema::new(columns)));
                Ok(Table::default())
            }
            Statement::Insert { table, rows } => {
                // Bind row expressions as constants (empty input schema).
                let planner_rows: Result<Vec<Vec<crate::value::Value>>> = rows
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|e| {
                                let bound = crate::planner::plan_const(self, e)?;
                                bound.eval(&[])
                            })
                            .collect()
                    })
                    .collect();
                let planner_rows = planner_rows?;
                let t = self
                    .tables
                    .get_mut(&table.to_ascii_lowercase())
                    .ok_or_else(|| Error::Binding(format!("unknown table '{table}'")))?;
                for row in planner_rows {
                    t.push(row)?;
                }
                Ok(Table::default())
            }
            Statement::DropTable { name } => {
                if !self.drop_table(&name) {
                    return Err(Error::Binding(format!("unknown table '{name}'")));
                }
                Ok(Table::default())
            }
        }
    }

    /// Executes a SELECT without requiring `&mut self`.
    pub fn query(&self, sql: &str) -> Result<Table> {
        match parse_statement(sql)? {
            Statement::Select(stmt) => {
                let plan = plan_select(self, &stmt)?;
                execute(&plan, self)
            }
            _ => Err(Error::Unsupported("query() only accepts SELECT".into())),
        }
    }

    /// Renders the physical plan of a SELECT (`EXPLAIN`).
    pub fn explain(&self, sql: &str) -> Result<String> {
        match parse_statement(sql)? {
            Statement::Select(stmt) => Ok(plan_select(self, &stmt)?.explain()),
            _ => Err(Error::Unsupported("explain() only accepts SELECT".into())),
        }
    }
}
