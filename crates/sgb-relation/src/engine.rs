//! The database façade: catalog + SQL entry points.
#![deny(clippy::unwrap_used)]

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sgb_core::{Algorithm, CacheStats, CancelToken, QueryGovernor};
use sgb_telemetry::{MetricsRegistry, SlowQuery, SlowQueryLog};

use crate::cache::{slot_key, SessionCaches};
use crate::error::{Error, Result};
use crate::exec::{around_query, execute, execute_with_stats, extract_points, sgb_query};
use crate::expr::BoundExpr;
use crate::plan::{Plan, SgbMode};
use crate::planner::{plan_predicate, plan_select};
use crate::schema::Schema;
use crate::session::SessionOptions;
use crate::sql::ast::Statement;
use crate::sql::parser::parse_statement;
use crate::subscription::{build_maintained, QueryKey, SubscriptionHandle, SubscriptionSet};
use crate::table::{Row, Table};
use crate::value::Value;

/// An in-memory database: named tables plus the session's engine options
/// for the similarity operators ([`SessionOptions`]).
///
/// ```
/// use sgb_relation::Database;
///
/// let mut db = Database::new();
/// db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
/// db.execute("INSERT INTO pts VALUES (1.0, 1.0), (2.0, 2.0), (9.0, 9.0)").unwrap();
/// let out = db
///     .execute("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5")
///     .unwrap();
/// assert_eq!(out.len(), 2); // {1,2} and {9}
/// ```
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    session: SessionOptions,
    caches: Arc<SessionCaches>,
    subscriptions: SubscriptionSet,
    cancel: Option<CancelToken>,
    /// Session-scoped metrics: statement/operator counters, latency
    /// histograms ([`Database::metrics_text`]).
    registry: Arc<MetricsRegistry>,
    /// Ring buffer of statements that overran
    /// [`SessionOptions::slow_query`] ([`Database::slow_queries`]).
    slow_log: Arc<SlowQueryLog>,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        // A clone is an independent session: it keeps the catalog and
        // options but starts with empty shared-work caches and no
        // subscriptions, so two sessions never interleave their hit/miss
        // counters or maintained groupings (the cloned tables keep their
        // versions — indexes simply rebuild on first use; subscriptions
        // re-register with `subscribe`).
        Self {
            tables: self.tables.clone(),
            session: self.session,
            caches: Arc::new(SessionCaches::default()),
            subscriptions: SubscriptionSet::default(),
            cancel: None,
            registry: Arc::new(MetricsRegistry::new()),
            slow_log: Arc::new(SlowQueryLog::default()),
        }
    }
}

impl Database {
    /// An empty database with default session options: every similarity
    /// operator runs with its `Auto` algorithm, cost-selected per query
    /// from the estimated input cardinality, center count, and
    /// dimensionality (`EXPLAIN` prints the resolved path and the reason).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty database with the given session options.
    ///
    /// ```
    /// use sgb_core::Algorithm;
    /// use sgb_relation::{Database, SessionOptions};
    ///
    /// let db = Database::with_options(
    ///     SessionOptions::new().with_all_algorithm(Algorithm::BoundsChecking),
    /// );
    /// assert_eq!(db.session().all_algorithm, Algorithm::BoundsChecking);
    /// ```
    pub fn with_options(session: SessionOptions) -> Self {
        Self {
            tables: HashMap::new(),
            session,
            caches: Arc::new(SessionCaches::default()),
            subscriptions: SubscriptionSet::default(),
            cancel: None,
            registry: Arc::new(MetricsRegistry::new()),
            slow_log: Arc::new(SlowQueryLog::default()),
        }
    }

    /// Installs (or clears) a cooperative cancellation token observed by
    /// every subsequent statement: once [`CancelToken::cancel`] fires —
    /// typically from another thread holding a clone — the running
    /// similarity operator stops at its next governance check and the
    /// statement fails with [`Error::Aborted`]`(Cancelled)`. The session
    /// stays fully usable afterwards; clear (or replace) the token to run
    /// further statements.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The resource governor every statement executes under, built from
    /// the session options: the [`SessionOptions::statement_timeout`]
    /// deadline (drawn fresh per call), the
    /// [`SessionOptions::memory_budget`], and the session's cancel token
    /// ([`Database::set_cancel_token`]), when set.
    pub(crate) fn statement_governor(&self) -> QueryGovernor {
        let mut governor = QueryGovernor::unrestricted();
        if let Some(timeout) = self.session.statement_timeout {
            governor = governor.with_deadline(timeout);
        }
        if let Some(budget) = self.session.memory_budget {
            governor = governor.with_memory_budget(budget);
        }
        if let Some(token) = &self.cancel {
            governor = governor.with_cancel_token(token.clone());
        }
        governor
    }

    /// The session's engine options. The planner resolves every similarity
    /// query under these; `EXPLAIN` prints the resolved path plus whether
    /// it came from the cost model or a session override.
    pub fn session(&self) -> &SessionOptions {
        &self.session
    }

    /// Mutable access to the session's engine options — the one surface
    /// for adjusting similarity-operator execution mid-session.
    ///
    /// ```
    /// use sgb_core::Algorithm;
    /// use sgb_relation::Database;
    ///
    /// let mut db = Database::new();
    /// db.session_mut().any_algorithm = Algorithm::Grid;
    /// db.session_mut().seed = 42;
    /// ```
    pub fn session_mut(&mut self) -> &mut SessionOptions {
        &mut self.session
    }

    /// Registers (or replaces) a table under `name`. Any subscriptions
    /// over a replaced table are dropped (their handles deactivate): the
    /// contents changed wholesale, outside the delta stream they track.
    pub fn register(&mut self, name: &str, mut table: Table) {
        let key = name.to_ascii_lowercase();
        // The incoming table may be a clone that was mutated through its
        // public `rows` since its version was drawn; re-version it so no
        // cached state built for the original can be mistaken for it.
        table.bump_version();
        self.caches.remove_table(&key);
        self.subscriptions.on_drop(&key);
        self.tables.insert(key, table);
    }

    /// Removes a table; `true` when it existed. Subscriptions over it are
    /// dropped (their handles deactivate, keeping the last snapshot).
    pub fn drop_table(&mut self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        self.caches.remove_table(&key);
        self.subscriptions.on_drop(&key);
        self.tables.remove(&key).is_some()
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::Binding(format!("unknown table '{name}'")))
    }

    /// Registered table names (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Executes any statement (SELECT, CREATE TABLE, INSERT, DELETE, DROP
    /// TABLE, EXPLAIN \[ANALYZE\]). DDL/DML return an empty result table;
    /// EXPLAIN returns a one-column `QUERY PLAN` table, one row per line.
    ///
    /// Every call — successful or not — moves the session's statement
    /// counters and latency histogram ([`Database::metrics_text`]), and
    /// feeds the slow-query log when [`SessionOptions::slow_query`] is set.
    pub fn execute(&mut self, sql: &str) -> Result<Table> {
        let started = Instant::now();
        let stmt = match parse_statement(sql) {
            Ok(stmt) => stmt,
            Err(e) => {
                self.observe_statement("parse", started, sql, Some(&e));
                return Err(e);
            }
        };
        let kind = statement_kind(&stmt);
        let result = self.execute_statement(stmt);
        self.observe_statement(kind, started, sql, result.as_ref().err());
        result
    }

    /// The statement dispatcher behind [`Database::execute`] (which wraps
    /// it with metrics observation).
    fn execute_statement(&mut self, stmt: Statement) -> Result<Table> {
        match stmt {
            Statement::Select(stmt) => {
                let plan = plan_select(self, &stmt)?;
                execute(&plan, self)
            }
            Statement::CreateTable { name, columns } => {
                if self.tables.contains_key(&name.to_ascii_lowercase()) {
                    return Err(Error::Binding(format!("table '{name}' already exists")));
                }
                self.register(&name, Table::empty(Schema::new(columns)));
                Ok(Table::default())
            }
            Statement::Insert { table, rows } => {
                // Bind row expressions as constants (empty input schema).
                let planner_rows: Result<Vec<Vec<crate::value::Value>>> = rows
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|e| {
                                let bound = crate::planner::plan_const(self, e)?;
                                bound.eval(&[])
                            })
                            .collect()
                    })
                    .collect();
                let planner_rows = planner_rows?;
                let key = table.to_ascii_lowercase();
                let t = self
                    .tables
                    .get_mut(&key)
                    .ok_or_else(|| Error::Binding(format!("unknown table '{table}'")))?;
                // Validate every width up front so the statement is
                // all-or-nothing — subscriptions see either the whole
                // batch or none of it.
                let width = t.schema.len();
                if let Some(bad) = planner_rows.iter().find(|r| r.len() != width) {
                    return Err(Error::Eval(format!(
                        "row width {} does not match schema width {width}",
                        bad.len()
                    )));
                }
                for row in &planner_rows {
                    t.push(row.clone())?;
                }
                let version = t.version();
                self.subscriptions.on_insert(
                    &key,
                    &planner_rows,
                    &t.rows,
                    version,
                    self.session.statement_timeout,
                    &self.registry,
                );
                Ok(Table::default())
            }
            Statement::Delete { table, predicate } => {
                let key = table.to_ascii_lowercase();
                let schema = self
                    .tables
                    .get(&key)
                    .ok_or_else(|| Error::Binding(format!("unknown table '{table}'")))?
                    .schema
                    .clone();
                let bound = predicate
                    .as_ref()
                    .map(|e| plan_predicate(self, &schema, e))
                    .transpose()?;
                let t = self
                    .tables
                    .get_mut(&key)
                    .ok_or_else(|| Error::Binding(format!("unknown table '{table}'")))?;
                // Evaluate the predicate over every row *before* mutating,
                // so an evaluation error leaves the table untouched.
                let mut removed = Vec::new();
                match &bound {
                    Some(p) => {
                        for (i, row) in t.rows.iter().enumerate() {
                            if p.eval_predicate(row)? {
                                removed.push(i);
                            }
                        }
                    }
                    None => removed.extend(0..t.rows.len()),
                }
                if !removed.is_empty() {
                    retain_kept(&mut t.rows, &removed);
                    // The version bump is what invalidates the session's
                    // shared-work caches — deletes exactly like inserts.
                    t.bump_version();
                    let version = t.version();
                    self.subscriptions.on_delete(
                        &key,
                        &removed,
                        &t.rows,
                        version,
                        self.session.statement_timeout,
                        &self.registry,
                    );
                }
                Ok(Table::default())
            }
            Statement::Update {
                table,
                assignments,
                predicate,
            } => {
                let key = table.to_ascii_lowercase();
                let schema = self
                    .tables
                    .get(&key)
                    .ok_or_else(|| Error::Binding(format!("unknown table '{table}'")))?
                    .schema
                    .clone();
                // Bind the SET targets and right-hand sides against the
                // table schema (the RHS may read columns of the old row).
                let mut sets = Vec::with_capacity(assignments.len());
                for (col, expr) in &assignments {
                    let idx = schema.resolve(None, col)?;
                    sets.push((idx, plan_predicate(self, &schema, expr)?));
                }
                let bound = predicate
                    .as_ref()
                    .map(|e| plan_predicate(self, &schema, e))
                    .transpose()?;
                let t = self
                    .tables
                    .get_mut(&key)
                    .ok_or_else(|| Error::Binding(format!("unknown table '{table}'")))?;
                // Evaluate the predicate and every replacement row *before*
                // mutating, so an evaluation error leaves the table
                // untouched (all-or-nothing, like INSERT and DELETE).
                let mut touched = Vec::new();
                let mut replacements = Vec::new();
                for (i, row) in t.rows.iter().enumerate() {
                    let hit = match &bound {
                        Some(p) => p.eval_predicate(row)?,
                        None => true,
                    };
                    if hit {
                        let mut next = row.clone();
                        // Every RHS sees the *old* row, per SQL semantics.
                        for (idx, e) in &sets {
                            next[*idx] = e.eval(row)?;
                        }
                        touched.push(i);
                        replacements.push(next);
                    }
                }
                if !touched.is_empty() {
                    // Executed as a delete+insert pair so the change flows
                    // through the same incremental-maintenance path as
                    // DELETE and INSERT: subscriptions apply the two delta
                    // batches, and the version bumps invalidate the
                    // session's shared-work caches. Updated rows therefore
                    // move to the end of the table, exactly as a manual
                    // DELETE + INSERT would place them.
                    retain_kept(&mut t.rows, &touched);
                    t.bump_version();
                    let delete_version = t.version();
                    self.subscriptions.on_delete(
                        &key,
                        &touched,
                        &t.rows,
                        delete_version,
                        self.session.statement_timeout,
                        &self.registry,
                    );
                    for row in &replacements {
                        t.push(row.clone())?;
                    }
                    let version = t.version();
                    self.subscriptions.on_insert(
                        &key,
                        &replacements,
                        &t.rows,
                        version,
                        self.session.statement_timeout,
                        &self.registry,
                    );
                }
                Ok(Table::default())
            }
            Statement::SetOption { name, value } => {
                let bound = crate::planner::plan_const(self, &value)?;
                let v = bound.eval(&[])?;
                self.set_session_option(&name, &v)?;
                Ok(Table::default())
            }
            Statement::DropTable { name } => {
                if !self.drop_table(&name) {
                    return Err(Error::Binding(format!("unknown table '{name}'")));
                }
                Ok(Table::default())
            }
            Statement::Explain { analyze, query } => {
                let plan = plan_select(self, &query)?;
                let text = if analyze {
                    let governor = self.statement_governor();
                    let (_, stats) = execute_with_stats(&plan, self, &governor)?;
                    plan.explain_analyze(&stats)
                } else {
                    plan.explain()
                };
                Ok(explain_table(&text))
            }
        }
    }

    /// Executes a SELECT without requiring `&mut self`.
    pub fn query(&self, sql: &str) -> Result<Table> {
        let started = Instant::now();
        let result = match parse_statement(sql) {
            Ok(Statement::Select(stmt)) => {
                plan_select(self, &stmt).and_then(|plan| execute(&plan, self))
            }
            Ok(_) => Err(Error::Unsupported("query() only accepts SELECT".into())),
            Err(e) => Err(e),
        };
        self.observe_statement("select", started, sql, result.as_ref().err());
        result
    }

    /// Renders the physical plan of a SELECT (`EXPLAIN`).
    pub fn explain(&self, sql: &str) -> Result<String> {
        match parse_statement(sql)? {
            Statement::Select(stmt) => Ok(plan_select(self, &stmt)?.explain()),
            _ => Err(Error::Unsupported("explain() only accepts SELECT".into())),
        }
    }

    /// Registers a continuous similarity query over a base table and
    /// returns a handle serving immutable, version-stamped snapshots of
    /// its grouping (see [`crate::subscription`]).
    ///
    /// `sql` must be a SELECT whose plan is exactly a similarity group-by
    /// over one bare table — no WHERE, joins, ORDER BY, or LIMIT: the
    /// subscription maintains the *grouping* of the whole table under
    /// INSERT / DELETE deltas; the select list and HAVING still apply per
    /// query when the executor serves from the snapshot. Errors when
    /// [`SessionOptions::subscriptions`] is off.
    ///
    /// ```
    /// use sgb_relation::Database;
    ///
    /// let mut db = Database::new();
    /// db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    /// db.execute("INSERT INTO pts VALUES (1.0, 1.0), (2.0, 2.0), (9.0, 9.0)").unwrap();
    /// let sub = db
    ///     .subscribe("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5")
    ///     .unwrap();
    /// assert_eq!(sub.snapshot().grouping().num_groups(), 2);
    /// db.execute("DELETE FROM pts WHERE x > 5").unwrap();
    /// assert_eq!(sub.snapshot().grouping().num_groups(), 1);
    /// ```
    pub fn subscribe(&mut self, sql: &str) -> Result<SubscriptionHandle> {
        if !self.session.subscriptions {
            return Err(Error::Unsupported(
                "subscriptions are disabled for this session \
                 (SessionOptions::subscriptions)"
                    .into(),
            ));
        }
        let stmt = match parse_statement(sql)? {
            Statement::Select(s) => s,
            _ => return Err(Error::Unsupported("subscribe() only accepts SELECT".into())),
        };
        let plan = plan_select(self, &stmt)?;
        let shape_err = || {
            Error::Unsupported(
                "subscribe() requires a similarity GROUP BY over a single base \
                 table (no WHERE, joins, ORDER BY, or LIMIT)"
                    .into(),
            )
        };
        // The maintained grouping is built from the node's own lowering
        // (same resolved algorithm, seed, and threads the plan records),
        // so the initial snapshot is bit-identical to a cold run.
        let (table, coords, key, maintained) = match &plan {
            Plan::SimilarityGroupBy {
                input,
                coords,
                mode,
                ..
            } => {
                let Plan::Scan { table, .. } = &**input else {
                    return Err(shape_err());
                };
                if table.is_empty() {
                    return Err(shape_err());
                }
                let t = self.table(table)?;
                let maintained = build_maintained(
                    &t.rows,
                    coords,
                    || sgb_query::<2>(mode),
                    || sgb_query::<3>(mode),
                )?;
                (
                    table.to_ascii_lowercase(),
                    coords.clone(),
                    QueryKey::from_sgb_mode(mode),
                    maintained,
                )
            }
            Plan::SimilarityAround {
                input,
                coords,
                centers,
                metric,
                radius,
                algorithm,
                threads,
                ..
            } => {
                let Plan::Scan { table, .. } = &**input else {
                    return Err(shape_err());
                };
                if table.is_empty() {
                    return Err(shape_err());
                }
                let t = self.table(table)?;
                let maintained = build_maintained(
                    &t.rows,
                    coords,
                    || around_query::<2>(centers, *metric, *radius, *algorithm, *threads),
                    || around_query::<3>(centers, *metric, *radius, *algorithm, *threads),
                )?;
                (
                    table.to_ascii_lowercase(),
                    coords.clone(),
                    QueryKey::around(centers, *metric, *radius),
                    maintained,
                )
            }
            _ => return Err(shape_err()),
        };
        let t = self.table(&table)?;
        let (n_rows, version) = (t.rows.len(), t.version());
        Ok(self.subscriptions.register(
            table,
            slot_key(&coords),
            coords,
            key,
            maintained,
            n_rows,
            version,
        ))
    }

    /// Applies `SET <option> = <value>`. Options are session-scoped and
    /// take effect from the next statement.
    fn set_session_option(&mut self, name: &str, value: &Value) -> Result<()> {
        let non_negative_int = |what: &str| -> Result<u64> {
            match value {
                Value::Int(n) if *n >= 0 => Ok(*n as u64),
                other => Err(Error::Eval(format!(
                    "SET {what} expects a non-negative integer, got {other}"
                ))),
            }
        };
        if name.eq_ignore_ascii_case("statement_timeout") {
            // Milliseconds; 0 clears the deadline.
            let ms = non_negative_int("STATEMENT_TIMEOUT")?;
            self.session.statement_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            Ok(())
        } else if name.eq_ignore_ascii_case("memory_budget") {
            // Bytes; 0 clears the budget.
            let bytes = non_negative_int("MEMORY_BUDGET")?;
            self.session.memory_budget = (bytes > 0).then_some(bytes as usize);
            Ok(())
        } else if name.eq_ignore_ascii_case("slow_query_ms") {
            // Milliseconds; 0 turns slow-query logging off.
            let ms = non_negative_int("SLOW_QUERY_MS")?;
            self.session.slow_query = (ms > 0).then(|| Duration::from_millis(ms));
            Ok(())
        } else {
            Err(Error::Unsupported(format!(
                "unknown session option '{name}' \
                 (valid: STATEMENT_TIMEOUT, MEMORY_BUDGET, SLOW_QUERY_MS)"
            )))
        }
    }

    /// The session's subscriptions (executor serve, planner probe).
    pub(crate) fn subscriptions(&self) -> &SubscriptionSet {
        &self.subscriptions
    }

    /// The session's shared-work caches (executor fetch-or-build, planner
    /// read-only probes).
    pub(crate) fn caches(&self) -> &SessionCaches {
        &self.caches
    }

    /// The summed hit/miss/eviction counters of the session's shared-work
    /// caches (see [`SessionOptions::cache`]). Counters only move when a
    /// query executes — `EXPLAIN` probes without counting.
    ///
    /// ```
    /// use sgb_relation::Database;
    ///
    /// let mut db = Database::new();
    /// db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    /// db.execute("INSERT INTO pts VALUES (1.0, 1.0), (2.0, 2.0)").unwrap();
    /// let q = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5";
    /// db.execute(q).unwrap();
    /// db.execute(q).unwrap(); // exact repeat: served from the result cache
    /// assert_eq!(db.cache_stats().result_hits, 1);
    /// ```
    pub fn cache_stats(&self) -> CacheStats {
        self.caches.stats()
    }

    /// The session's metrics registry (executor operator counters).
    pub(crate) fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The session-scoped metrics registry: statement counters by kind and
    /// outcome (`sgb_statements_total`), per-kind latency histograms
    /// (`sgb_statement_ms`), similarity-operator run counters
    /// (`sgb_operator_runs_total`), subscription delta outcomes
    /// (`sgb_subscription_deltas_total`), and the shared-work cache
    /// counters (`sgb_cache_events_total`) folded in from
    /// [`Database::cache_stats`]. The fold-in happens on access, so the
    /// two surfaces can never disagree.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.sync_cache_metrics();
        &self.registry
    }

    /// Renders the session metrics in the Prometheus text exposition
    /// format (version 0.0.4): `# TYPE` headers, counters, then
    /// histograms with cumulative `_bucket{le=…}` / `_sum` / `_count`
    /// series.
    ///
    /// ```
    /// use sgb_relation::Database;
    ///
    /// let mut db = Database::new();
    /// db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    /// let text = db.metrics_text();
    /// assert!(text.contains("# TYPE sgb_statements_total counter"));
    /// assert!(text.contains("kind=\"create_table\""));
    /// ```
    pub fn metrics_text(&self) -> String {
        self.sync_cache_metrics();
        self.registry.render()
    }

    /// Folds the current [`CacheStats`] counters into the registry as
    /// `sgb_cache_events_total{event=…}`. `record_absolute` is a monotone
    /// max, so repeated folds are idempotent and the registry mirrors the
    /// live counters exactly at every render.
    fn sync_cache_metrics(&self) {
        let stats = self.caches.stats();
        for (event, value) in [
            ("index_hit", stats.index_hits),
            ("index_miss", stats.index_misses),
            ("result_hit", stats.result_hits),
            ("result_miss", stats.result_misses),
            ("eviction", stats.evictions),
            ("validation_skipped", stats.validations_skipped),
        ] {
            self.registry
                .record_absolute("sgb_cache_events_total", &[("event", event)], value);
        }
    }

    /// The slow-query log, oldest first: every statement whose wall-clock
    /// time reached [`SessionOptions::slow_query`] (set it via
    /// `SET SLOW_QUERY_MS = <ms>`), successful or failed, bounded by a
    /// fixed-capacity ring buffer that drops the oldest entry on overflow.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log.entries()
    }

    /// Executes a SELECT and renders its `EXPLAIN ANALYZE` tree — the
    /// plan with every node's actual elapsed time, output row count, and
    /// operator detail (similarity nodes report group/candidate counts
    /// and their phase breakdown). Equivalent to
    /// `execute("EXPLAIN ANALYZE …")` joined to one string.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let stmt = match parse_statement(sql)? {
            Statement::Select(stmt) | Statement::Explain { query: stmt, .. } => stmt,
            _ => {
                return Err(Error::Unsupported(
                    "explain_analyze() only accepts SELECT".into(),
                ))
            }
        };
        let plan = plan_select(self, &stmt)?;
        let governor = self.statement_governor();
        let (_, stats) = execute_with_stats(&plan, self, &governor)?;
        Ok(plan.explain_analyze(&stats))
    }

    /// Records one finished statement into the session metrics: the
    /// `sgb_statements_total{kind, outcome}` counter, the
    /// `sgb_statement_ms{kind}` latency histogram, and — when the session
    /// has a slow-query threshold and this statement reached it — the
    /// slow-query ring buffer.
    fn observe_statement(&self, kind: &str, started: Instant, sql: &str, err: Option<&Error>) {
        let elapsed = started.elapsed();
        let outcome = match err {
            None => "ok",
            Some(e) => e.class(),
        };
        self.registry.inc(
            "sgb_statements_total",
            &[("kind", kind), ("outcome", outcome)],
            1,
        );
        let millis = elapsed.as_secs_f64() * 1e3;
        self.registry
            .observe_ms("sgb_statement_ms", &[("kind", kind)], millis);
        if let Some(threshold) = self.session.slow_query {
            if elapsed >= threshold {
                self.slow_log.record(SlowQuery {
                    statement: sql.to_owned(),
                    millis,
                    outcome: outcome.to_owned(),
                });
            }
        }
    }

    /// Executes a batch of statements in order, sharing index builds
    /// across each contiguous run of SELECTs: the run's ε-grid queries
    /// over one table are grouped and their grid is built **once**, sized
    /// for the smallest ε, then every ε-superset query in the run reuses
    /// it. Results are identical to executing the statements one by one
    /// (the shared grid verifies with the canonical predicate); errors
    /// surface at their statement's position, having executed everything
    /// before it.
    pub fn run_batch(&mut self, statements: &[&str]) -> Result<Vec<Table>> {
        let mut results = Vec::with_capacity(statements.len());
        let mut i = 0;
        while i < statements.len() {
            // The maximal run of SELECTs starting at `i` (a statement
            // that fails to parse joins no run; it errors below in
            // execution order).
            let mut j = i;
            while j < statements.len()
                && matches!(parse_statement(statements[j]), Ok(Statement::Select(_)))
            {
                j += 1;
            }
            if j > i && self.session.cache {
                self.prewarm_batch(&statements[i..j]);
            }
            let end = j.max(i + 1);
            for sql in &statements[i..end] {
                results.push(self.execute(sql)?);
            }
            i = end;
        }
        Ok(results)
    }

    /// Best-effort batch prewarm: plans each SELECT, collects the ε-grid
    /// similarity nodes that scan a base table directly, and builds one
    /// grid per `(table, coordinates)` group at the group's smallest ε.
    /// Any failure is ignored — execution simply rebuilds cold.
    fn prewarm_batch(&self, statements: &[&str]) {
        let mut groups: HashMap<(String, String, usize), (f64, Vec<BoundExpr>)> = HashMap::new();
        for sql in statements {
            let Ok(Statement::Select(stmt)) = parse_statement(sql) else {
                continue;
            };
            let Ok(plan) = plan_select(self, &stmt) else {
                continue;
            };
            collect_grid_targets(&plan, &mut groups);
        }
        for ((table, coords_key, dims), (eps, coords)) in groups {
            let Ok(t) = self.table(&table) else { continue };
            let version = t.version();
            match dims {
                2 => {
                    let slot = self.caches.slot2(&table, &coords_key);
                    if let Ok(points) =
                        slot.points_for(version, || extract_points::<2>(&t.rows, &coords))
                    {
                        slot.core().prewarm_grid(version, eps, &points);
                    }
                }
                3 => {
                    let slot = self.caches.slot3(&table, &coords_key);
                    if let Ok(points) =
                        slot.points_for(version, || extract_points::<3>(&t.rows, &coords))
                    {
                        slot.core().prewarm_grid(version, eps, &points);
                    }
                }
                _ => {}
            }
        }
    }
}

/// The metrics `kind` label of a parsed statement.
fn statement_kind(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::Select(_) => "select",
        Statement::CreateTable { .. } => "create_table",
        Statement::Insert { .. } => "insert",
        Statement::Delete { .. } => "delete",
        Statement::Update { .. } => "update",
        Statement::SetOption { .. } => "set",
        Statement::DropTable { .. } => "drop_table",
        Statement::Explain { .. } => "explain",
    }
}

/// Renders an EXPLAIN text as a one-column result table (PostgreSQL's
/// `QUERY PLAN` shape), one row per line.
fn explain_table(text: &str) -> Table {
    let schema = Schema::new(vec!["QUERY PLAN".to_owned()]);
    let rows = text
        .lines()
        .map(|line| vec![Value::Str(line.to_owned())])
        .collect();
    Table::from_parts(schema, rows)
}

/// Removes the rows at the given pre-delete indices (out-of-range entries
/// ignored), preserving the survivors' order.
fn retain_kept(rows: &mut Vec<Row>, removed: &[usize]) {
    let mut keep = vec![true; rows.len()];
    for &i in removed {
        if let Some(k) = keep.get_mut(i) {
            *k = false;
        }
    }
    let mut i = 0;
    rows.retain(|_| {
        let kept = keep[i];
        i += 1;
        kept
    });
}

/// Collects the batch-prewarmable similarity nodes of a plan: SGB-Any
/// resolved to the ε-grid, reading a base table directly (only then does
/// the table version describe the node's input). Keeps the smallest ε
/// per `(table, coordinates, dims)` group — the grid every other ε in
/// the group can reuse.
fn collect_grid_targets(
    plan: &Plan,
    out: &mut HashMap<(String, String, usize), (f64, Vec<BoundExpr>)>,
) {
    match plan {
        Plan::SimilarityGroupBy {
            input,
            coords,
            mode:
                SgbMode::Any {
                    eps,
                    algorithm: Algorithm::Grid,
                    ..
                },
            ..
        } => {
            if let Plan::Scan { table, .. } = &**input {
                if !table.is_empty() {
                    let key = (table.to_ascii_lowercase(), slot_key(coords), coords.len());
                    out.entry(key)
                        .and_modify(|(e, _)| *e = e.min(*eps))
                        .or_insert_with(|| (*eps, coords.clone()));
                }
            }
            collect_grid_targets(input, out);
        }
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::HashAggregate { input, .. }
        | Plan::SimilarityGroupBy { input, .. }
        | Plan::SimilarityAround { input, .. } => collect_grid_targets(input, out),
        Plan::HashJoin { left, right, .. } | Plan::CrossJoin { left, right, .. } => {
            collect_grid_targets(left, out);
            collect_grid_targets(right, out);
        }
        Plan::Scan { .. } => {}
    }
}
