//! The database façade: catalog + SQL entry points.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::exec::execute;
use crate::planner::plan_select;
use crate::schema::Schema;
use crate::session::SessionOptions;
use crate::sql::ast::Statement;
use crate::sql::parser::parse_statement;
use crate::table::Table;

/// An in-memory database: named tables plus the session's engine options
/// for the similarity operators ([`SessionOptions`]).
///
/// ```
/// use sgb_relation::Database;
///
/// let mut db = Database::new();
/// db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
/// db.execute("INSERT INTO pts VALUES (1.0, 1.0), (2.0, 2.0), (9.0, 9.0)").unwrap();
/// let out = db
///     .execute("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5")
///     .unwrap();
/// assert_eq!(out.len(), 2); // {1,2} and {9}
/// ```
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    session: SessionOptions,
}

impl Database {
    /// An empty database with default session options: every similarity
    /// operator runs with its `Auto` algorithm, cost-selected per query
    /// from the estimated input cardinality, center count, and
    /// dimensionality (`EXPLAIN` prints the resolved path and the reason).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty database with the given session options.
    ///
    /// ```
    /// use sgb_core::Algorithm;
    /// use sgb_relation::{Database, SessionOptions};
    ///
    /// let db = Database::with_options(
    ///     SessionOptions::new().with_all_algorithm(Algorithm::BoundsChecking),
    /// );
    /// assert_eq!(db.session().all_algorithm, Algorithm::BoundsChecking);
    /// ```
    pub fn with_options(session: SessionOptions) -> Self {
        Self {
            tables: HashMap::new(),
            session,
        }
    }

    /// The session's engine options. The planner resolves every similarity
    /// query under these; `EXPLAIN` prints the resolved path plus whether
    /// it came from the cost model or a session override.
    pub fn session(&self) -> &SessionOptions {
        &self.session
    }

    /// Mutable access to the session's engine options — the one surface
    /// for adjusting similarity-operator execution mid-session.
    ///
    /// ```
    /// use sgb_core::Algorithm;
    /// use sgb_relation::Database;
    ///
    /// let mut db = Database::new();
    /// db.session_mut().any_algorithm = Algorithm::Grid;
    /// db.session_mut().seed = 42;
    /// ```
    pub fn session_mut(&mut self) -> &mut SessionOptions {
        &mut self.session
    }

    /// Registers (or replaces) a table under `name`.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_ascii_lowercase(), table);
    }

    /// Removes a table; `true` when it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        self.tables.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::Binding(format!("unknown table '{name}'")))
    }

    /// Registered table names (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Executes any statement (SELECT, CREATE TABLE, INSERT, DROP TABLE).
    /// DDL/DML return an empty result table.
    pub fn execute(&mut self, sql: &str) -> Result<Table> {
        match parse_statement(sql)? {
            Statement::Select(stmt) => {
                let plan = plan_select(self, &stmt)?;
                execute(&plan, self)
            }
            Statement::CreateTable { name, columns } => {
                if self.tables.contains_key(&name.to_ascii_lowercase()) {
                    return Err(Error::Binding(format!("table '{name}' already exists")));
                }
                self.register(&name, Table::empty(Schema::new(columns)));
                Ok(Table::default())
            }
            Statement::Insert { table, rows } => {
                // Bind row expressions as constants (empty input schema).
                let planner_rows: Result<Vec<Vec<crate::value::Value>>> = rows
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|e| {
                                let bound = crate::planner::plan_const(self, e)?;
                                bound.eval(&[])
                            })
                            .collect()
                    })
                    .collect();
                let planner_rows = planner_rows?;
                let t = self
                    .tables
                    .get_mut(&table.to_ascii_lowercase())
                    .ok_or_else(|| Error::Binding(format!("unknown table '{table}'")))?;
                for row in planner_rows {
                    t.push(row)?;
                }
                Ok(Table::default())
            }
            Statement::DropTable { name } => {
                if !self.drop_table(&name) {
                    return Err(Error::Binding(format!("unknown table '{name}'")));
                }
                Ok(Table::default())
            }
        }
    }

    /// Executes a SELECT without requiring `&mut self`.
    pub fn query(&self, sql: &str) -> Result<Table> {
        match parse_statement(sql)? {
            Statement::Select(stmt) => {
                let plan = plan_select(self, &stmt)?;
                execute(&plan, self)
            }
            _ => Err(Error::Unsupported("query() only accepts SELECT".into())),
        }
    }

    /// Renders the physical plan of a SELECT (`EXPLAIN`).
    pub fn explain(&self, sql: &str) -> Result<String> {
        match parse_statement(sql)? {
            Statement::Select(stmt) => Ok(plan_select(self, &stmt)?.explain()),
            _ => Err(Error::Unsupported("explain() only accepts SELECT".into())),
        }
    }
}
