//! Runtime values and the calendar arithmetic used by date columns.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};

/// A single cell value.
///
/// The engine is dynamically typed at the cell level (like SQLite): each
/// operator checks the shapes it needs. `Date` stores days since the Unix
/// epoch; `Interval` is a calendar interval (months and days kept separate,
/// as month lengths vary).
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Days since 1970-01-01.
    Date(i32),
    /// Calendar interval.
    Interval {
        /// Whole months.
        months: i32,
        /// Whole days.
        days: i32,
    },
}

impl Value {
    /// `true` when the value is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int/Float/Bool as 0/1); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view; floats with no fraction coerce.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Boolean view (SQL three-valued logic: NULL stays None).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Null => None,
            Value::Int(i) => Some(*i != 0),
            _ => None,
        }
    }

    /// SQL equality (NULL never equals anything; Int/Float compare
    /// numerically).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_non_null(other) == Ordering::Equal)
    }

    /// Total ordering for non-null values of comparable types; numeric
    /// types inter-compare, otherwise same-variant comparisons only.
    /// Cross-type incomparables order by a stable type rank (so sorting
    /// never panics).
    pub fn cmp_non_null(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (
                Interval {
                    months: m1,
                    days: d1,
                },
                Interval {
                    months: m2,
                    days: d2,
                },
            ) => (m1, d1).cmp(&(m2, d2)),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numerics share a rank (they inter-compare)
            Value::Str(_) => 3,
            Value::Date(_) => 4,
            Value::Interval { .. } => 5,
        }
    }

    /// Arithmetic (`+ - * /`) with numeric promotion and date ± interval.
    pub fn arith(&self, op: char, other: &Value) -> Result<Value> {
        use Value::*;
        if self.is_null() || other.is_null() {
            return Ok(Null);
        }
        match (self, other, op) {
            (Date(d), Interval { months, days }, '+') => {
                Ok(Date(add_months_days(*d, *months, *days)))
            }
            (Date(d), Interval { months, days }, '-') => {
                Ok(Date(add_months_days(*d, -months, -days)))
            }
            (Interval { months, days }, Date(d), '+') => {
                Ok(Date(add_months_days(*d, *months, *days)))
            }
            (Date(a), Date(b), '-') => Ok(Int((*a as i64) - (*b as i64))),
            (Date(d), Int(n), '+') => Ok(Date(d + *n as i32)),
            (Date(d), Int(n), '-') => Ok(Date(d - *n as i32)),
            (Int(a), Int(b), _) => match op {
                '+' => Ok(Int(a.wrapping_add(*b))),
                '-' => Ok(Int(a.wrapping_sub(*b))),
                '*' => Ok(Int(a.wrapping_mul(*b))),
                '/' => {
                    if *b == 0 {
                        Err(Error::Eval("division by zero".into()))
                    } else {
                        Ok(Int(a / b))
                    }
                }
                _ => Err(Error::Eval(format!("unknown operator {op}"))),
            },
            _ => {
                let (a, b) = (
                    self.as_f64().ok_or_else(|| type_err(self, op, other))?,
                    other.as_f64().ok_or_else(|| type_err(self, op, other))?,
                );
                match op {
                    '+' => Ok(Float(a + b)),
                    '-' => Ok(Float(a - b)),
                    '*' => Ok(Float(a * b)),
                    '/' => Ok(Float(a / b)),
                    _ => Err(Error::Eval(format!("unknown operator {op}"))),
                }
            }
        }
    }
}

fn type_err(a: &Value, op: char, b: &Value) -> Error {
    Error::Eval(format!("cannot compute {a} {op} {b}"))
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true, // structural, not SQL, equality
            (a, b) if a.is_null() || b.is_null() => false,
            (a, b) => a.cmp_non_null(b) == Ordering::Equal,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash identically when numerically equal
            // (they compare equal): hash via the f64 bits of the value.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
            Value::Interval { months, days } => {
                5u8.hash(state);
                months.hash(state);
                days.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => {
                let (y, m, day) = civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
            Value::Interval { months, days } => write!(f, "{months} mons {days} days"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

// ---------------------------------------------------------------------------
// Calendar arithmetic (proleptic Gregorian; Howard Hinnant's algorithms).
// ---------------------------------------------------------------------------

/// Days since 1970-01-01 for a civil date.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    debug_assert!((1..=12).contains(&m));
    debug_assert!((1..=31).contains(&d));
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // Mar=0 … Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146097 + doe - 719468) as i32
}

/// Civil date `(year, month, day)` for days since 1970-01-01.
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + (m <= 2) as i64) as i32, m, d)
}

/// Parses `YYYY-MM-DD` into days since the epoch.
pub fn parse_date(s: &str) -> Result<i32> {
    let parts: Vec<&str> = s.split('-').collect();
    let err = || Error::Parse(format!("invalid date literal '{s}' (expected YYYY-MM-DD)"));
    if parts.len() != 3 {
        return Err(err());
    }
    let y: i32 = parts[0].parse().map_err(|_| err())?;
    let m: u32 = parts[1].parse().map_err(|_| err())?;
    let d: u32 = parts[2].parse().map_err(|_| err())?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) || d > days_in_month(y, m) {
        return Err(err());
    }
    Ok(days_from_civil(y, m, d))
}

/// Number of days in `(year, month)`.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Adds a calendar interval to a date: months first (clamping the day to
/// the target month's length, PostgreSQL-style), then days.
pub fn add_months_days(date: i32, months: i32, days: i32) -> i32 {
    let (y, m, d) = civil_from_days(date);
    let total = y as i64 * 12 + (m as i64 - 1) + months as i64;
    let (ny, nm) = (
        total.div_euclid(12) as i32,
        (total.rem_euclid(12) + 1) as u32,
    );
    let nd = d.min(days_in_month(ny, nm));
    days_from_civil(ny, nm, nd) + days
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_round_trip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1995, 1, 1),
            (1996, 2, 29),
            (2000, 12, 31),
            (1900, 3, 1),
            (2024, 6, 15),
        ] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }

    #[test]
    fn parse_and_display_dates() {
        let d = parse_date("1995-01-01").unwrap();
        assert_eq!(Value::Date(d).to_string(), "1995-01-01");
        assert!(parse_date("1995-13-01").is_err());
        assert!(parse_date("1995-02-30").is_err());
        assert!(parse_date("nonsense").is_err());
    }

    #[test]
    fn interval_month_arithmetic() {
        // date '1995-01-01' + interval '10' month = 1995-11-01 (TPC-H Q15).
        let base = parse_date("1995-01-01").unwrap();
        let plus10 = Value::Date(base)
            .arith(
                '+',
                &Value::Interval {
                    months: 10,
                    days: 0,
                },
            )
            .unwrap();
        assert_eq!(plus10.to_string(), "1995-11-01");
        // Day clamping: Jan 31 + 1 month = Feb 28 (non-leap).
        let jan31 = parse_date("1995-01-31").unwrap();
        let feb = Value::Date(jan31)
            .arith('+', &Value::Interval { months: 1, days: 0 })
            .unwrap();
        assert_eq!(feb.to_string(), "1995-02-28");
    }

    #[test]
    fn date_minus_date_is_days() {
        let a = parse_date("1995-03-10").unwrap();
        let b = parse_date("1995-03-01").unwrap();
        assert_eq!(
            Value::Date(a).arith('-', &Value::Date(b)).unwrap(),
            Value::Int(9)
        );
    }

    #[test]
    fn numeric_promotion() {
        assert_eq!(
            Value::Int(3).arith('+', &Value::Int(4)).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            Value::Int(3).arith('*', &Value::Float(0.5)).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            Value::Float(1.0).arith('/', &Value::Int(4)).unwrap(),
            Value::Float(0.25)
        );
        assert!(Value::Int(1).arith('/', &Value::Int(0)).is_err());
        assert_eq!(
            Value::Int(7).arith('/', &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert!(Value::Null.arith('+', &Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).arith('*', &Value::Null).unwrap().is_null());
    }

    #[test]
    fn sql_equality_and_nulls() {
        assert_eq!(Value::Int(2).sql_eq(&Value::Float(2.0)), Some(true));
        assert_eq!(
            Value::Str("a".into()).sql_eq(&Value::Str("b".into())),
            Some(false)
        );
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn int_float_hash_consistency() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(42));
        assert!(set.contains(&Value::Float(42.0)));
        assert!(!set.contains(&Value::Float(42.5)));
    }

    #[test]
    fn ordering_within_types() {
        assert_eq!(
            Value::Int(1).cmp_non_null(&Value::Float(1.5)),
            Ordering::Less
        );
        assert_eq!(
            Value::Str("abc".into()).cmp_non_null(&Value::Str("abd".into())),
            Ordering::Less
        );
        let d1 = Value::Date(parse_date("1995-01-01").unwrap());
        let d2 = Value::Date(parse_date("1996-01-01").unwrap());
        assert_eq!(d1.cmp_non_null(&d2), Ordering::Less);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(
            Value::Interval {
                months: 10,
                days: 0
            }
            .to_string(),
            "10 mons 0 days"
        );
    }
}
