#![warn(missing_docs)]

//! # A mini relational engine with similarity group-by operators
//!
//! The paper prototypes SGB-All / SGB-Any *inside PostgreSQL* (Section 8.2):
//! the parser grammar gains `DISTANCE-TO-ALL` / `DISTANCE-TO-ANY` (and, for
//! the order-independent family member, `AROUND`) clauses,
//! the planner produces a similarity-aware plan, and the executor's
//! aggregation routine maintains groups with bounding rectangles, an
//! in-memory R-tree, and a Union-Find structure.
//!
//! This crate reproduces that integration as a self-contained in-memory SQL
//! engine so the whole pipeline — parse → plan (with predicate pushdown and
//! hash-join extraction) → execute — runs the similarity group-by as a
//! first-class relational operator interleaved with scans, filters, joins,
//! and standard aggregation:
//!
//! ```
//! use sgb_relation::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE gps (id INT, lat DOUBLE, lon DOUBLE)").unwrap();
//! db.execute(
//!     "INSERT INTO gps VALUES (1, 1.0, 7.0), (2, 2.0, 6.0), (3, 6.0, 2.0), \
//!      (4, 7.0, 1.0), (5, 4.0, 4.0)",
//! )
//! .unwrap();
//! // Example 1 of the paper: ε = 3 under L∞, ELIMINATE drops the
//! // overlapping point; the query output is {2, 2}.
//! let out = db
//!     .execute(
//!         "SELECT count(*) FROM gps \
//!          GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE",
//!     )
//!     .unwrap();
//! let counts: Vec<String> = out.rows.iter().map(|r| r[0].to_string()).collect();
//! assert_eq!(counts, vec!["2", "2"]);
//! ```

mod cache;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod plan;
pub mod planner;
pub mod schema;
pub mod session;
pub mod sql;
pub mod subscription;
pub mod table;
pub mod value;

pub use engine::Database;
pub use error::{Error, Result};
pub use expr::{BinOp, BoundExpr};
pub use plan::{AggCall, AggKind, IndexCacheStatus, NodeStat, Plan, SgbMode, SnapshotInfo};
pub use schema::{Column, Schema};
pub use session::SessionOptions;
pub use subscription::{GroupingSnapshot, SubscriptionHandle};
pub use table::{Row, Table};
pub use value::Value;

// Re-export the cache counters so sessions can read `cache_stats()`
// without importing sgb-core directly, and the governor vocabulary so
// sessions can build cancel tokens and match `Error::Aborted` payloads.
pub use sgb_core::{CacheStats, CancelToken, SgbError};

// Re-export the telemetry vocabulary behind `Database::metrics` /
// `Database::slow_queries`.
pub use sgb_telemetry::{MetricsRegistry, SlowQuery, SlowQueryLog};
