//! Engine error type.

use std::fmt;

/// Errors surfaced by the SQL front-end, planner, and executor.
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// Tokenizer / parser error with position context.
    Parse(String),
    /// Unknown table, column, or function; ambiguous reference.
    Binding(String),
    /// The query shape is understood but unsupported by this engine.
    Unsupported(String),
    /// Runtime evaluation error (type mismatch, bad cast, …).
    Eval(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Binding(msg) => write!(f, "binding error: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            Error::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
