//! Engine error type.

use std::fmt;

use sgb_core::SgbError;

/// Errors surfaced by the SQL front-end, planner, and executor.
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// Tokenizer / parser error with position context.
    Parse(String),
    /// Unknown table, column, or function; ambiguous reference.
    Binding(String),
    /// The query shape is understood but unsupported by this engine.
    Unsupported(String),
    /// Runtime evaluation error (type mismatch, bad cast, …).
    Eval(String),
    /// A governed execution stopped before completing: the statement
    /// timeout passed, a [`sgb_core::CancelToken`] fired, the memory
    /// budget ruled out a pinned execution path, or a worker thread
    /// panicked. The statement produced nothing — no partial result
    /// entered the session's caches or subscriptions, and the database
    /// stays fully usable.
    Aborted(SgbError),
}

impl Error {
    /// Stable error-class label used by the metrics registry
    /// (`sgb_statements_total{outcome=…}`): one lower-snake-case word per
    /// failure mode, never a free-form message.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Binding(_) => "binding",
            Error::Unsupported(_) => "unsupported",
            Error::Eval(_) => "eval",
            Error::Aborted(SgbError::Timeout) => "timeout",
            Error::Aborted(SgbError::Cancelled) => "cancelled",
            Error::Aborted(SgbError::BudgetExceeded { .. }) => "budget_exceeded",
            Error::Aborted(SgbError::WorkerPanicked { .. }) => "worker_panicked",
            Error::Aborted(SgbError::NonFinite) => "non_finite",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Binding(msg) => write!(f, "binding error: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            Error::Eval(msg) => write!(f, "evaluation error: {msg}"),
            Error::Aborted(e) => write!(f, "statement aborted: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Maps a core engine error onto the SQL error taxonomy. Resource /
/// fault conditions surface as [`Error::Aborted`]; `NonFinite` is a data
/// error and keeps the exact message the executor's own point-extraction
/// pass produces for the same input.
impl From<SgbError> for Error {
    fn from(e: SgbError) -> Self {
        match e {
            SgbError::NonFinite => {
                Error::Eval("similarity grouping attributes must be finite".into())
            }
            other => Error::Aborted(other),
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
