//! In-memory row-oriented tables.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;

/// A row of cell values.
pub type Row = Vec<Value>;

/// Process-global monotone counter backing [`Table::version`]. Every
/// freshly constructed or mutated table draws a new value, so two tables
/// (or two mutation epochs of one table) never share a version — the
/// property the session's index/result caches key invalidation on.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// A materialised relation: a schema plus rows.
#[derive(Clone, Debug)]
pub struct Table {
    /// Output schema.
    pub schema: Schema,
    /// Row data.
    pub rows: Vec<Row>,
    /// Monotone content version (see [`Table::version`]).
    version: u64,
}

impl Default for Table {
    fn default() -> Self {
        Self {
            schema: Schema::default(),
            rows: Vec::new(),
            version: fresh_version(),
        }
    }
}

/// Equality compares content (schema + rows) only; the cache version is
/// bookkeeping, not data.
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
            version: fresh_version(),
        }
    }

    /// A table from a schema and rows; validates row widths.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        let width = schema.len();
        if let Some(bad) = rows.iter().find(|r| r.len() != width) {
            return Err(Error::Eval(format!(
                "row width {} does not match schema width {width}",
                bad.len()
            )));
        }
        Ok(Self {
            schema,
            rows,
            version: fresh_version(),
        })
    }

    /// An intermediate result table (no width validation — the executor
    /// constructs rows that already match the schema).
    pub(crate) fn from_parts(schema: Schema, rows: Vec<Row>) -> Self {
        Self {
            schema,
            rows,
            version: fresh_version(),
        }
    }

    /// The table's content version: a process-globally unique, monotone
    /// value drawn at construction and refreshed on every mutation
    /// ([`Table::push`], the crate-internal `bump_version`). The session
    /// caches key
    /// built spatial indexes and groupings on it, so any content change
    /// invalidates them without scanning the data.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Refreshes the content version after an out-of-band mutation.
    pub(crate) fn bump_version(&mut self) {
        self.version = fresh_version();
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends one row, validating its width.
    pub fn push(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::Eval(format!(
                "row width {} does not match schema width {}",
                row.len(),
                self.schema.len()
            )));
        }
        self.rows.push(row);
        self.version = fresh_version();
        Ok(())
    }

    /// The single value of a 1×1 result (convenient in tests).
    pub fn scalar(&self) -> Result<&Value> {
        if self.rows.len() == 1 && self.schema.len() == 1 {
            Ok(&self.rows[0][0])
        } else {
            Err(Error::Eval(format!(
                "expected a 1x1 result, got {}x{}",
                self.rows.len(),
                self.schema.len()
            )))
        }
    }

    /// All values of one column (by index).
    pub fn column(&self, idx: usize) -> Vec<Value> {
        self.rows.iter().map(|r| r[idx].clone()).collect()
    }

    /// Sorts rows lexicographically (stable canonical order for
    /// result comparison in tests). Row order is content for the
    /// similarity operators (record ids follow it), so the version is
    /// refreshed.
    pub fn sorted(mut self) -> Self {
        self.version = fresh_version();
        self.rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = match (x.is_null(), y.is_null()) {
                    (true, true) => std::cmp::Ordering::Equal,
                    (true, false) => std::cmp::Ordering::Less,
                    (false, true) => std::cmp::Ordering::Greater,
                    (false, false) => x.cmp_non_null(y),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self
    }
}

impl fmt::Display for Table {
    /// Pretty-prints an aligned ASCII table (header + rows).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .columns
            .iter()
            .map(|c| c.display_name())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:<w$} |", w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &rendered {
            line(f, row)?;
        }
        write!(f, "({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            Schema::new(["id", "name"]),
            vec![
                vec![Value::Int(2), Value::from("bob")],
                vec![Value::Int(1), Value::from("ann")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn width_validation() {
        assert!(Table::new(Schema::new(["a"]), vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
        let mut table = Table::empty(Schema::new(["a"]));
        assert!(table.push(vec![Value::Int(1)]).is_ok());
        assert!(table.push(vec![]).is_err());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn scalar_extraction() {
        let one = Table::new(Schema::new(["n"]), vec![vec![Value::Int(7)]]).unwrap();
        assert_eq!(one.scalar().unwrap(), &Value::Int(7));
        assert!(t().scalar().is_err());
    }

    #[test]
    fn sorted_orders_rows() {
        let sorted = t().sorted();
        assert_eq!(sorted.rows[0][0], Value::Int(1));
        assert_eq!(sorted.rows[1][0], Value::Int(2));
    }

    #[test]
    fn column_projection() {
        assert_eq!(t().column(1), vec![Value::from("bob"), Value::from("ann")]);
    }

    #[test]
    fn display_renders_header_and_rows() {
        let s = t().to_string();
        assert!(s.contains("| id | name |"), "got:\n{s}");
        assert!(s.contains("| 2  | bob  |"), "got:\n{s}");
        assert!(s.ends_with("(2 rows)"), "got:\n{s}");
    }

    #[test]
    fn versions_are_unique_and_bump_on_mutation() {
        let mut a = Table::empty(Schema::new(["x"]));
        let b = Table::empty(Schema::new(["x"]));
        assert_ne!(a.version(), b.version(), "fresh tables get fresh versions");
        assert_eq!(a, b, "equality ignores the version");
        let v0 = a.version();
        a.push(vec![Value::Int(1)]).unwrap();
        assert_ne!(a.version(), v0, "push refreshes the version");
        let v1 = a.version();
        let clone = a.clone();
        assert_eq!(clone.version(), v1, "clones share content and version");
        a.bump_version();
        assert_ne!(a.version(), v1);
    }

    #[test]
    fn sorted_puts_nulls_first() {
        let table = Table::new(
            Schema::new(["x"]),
            vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(0)]],
        )
        .unwrap()
        .sorted();
        assert!(table.rows[0][0].is_null());
        assert_eq!(table.rows[1][0], Value::Int(0));
    }
}
