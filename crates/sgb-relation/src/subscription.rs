//! Continuous similarity queries: incremental maintenance plus concurrent
//! snapshot serving.
//!
//! The paper's motivating workloads (check-in streams, MANET nodes moving)
//! are update-heavy, and rebuilding the grouping from scratch after every
//! row edit wastes exactly the work the companion order-independence
//! argument says can be preserved: SGB-Around assignment is per-tuple
//! independent, SGB-Any depends only on the ε-edge set. A *subscription*
//! ([`crate::Database::subscribe`]) registers one similarity query over one
//! base table; from then on every `INSERT` / `DELETE` against that table is
//! applied as a **delta** to a [`sgb_core::MaintainedGrouping`] and the
//! refreshed grouping is published as an immutable, version-stamped
//! [`GroupingSnapshot`] behind an atomically swapped `Arc`.
//!
//! Concurrency contract: the writer (the session holding `&mut Database`)
//! maintains state and swaps the published `Arc` under a write lock held
//! only for the pointer swap; readers ([`SubscriptionHandle::snapshot`])
//! clone the `Arc` under the read lock and then work lock-free on a
//! grouping that is guaranteed *complete* — it was fully built before the
//! swap — and internally consistent (epoch and table version were stamped
//! together). Readers never observe a half-applied delta and never block
//! the writer beyond the pointer swap.
//!
//! Queries benefit too: when a `SELECT` lowers to the subscribed grouping
//! (same table, same grouping attributes, same operator parameters) and the
//! published snapshot matches the table's current version, the executor
//! serves the grouping straight from the snapshot instead of recomputing —
//! `EXPLAIN` reports this as `snapshot: subscription #N (epoch E)`.
//!
//! Like the session's shared-work caches, subscriptions trust the table
//! version counter: mutating a registered table's public `rows` directly
//! (rather than through SQL) silently desynchronises the maintained state.
//! [`crate::Database::register`] therefore drops the replaced table's
//! subscriptions, exactly as it invalidates its cache slots.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use sgb_core::query::Grouping;
use sgb_core::{MaintainedGrouping, OverlapAction, QueryGovernor, SgbError};
use sgb_geom::Metric;
use sgb_telemetry::MetricsRegistry;

use crate::error::{Error, Result};
use crate::exec::extract_points;
use crate::expr::BoundExpr;
use crate::plan::{SgbMode, SnapshotInfo};
use crate::table::Row;

/// The result-relevant identity of a similarity query — the parameters
/// that decide the *answer*, excluding execution knobs (algorithm, thread
/// count) that are guaranteed bit-identical across paths. Two queries with
/// equal keys over the same table and grouping attributes produce the same
/// grouping, so a subscription registered under one can serve the other.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum QueryKey {
    /// `DISTANCE-TO-ALL`: the seed participates because `JOIN-ANY`
    /// arbitration is seeded.
    All {
        /// Threshold ε.
        eps: f64,
        /// Distance function.
        metric: Metric,
        /// Overlap arbitration.
        overlap: OverlapAction,
        /// `JOIN-ANY` arbitration seed.
        seed: u64,
    },
    /// `DISTANCE-TO-ANY`: connected components depend only on (ε, metric).
    Any {
        /// Threshold ε.
        eps: f64,
        /// Distance function.
        metric: Metric,
    },
    /// `AROUND`: nearest-center assignment under an optional radius bound.
    Around {
        /// Center coordinates.
        centers: Vec<Vec<f64>>,
        /// Distance function.
        metric: Metric,
        /// Optional maximum radius.
        radius: Option<f64>,
    },
}

impl QueryKey {
    /// The key of a plan's SGB-All / SGB-Any node.
    pub(crate) fn from_sgb_mode(mode: &SgbMode) -> Self {
        match mode {
            SgbMode::All {
                eps,
                metric,
                overlap,
                seed,
                ..
            } => QueryKey::All {
                eps: *eps,
                metric: *metric,
                overlap: *overlap,
                seed: *seed,
            },
            SgbMode::Any { eps, metric, .. } => QueryKey::Any {
                eps: *eps,
                metric: *metric,
            },
        }
    }

    /// The key of a plan's AROUND node.
    pub(crate) fn around(centers: &[Vec<f64>], metric: Metric, radius: Option<f64>) -> Self {
        QueryKey::Around {
            centers: centers.to_vec(),
            metric,
            radius,
        }
    }
}

/// One published state of a subscribed grouping: immutable, complete, and
/// stamped with the maintenance epoch and the table version it reflects.
/// Obtained from [`SubscriptionHandle::snapshot`]; holders read it without
/// any further locking.
#[derive(Clone, Debug)]
pub struct GroupingSnapshot {
    grouping: Grouping,
    epoch: u64,
    table_version: u64,
}

impl GroupingSnapshot {
    /// The grouping as of this snapshot.
    pub fn grouping(&self) -> &Grouping {
        &self.grouping
    }

    /// Maintenance epoch: the number of row deltas applied since the
    /// subscription was registered. Strictly increases across publishes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The table version this snapshot reflects (see
    /// [`crate::Table::version`]).
    pub fn table_version(&self) -> u64 {
        self.table_version
    }
}

/// Writer/reader shared cell: the published snapshot plus liveness.
#[derive(Debug)]
struct Shared {
    snapshot: RwLock<Arc<GroupingSnapshot>>,
    active: AtomicBool,
}

/// A reader's handle to one subscription. Cheap to clone and safe to move
/// to other threads; see [`crate::Database::subscribe`].
#[derive(Clone, Debug)]
pub struct SubscriptionHandle {
    id: usize,
    table: String,
    shared: Arc<Shared>,
}

impl SubscriptionHandle {
    /// Session-unique subscription id (appears in `EXPLAIN`).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The subscribed table (lower-cased catalog name).
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The latest published snapshot. Lock-free after the `Arc` clone: the
    /// returned snapshot never changes, even while the writer keeps
    /// applying deltas and publishing newer ones.
    pub fn snapshot(&self) -> Arc<GroupingSnapshot> {
        self.shared
            .snapshot
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// `false` once the subscription stopped being maintained: its table
    /// was dropped or replaced, or a delta could not be applied (e.g. a row
    /// with non-numeric grouping attributes was inserted). The last
    /// published snapshot remains readable.
    pub fn is_active(&self) -> bool {
        self.shared.active.load(Ordering::Acquire)
    }
}

/// Registry counter family for subscription delta outcomes.
const DELTAS_COUNTER: &str = "sgb_subscription_deltas_total";

/// The governor a delta batch runs under: unrestricted except for the
/// session deadline, when one is set. Deltas are maintenance, not
/// statements — memory budgets and cancel tokens do not apply — but a
/// slow regrouping must not stall the mutating statement past the
/// session's own patience.
fn delta_governor(deadline: Option<Duration>) -> QueryGovernor {
    match deadline {
        Some(d) => QueryGovernor::unrestricted().with_deadline(d),
        None => QueryGovernor::unrestricted(),
    }
}

/// The maintained grouping, dimension-erased.
#[derive(Clone, Debug)]
pub(crate) enum Maintained {
    D2(MaintainedGrouping<2>),
    D3(MaintainedGrouping<3>),
}

impl Maintained {
    /// Applies one inserted row as a governed delta. An `Err` means the
    /// maintained state may be mid-transaction — the caller must recover
    /// by rebuilding from the table's rows (see [`Subscription::recover`]).
    fn try_insert_row(
        &mut self,
        coords: &[BoundExpr],
        row: &Row,
        governor: &QueryGovernor,
    ) -> Result<usize> {
        match self {
            Maintained::D2(m) => {
                let pts = extract_points::<2>(std::slice::from_ref(row), coords)?;
                Ok(m.try_insert(pts[0], governor)?)
            }
            Maintained::D3(m) => {
                let pts = extract_points::<3>(std::slice::from_ref(row), coords)?;
                Ok(m.try_insert(pts[0], governor)?)
            }
        }
    }

    /// Applies one deletion as a governed delta; same recovery contract
    /// as [`Maintained::try_insert_row`].
    fn try_delete(&mut self, slot: usize, governor: &QueryGovernor) -> Result<bool> {
        match self {
            Maintained::D2(m) => Ok(m.try_delete(slot, governor)?),
            Maintained::D3(m) => Ok(m.try_delete(slot, governor)?),
        }
    }

    /// A fresh maintained grouping over `rows` under the same query
    /// configuration — the recovery path after a failed delta.
    fn rebuilt_from(&self, coords: &[BoundExpr], rows: &[Row]) -> Result<Maintained> {
        match self {
            Maintained::D2(m) => {
                let points = extract_points::<2>(rows, coords)?;
                Ok(Maintained::D2(MaintainedGrouping::new(
                    m.query().clone(),
                    &points,
                )))
            }
            Maintained::D3(m) => {
                let points = extract_points::<3>(rows, coords)?;
                Ok(Maintained::D3(MaintainedGrouping::new(
                    m.query().clone(),
                    &points,
                )))
            }
        }
    }

    fn advance_epoch_to(&mut self, floor: u64) {
        match self {
            Maintained::D2(m) => m.advance_epoch_to(floor),
            Maintained::D3(m) => m.advance_epoch_to(floor),
        }
    }

    fn snapshot(&mut self) -> Grouping {
        match self {
            Maintained::D2(m) => m.snapshot(),
            Maintained::D3(m) => m.snapshot(),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            Maintained::D2(m) => m.epoch(),
            Maintained::D3(m) => m.epoch(),
        }
    }
}

/// Writer-side state of one subscription.
#[derive(Debug)]
struct Subscription {
    id: usize,
    /// Lower-cased catalog table name.
    table: String,
    /// Cache-style key of the bound grouping attributes (see
    /// [`crate::cache::slot_key`]) — two queries with the same key extract
    /// the same points from the same rows.
    coords_key: String,
    /// The bound grouping attribute expressions, for extracting the point
    /// of each inserted row.
    coords: Vec<BoundExpr>,
    /// Result-relevant query identity, for serve/EXPLAIN matching.
    key: QueryKey,
    /// Maintained slot of each current table row, in row order. Rows only
    /// ever append (INSERT) or vanish (DELETE) — never reorder — so the
    /// maintained grouping's dense record ids coincide with row indices.
    row_slots: Vec<usize>,
    maintained: Maintained,
    shared: Arc<Shared>,
}

impl Subscription {
    fn handle(&self) -> SubscriptionHandle {
        SubscriptionHandle {
            id: self.id,
            table: self.table.clone(),
            shared: Arc::clone(&self.shared),
        }
    }

    fn deactivate(&self) {
        self.shared.active.store(false, Ordering::Release);
    }

    fn is_active(&self) -> bool {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Rebuilds and atomically publishes the snapshot. The (possibly lazy)
    /// regrouping work happens here on the writer, outside the lock; the
    /// write lock is held only for the pointer swap.
    fn publish(&mut self, table_version: u64) {
        let snapshot = Arc::new(GroupingSnapshot {
            grouping: self.maintained.snapshot(),
            epoch: self.maintained.epoch(),
            table_version,
        });
        *self
            .shared
            .snapshot
            .write()
            .unwrap_or_else(|e| e.into_inner()) = snapshot;
    }

    /// Recovery after a delta failed mid-apply (an injected fault or a
    /// governed abort): the maintained state may be mid-transaction, so it
    /// is rebuilt wholesale from the table's current rows — the source of
    /// truth — under the same query configuration, and the epoch is
    /// advanced past everything previously published so snapshot epochs
    /// stay strictly monotone. Only when even the rebuild fails (e.g. the
    /// table now holds a row with non-numeric grouping attributes) does
    /// the subscription deactivate, keeping the last snapshot readable.
    fn recover(&mut self, all_rows: &[Row], version: u64) {
        let floor = self.maintained.epoch() + 1;
        match self.maintained.rebuilt_from(&self.coords, all_rows) {
            Ok(mut rebuilt) => {
                rebuilt.advance_epoch_to(floor);
                self.maintained = rebuilt;
                self.row_slots = (0..all_rows.len()).collect();
                self.publish(version);
            }
            Err(_) => self.deactivate(),
        }
    }

    /// The published snapshot, when it reflects `version` — the serve /
    /// EXPLAIN freshness test.
    fn fresh_snapshot(&self, version: u64) -> Option<Arc<GroupingSnapshot>> {
        if !self.is_active() {
            return None;
        }
        let snap = self
            .shared
            .snapshot
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        (snap.table_version == version).then_some(snap)
    }
}

/// All subscriptions of one session. Owned by [`crate::Database`]; the
/// engine notifies it after every mutating statement.
#[derive(Debug, Default)]
pub(crate) struct SubscriptionSet {
    subs: Vec<Subscription>,
    next_id: usize,
}

impl SubscriptionSet {
    /// Registers a subscription whose maintained grouping was just built
    /// from the table's current `n_rows` rows at `version`, and publishes
    /// the initial snapshot (epoch 0).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn register(
        &mut self,
        table: String,
        coords_key: String,
        coords: Vec<BoundExpr>,
        key: QueryKey,
        mut maintained: Maintained,
        n_rows: usize,
        version: u64,
    ) -> SubscriptionHandle {
        let id = self.next_id;
        self.next_id += 1;
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(GroupingSnapshot {
                grouping: maintained.snapshot(),
                epoch: maintained.epoch(),
                table_version: version,
            })),
            active: AtomicBool::new(true),
        });
        let sub = Subscription {
            id,
            table,
            coords_key,
            coords,
            key,
            row_slots: (0..n_rows).collect(),
            maintained,
            shared,
        };
        let handle = sub.handle();
        self.subs.push(sub);
        handle
    }

    /// Applies the rows just appended to `table` (now at `version`,
    /// `all_rows` its full post-insert contents) and republishes. A delta
    /// that fails mid-apply triggers [`Subscription::recover`]: the
    /// grouping is rebuilt from `all_rows` with a strictly advancing
    /// epoch, so readers never observe a half-applied delta or an epoch
    /// rollback. Exception: a delta that overruns the session `deadline`
    /// is **rejected atomically** — the pre-delta state is restored,
    /// nothing is published (the snapshot epoch does not advance), and the
    /// subscription deactivates, because its maintained state would
    /// otherwise desynchronise from the table's rows the next time a delta
    /// arrived.
    pub(crate) fn on_insert(
        &mut self,
        table: &str,
        rows: &[Row],
        all_rows: &[Row],
        version: u64,
        deadline: Option<Duration>,
        registry: &MetricsRegistry,
    ) {
        let governor = delta_governor(deadline);
        for sub in self.subs.iter_mut() {
            if sub.table != table || !sub.is_active() {
                continue;
            }
            // The rollback copy is only taken when a deadline could
            // actually reject the delta; the common ungoverned path clones
            // nothing.
            let backup = deadline.map(|_| (sub.maintained.clone(), sub.row_slots.clone()));
            let mut err = None;
            for row in rows {
                match sub.maintained.try_insert_row(&sub.coords, row, &governor) {
                    Ok(slot) => sub.row_slots.push(slot),
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            match err {
                None => {
                    sub.publish(version);
                    registry.inc(DELTAS_COUNTER, &[("outcome", "applied")], 1);
                }
                Some(Error::Aborted(SgbError::Timeout)) => {
                    if let Some((maintained, row_slots)) = backup {
                        sub.maintained = maintained;
                        sub.row_slots = row_slots;
                    }
                    sub.deactivate();
                    registry.inc(DELTAS_COUNTER, &[("outcome", "rejected")], 1);
                }
                Some(_) => {
                    sub.recover(all_rows, version);
                    registry.inc(DELTAS_COUNTER, &[("outcome", "recovered")], 1);
                }
            }
        }
    }

    /// Applies a deletion of `removed` (ascending pre-delete row indices)
    /// from `table` (now at `version`, `all_rows` its full post-delete
    /// contents) and republishes; failed and deadline-rejected deltas are
    /// handled exactly as in [`SubscriptionSet::on_insert`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_delete(
        &mut self,
        table: &str,
        removed: &[usize],
        all_rows: &[Row],
        version: u64,
        deadline: Option<Duration>,
        registry: &MetricsRegistry,
    ) {
        let governor = delta_governor(deadline);
        for sub in self.subs.iter_mut() {
            if sub.table != table || !sub.is_active() {
                continue;
            }
            let backup = deadline.map(|_| (sub.maintained.clone(), sub.row_slots.clone()));
            let mut keep = vec![true; sub.row_slots.len()];
            let mut err = None;
            for &i in removed {
                if let Some(k) = keep.get_mut(i) {
                    *k = false;
                    if let Err(e) = sub.maintained.try_delete(sub.row_slots[i], &governor) {
                        err = Some(e);
                        break;
                    }
                }
            }
            match err {
                None => {
                    let mut it = keep.iter();
                    sub.row_slots.retain(|_| matches!(it.next(), Some(true)));
                    sub.publish(version);
                    registry.inc(DELTAS_COUNTER, &[("outcome", "applied")], 1);
                }
                Some(Error::Aborted(SgbError::Timeout)) => {
                    if let Some((maintained, row_slots)) = backup {
                        sub.maintained = maintained;
                        sub.row_slots = row_slots;
                    }
                    sub.deactivate();
                    registry.inc(DELTAS_COUNTER, &[("outcome", "rejected")], 1);
                }
                Some(_) => {
                    sub.recover(all_rows, version);
                    registry.inc(DELTAS_COUNTER, &[("outcome", "recovered")], 1);
                }
            }
        }
    }

    /// Drops every subscription of `table` (deactivating their handles) —
    /// the table was dropped or wholesale-replaced.
    pub(crate) fn on_drop(&mut self, table: &str) {
        self.subs.retain(|sub| {
            if sub.table == table {
                sub.deactivate();
                false
            } else {
                true
            }
        });
    }

    /// EXPLAIN probe: the id/epoch of an active subscription matching the
    /// node and fresh at `version`, if any.
    pub(crate) fn probe(
        &self,
        table: &str,
        coords_key: &str,
        key: &QueryKey,
        version: u64,
    ) -> Option<SnapshotInfo> {
        self.lookup(table, coords_key, key, version)
            .map(|(id, snap)| SnapshotInfo {
                id,
                epoch: snap.epoch,
            })
    }

    /// Executor serve: the published grouping of an active subscription
    /// matching the node and fresh at `version`, if any.
    pub(crate) fn serve(
        &self,
        table: &str,
        coords_key: &str,
        key: &QueryKey,
        version: u64,
    ) -> Option<Grouping> {
        self.lookup(table, coords_key, key, version)
            .map(|(_, snap)| snap.grouping.clone())
    }

    fn lookup(
        &self,
        table: &str,
        coords_key: &str,
        key: &QueryKey,
        version: u64,
    ) -> Option<(usize, Arc<GroupingSnapshot>)> {
        self.subs.iter().find_map(|sub| {
            if sub.table == table && sub.coords_key == coords_key && &sub.key == key {
                sub.fresh_snapshot(version).map(|s| (sub.id, s))
            } else {
                None
            }
        })
    }
}

/// Builds the dimension-erased maintained grouping of a subscription from
/// the table's current rows.
pub(crate) fn build_maintained(
    rows: &[Row],
    coords: &[BoundExpr],
    build2: impl FnOnce() -> Result<sgb_core::SgbQuery<2>>,
    build3: impl FnOnce() -> Result<sgb_core::SgbQuery<3>>,
) -> Result<Maintained> {
    match coords.len() {
        2 => {
            let points = extract_points::<2>(rows, coords)?;
            Ok(Maintained::D2(MaintainedGrouping::new(build2()?, &points)))
        }
        3 => {
            let points = extract_points::<3>(rows, coords)?;
            Ok(Maintained::D3(MaintainedGrouping::new(build3()?, &points)))
        }
        n => Err(Error::Unsupported(format!(
            "similarity grouping over {n} attributes (2 or 3 supported)"
        ))),
    }
}
