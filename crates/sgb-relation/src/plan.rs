//! Physical query plans.
//!
//! The planner lowers a parsed [`crate::sql::Select`] into this tree; the
//! executor (`crate::exec`) materialises it bottom-up. The similarity
//! group-by is a *first-class operator node* ([`Plan::SimilarityGroupBy`]),
//! composing with scans, filters, joins and projections exactly as the
//! paper's PostgreSQL integration does (Section 8.2).

use sgb_core::{Algorithm, OverlapAction};
use sgb_geom::Metric;

use crate::expr::BoundExpr;
use crate::schema::Schema;

/// Aggregate function kinds supported by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    /// `count(*)` — row count.
    CountStar,
    /// `count(expr)` — non-null count.
    Count,
    /// `sum(expr)`.
    Sum,
    /// `avg(expr)`.
    Avg,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
    /// `array_agg(expr)` — rendered as a `{v1,v2,…}` string.
    ArrayAgg,
}

impl AggKind {
    /// Maps a SQL function name (lower-case) to an aggregate kind.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "count" => Some(AggKind::Count),
            "sum" => Some(AggKind::Sum),
            "avg" => Some(AggKind::Avg),
            "min" => Some(AggKind::Min),
            "max" => Some(AggKind::Max),
            "array_agg" | "list_id" => Some(AggKind::ArrayAgg),
            _ => None,
        }
    }
}

/// One aggregate call: kind plus argument (absent for `count(*)`),
/// bound against the aggregate node's input.
#[derive(Clone, Debug)]
pub struct AggCall {
    /// Aggregate kind.
    pub kind: AggKind,
    /// Argument expression (`None` only for [`AggKind::CountStar`]).
    pub arg: Option<BoundExpr>,
}

/// What the session's index cache will do for a similarity node — resolved
/// at plan time so `EXPLAIN` can report it, and rendered as the trailing
/// `index: …` note of the node's path block.
///
/// The planner only *probes* the cache (read-only); the counters in
/// [`crate::Database::cache_stats`] move when the executor actually
/// fetches or builds the index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexCacheStatus {
    /// A usable cached index exists for the table version — the executor
    /// will reuse it (`index: cached (hit)`).
    Hit,
    /// No usable cached index — the executor builds one and caches it
    /// (`index: built`).
    Built,
    /// The session cache is disabled; the index is built and thrown away
    /// (`index: built (session cache disabled)`).
    Disabled,
    /// The resolved path uses no spatial index at all (`index: none`) —
    /// plain scans, and every SGB-All path (its arbitration is
    /// arrival-order sensitive, so its state is never shareable).
    NotApplicable,
}

impl std::fmt::Display for IndexCacheStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IndexCacheStatus::Hit => "cached (hit)",
            IndexCacheStatus::Built => "built",
            IndexCacheStatus::Disabled => "built (session cache disabled)",
            IndexCacheStatus::NotApplicable => "none",
        })
    }
}

/// Serve-from-subscription annotation of a similarity node: the planner
/// found an active subscription ([`crate::Database::subscribe`]) whose
/// published snapshot matches the node's table, grouping attributes, and
/// result-relevant operator parameters at the table's current version —
/// the executor serves the grouping from the snapshot instead of
/// recomputing. Rendered by `EXPLAIN` as
/// `snapshot: subscription #id (epoch N)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Session-unique subscription id.
    pub id: usize,
    /// Maintenance epoch of the published snapshot (row deltas applied
    /// since registration).
    pub epoch: u64,
}

impl std::fmt::Display for SnapshotInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "subscription #{} (epoch {})", self.id, self.epoch)
    }
}

/// Parameters of a similarity group-by node.
///
/// The `algorithm` fields carry the **resolved** concrete strategy in the
/// family-wide [`Algorithm`] vocabulary: when the session option is
/// `Auto`, the planner runs the cost model (`sgb_core::cost`) against the
/// estimated input cardinality at plan time, and `selection` records why
/// that path was chosen (or that it was pinned by the session options) —
/// both surface in `EXPLAIN`, telling the same story the core API's
/// `Grouping::resolved_algorithm` does.
#[derive(Clone, Debug)]
pub enum SgbMode {
    /// `DISTANCE-TO-ALL` (clique groups, Section 4.1).
    All {
        /// Threshold ε.
        eps: f64,
        /// Distance function.
        metric: Metric,
        /// Overlap arbitration.
        overlap: OverlapAction,
        /// Search algorithm (resolved — never `Auto`).
        algorithm: Algorithm,
        /// Seed for `JOIN-ANY`.
        seed: u64,
        /// Worker threads the executor will use (always 1: SGB-All's
        /// arbitration is arrival-order sensitive).
        threads: usize,
        /// Why `algorithm` was chosen ("configured explicitly" or the
        /// cost model's reason).
        selection: String,
        /// Cache disposition of the node's spatial index (always
        /// [`IndexCacheStatus::NotApplicable`] for SGB-All).
        index: IndexCacheStatus,
    },
    /// `DISTANCE-TO-ANY` (connected components, Section 4.2).
    Any {
        /// Threshold ε.
        eps: f64,
        /// Distance function.
        metric: Metric,
        /// Search algorithm (resolved — never `Auto`).
        algorithm: Algorithm,
        /// Worker threads the executor will use (resolved at plan time
        /// from the session's `threads` option and the estimated input
        /// cardinality; only the grid path shards, so this is 1 for the
        /// other algorithms).
        threads: usize,
        /// Why `algorithm` was chosen ("configured explicitly" or the
        /// cost model's reason).
        selection: String,
        /// Cache disposition of the node's spatial index.
        index: IndexCacheStatus,
    },
}

/// Per-plan-node actuals collected by an `EXPLAIN ANALYZE` execution:
/// inclusive wall-clock time, output row count, and an optional
/// operator-specific detail string (similarity nodes report group and
/// candidate counts plus the phase breakdown of their query profile).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeStat {
    /// Inclusive elapsed wall-clock nanoseconds (node + its inputs).
    pub elapsed_nanos: u64,
    /// Rows the node produced.
    pub rows: usize,
    /// Operator-specific annotation; empty when the operator has none.
    pub detail: String,
}

/// A physical plan node. Every node knows its output [`Schema`].
#[derive(Clone, Debug)]
pub enum Plan {
    /// Full scan of a catalog table.
    Scan {
        /// Table name in the catalog.
        table: String,
        /// Output schema (possibly re-qualified by an alias).
        schema: Schema,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate (kept rows evaluate to SQL TRUE).
        predicate: BoundExpr,
    },
    /// Expression projection.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output expressions.
        exprs: Vec<BoundExpr>,
        /// Output schema.
        schema: Schema,
    },
    /// Inner equi-join (hash build on the right input).
    HashJoin {
        /// Left (probe) input.
        left: Box<Plan>,
        /// Right (build) input.
        right: Box<Plan>,
        /// Key expressions over the left schema.
        left_keys: Vec<BoundExpr>,
        /// Key expressions over the right schema.
        right_keys: Vec<BoundExpr>,
        /// Concatenated output schema.
        schema: Schema,
    },
    /// Cartesian product (fallback when no equi-key connects the inputs).
    CrossJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Concatenated output schema.
        schema: Schema,
    },
    /// Standard (equality) hash aggregation.
    ///
    /// Internal row layout: `[group values…, aggregate results…]`;
    /// `having` and `outputs` are bound against that layout.
    HashAggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Group-key expressions over the input schema.
        group_exprs: Vec<BoundExpr>,
        /// Aggregate calls over the input schema.
        aggs: Vec<AggCall>,
        /// Post-grouping filter over the internal layout.
        having: Option<BoundExpr>,
        /// Output expressions over the internal layout.
        outputs: Vec<BoundExpr>,
        /// Output schema.
        schema: Schema,
    },
    /// Similarity group-by (SGB-All / SGB-Any).
    ///
    /// Internal row layout: `[aggregate results…]` (similarity groups have
    /// no single grouping value); `having` and `outputs` bind against it.
    SimilarityGroupBy {
        /// Input plan.
        input: Box<Plan>,
        /// Coordinates of the grouping point (two or three expressions),
        /// over the input schema.
        coords: Vec<BoundExpr>,
        /// Operator parameters.
        mode: SgbMode,
        /// Set when a fresh subscription snapshot will serve this node.
        snapshot: Option<SnapshotInfo>,
        /// Aggregate calls over the input schema.
        aggs: Vec<AggCall>,
        /// Post-grouping filter over the internal layout.
        having: Option<BoundExpr>,
        /// Output expressions over the internal layout.
        outputs: Vec<BoundExpr>,
        /// Output schema.
        schema: Schema,
    },
    /// SGB-Around: nearest-center grouping around query-supplied seeds.
    ///
    /// Internal row layout: `[aggregate results…]`, as for
    /// [`Plan::SimilarityGroupBy`]. Tuples beyond `radius` (when set) form
    /// a single outlier group, emitted after the center groups.
    SimilarityAround {
        /// Input plan.
        input: Box<Plan>,
        /// Coordinates of the grouping point (two or three expressions),
        /// over the input schema.
        coords: Vec<BoundExpr>,
        /// Center coordinates; inner length equals `coords.len()`.
        centers: Vec<Vec<f64>>,
        /// Distance function.
        metric: Metric,
        /// Optional maximum radius (`WITHIN r`).
        radius: Option<f64>,
        /// Search strategy (resolved — never `Auto`; `AllPairs` is the
        /// brute center scan, `Indexed` the center R-tree, `Grid` the
        /// center grid).
        algorithm: Algorithm,
        /// Worker threads the executor will use (resolved at plan time;
        /// the nearest-center assignment parallelises on every path).
        threads: usize,
        /// Why `algorithm` was chosen ("configured explicitly" or the
        /// cost model's reason).
        selection: String,
        /// Cache disposition of the node's center index.
        index: IndexCacheStatus,
        /// Set when a fresh subscription snapshot will serve this node.
        snapshot: Option<SnapshotInfo>,
        /// Aggregate calls over the input schema.
        aggs: Vec<AggCall>,
        /// Post-grouping filter over the internal layout.
        having: Option<BoundExpr>,
        /// Output expressions over the internal layout.
        outputs: Vec<BoundExpr>,
        /// Output schema.
        schema: Schema,
    },
    /// Sort by output expressions.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// `(key expression, descending)` pairs over the input schema.
        keys: Vec<(BoundExpr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Maximum rows.
        n: usize,
    },
}

impl Plan {
    /// The node's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            Plan::Scan { schema, .. }
            | Plan::Project { schema, .. }
            | Plan::HashJoin { schema, .. }
            | Plan::CrossJoin { schema, .. }
            | Plan::HashAggregate { schema, .. }
            | Plan::SimilarityGroupBy { schema, .. }
            | Plan::SimilarityAround { schema, .. } => schema,
            Plan::Filter { input, .. } | Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
                input.schema()
            }
        }
    }

    /// The node's direct inputs, in executor order (joins: left, right).
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } => Vec::new(),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::HashAggregate { input, .. }
            | Plan::SimilarityGroupBy { input, .. }
            | Plan::SimilarityAround { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => vec![input],
            Plan::HashJoin { left, right, .. } | Plan::CrossJoin { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Total node count of the subtree rooted here (pre-order size).
    pub(crate) fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// The node's one-line `EXPLAIN` label (no indentation, no newline).
    fn node_label(&self) -> String {
        match self {
            Plan::Scan { table, .. } => format!("Scan {table}"),
            Plan::Filter { .. } => "Filter".to_owned(),
            Plan::Project { exprs, .. } => format!("Project ({} exprs)", exprs.len()),
            Plan::HashJoin { left_keys, .. } => format!("HashJoin ({} keys)", left_keys.len()),
            Plan::CrossJoin { .. } => "CrossJoin".to_owned(),
            Plan::HashAggregate {
                group_exprs, aggs, ..
            } => format!(
                "HashAggregate (groups: {}, aggs: {})",
                group_exprs.len(),
                aggs.len()
            ),
            Plan::SimilarityGroupBy {
                mode,
                snapshot,
                aggs,
                ..
            } => {
                let (desc, path) = match mode {
                    SgbMode::All {
                        eps,
                        metric,
                        overlap,
                        algorithm,
                        threads,
                        selection,
                        index,
                        ..
                    } => (
                        format!(
                            "SGB-All {} WITHIN {eps} ON-OVERLAP {}",
                            metric.sql_keyword(),
                            overlap.sql_keyword()
                        ),
                        format!(
                            "path: {algorithm}, threads: {threads}; {selection}; index: {index}"
                        ),
                    ),
                    SgbMode::Any {
                        eps,
                        metric,
                        algorithm,
                        threads,
                        selection,
                        index,
                    } => (
                        format!("SGB-Any {} WITHIN {eps}", metric.sql_keyword()),
                        format!(
                            "path: {algorithm}, threads: {threads}; {selection}; index: {index}"
                        ),
                    ),
                };
                let path = match snapshot {
                    Some(s) => format!("{path}; snapshot: {s}"),
                    None => path,
                };
                format!("SimilarityGroupBy [{desc}] [{path}] (aggs: {})", aggs.len())
            }
            Plan::SimilarityAround {
                centers,
                metric,
                radius,
                algorithm,
                threads,
                selection,
                index,
                snapshot,
                aggs,
                ..
            } => {
                let bound = match radius {
                    Some(r) => format!(" WITHIN {r}"),
                    None => String::new(),
                };
                let snap = match snapshot {
                    Some(s) => format!("; snapshot: {s}"),
                    None => String::new(),
                };
                format!(
                    "SimilarityAround [{} centers, {}{bound}, path: {algorithm}, \
                     threads: {threads}] [{selection}; index: {index}{snap}] (aggs: {})",
                    centers.len(),
                    metric.sql_keyword(),
                    aggs.len()
                )
            }
            Plan::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
            Plan::Limit { n, .. } => format!("Limit {n}"),
        }
    }

    /// An `EXPLAIN`-style indented tree rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push_str(&self.node_label());
        out.push('\n');
        for child in self.children() {
            child.explain_into(depth + 1, out);
        }
    }

    /// The `EXPLAIN ANALYZE` rendering: the `explain` tree with every
    /// node's actual inclusive time, output row count, and operator
    /// detail appended. `stats` is indexed in pre-order (joins: left
    /// subtree before right), exactly as the executor's instrumented walk
    /// (`exec::execute_with_stats`) fills it.
    pub fn explain_analyze(&self, stats: &[NodeStat]) -> String {
        let mut out = String::new();
        let mut idx = 0;
        self.analyze_into(0, &mut idx, stats, &mut out);
        out
    }

    fn analyze_into(&self, depth: usize, idx: &mut usize, stats: &[NodeStat], out: &mut String) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push_str(&self.node_label());
        if let Some(stat) = stats.get(*idx) {
            let ms = stat.elapsed_nanos as f64 / 1e6;
            out.push_str(&format!(" (actual time: {ms:.3} ms, rows: {}", stat.rows));
            if !stat.detail.is_empty() {
                out.push_str(", ");
                out.push_str(&stat.detail);
            }
            out.push(')');
        }
        out.push('\n');
        *idx += 1;
        for child in self.children() {
            child.analyze_into(depth + 1, idx, stats, out);
        }
    }
}
