//! SQL front-end: tokenizer, AST, and parser with the similarity group-by
//! grammar extension.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, GroupBy, OrderKey, Select, SelectItem, Statement, TableRef};
pub use parser::{parse_select, parse_statement};
