//! SQL tokenizer.

use crate::error::{Error, Result};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
}

impl Token {
    /// `true` when the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes `input`, skipping whitespace and `--` line comments.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(Error::Parse("stray '!'".into()));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Multi-byte UTF-8 safe: copy the full char.
                        let ch = input[i..].chars().next().unwrap();
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        Error::Parse(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        Error::Parse(format!("bad integer literal '{text}'"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                // Reject anything else, including non-ASCII: step over the
                // *whole* character so the error does not split a UTF-8
                // sequence.
                let ch = input[i..].chars().next().unwrap_or(other);
                return Err(Error::Parse(format!("unexpected character '{ch}'")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query_tokens() {
        let toks = tokenize("SELECT count(*) FROM t WHERE a >= 1.5;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("count".into()),
                Token::LParen,
                Token::Star,
                Token::RParen,
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("a".into()),
                Token::Ge,
                Token::Float(1.5),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn hyphenated_similarity_keywords_split() {
        let toks = tokenize("GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3").unwrap();
        assert!(toks.contains(&Token::Minus));
        assert!(toks.iter().any(|t| t.is_kw("distance")));
        assert!(toks.iter().any(|t| t.is_kw("linf")));
        assert_eq!(*toks.last().unwrap(), Token::Int(3));
    }

    #[test]
    fn string_literals_and_escapes() {
        let toks = tokenize("'abc' 'it''s' ''").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Str("abc".into()),
                Token::Str("it's".into()),
                Token::Str("".into())
            ]
        );
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT a -- trailing comment\nFROM t").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("< <= > >= = <> !=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("1e3 2.5E-2 7").unwrap();
        assert_eq!(
            toks,
            vec![Token::Float(1000.0), Token::Float(0.025), Token::Int(7)]
        );
    }

    #[test]
    fn qualified_names() {
        let toks = tokenize("r1.c_custkey").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("r1".into()),
                Token::Dot,
                Token::Ident("c_custkey".into())
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn non_ascii_outside_strings_is_rejected_not_panicking() {
        // Regression (found by proptest): multi-byte characters used to be
        // byte-indexed into identifiers and panic on slicing.
        assert!(tokenize("SELECT café FROM t").is_err());
        assert!(tokenize("é").is_err());
        assert!(tokenize("\u{00A0}").is_err()); // non-breaking space
                                                // Inside string literals any UTF-8 is fine.
        assert_eq!(tokenize("'café'").unwrap(), vec![Token::Str("café".into())]);
    }
}
