//! Parser-level abstract syntax tree.

use sgb_core::OverlapAction;
use sgb_geom::Metric;

use crate::expr::BinOp;
use crate::value::Value;

/// A parsed expression (names unresolved).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal constant (numbers, strings, dates, intervals, booleans).
    Literal(Value),
    /// Column reference, optionally qualified.
    Column {
        /// Table / alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Function call — aggregate (`count`, `sum`, `avg`, `min`, `max`,
    /// `array_agg`) or scalar.
    Func {
        /// Lower-cased function name.
        name: String,
        /// Arguments (empty with `star` for `count(*)`).
        args: Vec<Expr>,
        /// `true` for `f(*)`.
        star: bool,
    },
    /// `expr [NOT] IN (SELECT …)` (uncorrelated).
    InSubquery {
        /// Probe expression.
        expr: Box<Expr>,
        /// The subquery.
        query: Box<Select>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList {
        /// Probe expression.
        expr: Box<Expr>,
        /// List items (constant expressions).
        list: Vec<Expr>,
        /// `NOT IN` when true.
        negated: bool,
    },
}

/// A select-list item.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

/// A FROM-clause item.
#[derive(Clone, Debug, PartialEq)]
pub enum TableRef {
    /// `name [AS alias]`
    Named {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// `(SELECT …) AS alias`
    Subquery {
        /// The derived table.
        query: Box<Select>,
        /// Mandatory alias.
        alias: String,
    },
}

impl TableRef {
    /// The name this item is referred to by (alias wins).
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Named { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Subquery { alias, .. } => alias,
        }
    }
}

/// The GROUP BY clause: standard (equality) or one of the paper's two
/// similarity variants (Section 4).
#[derive(Clone, Debug, PartialEq)]
pub enum GroupBy {
    /// Plain `GROUP BY e1, e2, …` — equality grouping.
    Standard(Vec<Expr>),
    /// `GROUP BY x, y DISTANCE-TO-ALL [L1|L2|LINF] WITHIN ε
    ///  ON-OVERLAP [JOIN-ANY|ELIMINATE|FORM-NEW-GROUP]`.
    SimilarityAll {
        /// The two grouping attribute expressions (the multi-dimensional
        /// point).
        exprs: Vec<Expr>,
        /// Distance function.
        metric: Metric,
        /// Similarity threshold ε.
        eps: f64,
        /// Overlap arbitration.
        overlap: OverlapAction,
    },
    /// `GROUP BY x, y DISTANCE-TO-ANY [L1|L2|LINF] WITHIN ε`.
    SimilarityAny {
        /// The grouping attribute expressions.
        exprs: Vec<Expr>,
        /// Distance function.
        metric: Metric,
        /// Similarity threshold ε.
        eps: f64,
    },
    /// `GROUP BY x, y AROUND ((cx, cy), …) [L1|L2|LINF] [WITHIN r]` —
    /// nearest-center grouping around query-supplied seeds.
    SimilarityAround {
        /// The grouping attribute expressions.
        exprs: Vec<Expr>,
        /// Center coordinates; each inner vector has exactly
        /// `exprs.len()` components (enforced by the parser).
        centers: Vec<Vec<f64>>,
        /// Distance function.
        metric: Metric,
        /// Optional maximum radius; tuples farther than this from every
        /// center form the outlier group.
        radius: Option<f64>,
    },
}

/// One ORDER BY key.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// `true` for descending.
    pub desc: bool,
}

/// A parsed SELECT statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM items (comma-joined).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY clause.
    pub group_by: Option<GroupBy>,
    /// HAVING predicate (may contain aggregates).
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

/// A top-level statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// A query.
    Select(Box<Select>),
    /// `CREATE TABLE name (col type, …)` — types are parsed and discarded
    /// (cells are dynamically typed).
    CreateTable {
        /// Table name.
        name: String,
        /// Column names.
        columns: Vec<String>,
    },
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<Expr>>,
    },
    /// `DELETE FROM name [WHERE pred]`.
    Delete {
        /// Target table.
        table: String,
        /// Row predicate; `None` deletes every row.
        predicate: Option<Expr>,
    },
    /// `UPDATE name SET col = expr, … [WHERE pred]` — executed as a
    /// delete+insert pair through the incremental-maintenance path.
    Update {
        /// Target table.
        table: String,
        /// `col = expr` assignments, in statement order.
        assignments: Vec<(String, Expr)>,
        /// Row predicate; `None` updates every row.
        predicate: Option<Expr>,
    },
    /// `SET name = value` — a session option (e.g. `STATEMENT_TIMEOUT`).
    SetOption {
        /// Option name (original spelling; matched case-insensitively).
        name: String,
        /// Constant value expression.
        value: Expr,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `EXPLAIN [ANALYZE] SELECT …` — render the physical plan; with
    /// `ANALYZE`, execute the query and annotate every plan node with its
    /// actual elapsed time, output row count, and operator detail.
    Explain {
        /// `true` for `EXPLAIN ANALYZE` (executes the query).
        analyze: bool,
        /// The query being explained.
        query: Box<Select>,
    },
}
