//! Recursive-descent SQL parser, including the paper's similarity
//! group-by grammar extension (Section 4):
//!
//! ```sql
//! SELECT count(*) FROM gps_points
//! GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3
//! ON-OVERLAP FORM-NEW-GROUP
//! ```
//!
//! Both the formal syntax of Section 4 (`DISTANCE-TO-ALL L2 WITHIN ε
//! ON-OVERLAP …`) and the Table 2 spelling (`DISTANCE-ALL WITHIN ε USING
//! ltwo on overlap join-any`) are accepted.

use sgb_core::OverlapAction;
use sgb_geom::Metric;

use crate::error::{Error, Result};
use crate::expr::BinOp;
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Token};
use crate::value::{parse_date, Value};

/// Keywords that terminate expressions / cannot serve as implicit aliases.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "by", "having", "order", "limit", "as", "on", "and", "or",
    "not", "in", "asc", "desc", "distance", "around", "within", "using", "values", "union",
];

/// The error for a metric keyword the grammar does not know, naming every
/// accepted spelling (Table 2's `lone`/`ltwo` included).
fn unknown_metric_error(word: &str) -> Error {
    Error::Parse(format!(
        "unknown distance metric '{word}'; valid metrics: {}",
        Metric::SQL_KEYWORDS.join(", ")
    ))
}

/// Parses one statement (query or DDL/DML).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    p.expect_end()?;
    Ok(stmt)
}

/// Parses a SELECT query.
pub fn parse_select(sql: &str) -> Result<Select> {
    match parse_statement(sql)? {
        Statement::Select(s) => Ok(*s),
        other => Err(Error::Parse(format!("expected a SELECT, got {other:?}"))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self> {
        Ok(Self {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "trailing tokens starting at {:?}",
                self.peek()
            )))
        }
    }

    /// Reads a hyphen-joined identifier chain (`FORM-NEW-GROUP` →
    /// `"FORM-NEW-GROUP"`), upper-cased.
    fn hyphen_ident(&mut self) -> Result<String> {
        let mut s = self.expect_ident()?.to_ascii_uppercase();
        while self.peek() == Some(&Token::Minus) && matches!(self.peek2(), Some(Token::Ident(_))) {
            self.pos += 1; // '-'
            s.push('-');
            s.push_str(&self.expect_ident()?.to_ascii_uppercase());
        }
        Ok(s)
    }

    // -- statements ---------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(t) if t.is_kw("select") => Ok(Statement::Select(Box::new(self.select()?))),
            Some(t) if t.is_kw("create") => self.create_table(),
            Some(t) if t.is_kw("insert") => self.insert(),
            Some(t) if t.is_kw("delete") => self.delete(),
            Some(t) if t.is_kw("update") => self.update(),
            Some(t) if t.is_kw("set") => self.set_option(),
            Some(t) if t.is_kw("drop") => self.drop_table(),
            Some(t) if t.is_kw("explain") => self.explain_stmt(),
            other => Err(Error::Parse(format!(
                "expected a statement, found {other:?}"
            ))),
        }
    }

    fn explain_stmt(&mut self) -> Result<Statement> {
        self.expect_kw("explain")?;
        let analyze = self.eat_kw("analyze");
        let query = Box::new(self.select()?);
        Ok(Statement::Explain { analyze, query })
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        self.expect_kw("table")?;
        let name = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            // Optional type words (`DOUBLE PRECISION`, `VARCHAR(10)`,
            // `INT NOT NULL`, …), discarded: the engine is dynamically
            // typed. Everything up to the next ',' or ')' belongs to the
            // type/constraint clause.
            while matches!(self.peek(), Some(Token::Ident(_))) {
                self.next();
                if self.eat(&Token::LParen) {
                    while !self.eat(&Token::RParen) {
                        self.next()
                            .ok_or_else(|| Error::Parse("unterminated type args".into()))?;
                    }
                }
            }
            columns.push(col);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.expect_ident()?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.expect_ident()?;
        let predicate = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("update")?;
        let table = self.expect_ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect(&Token::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            predicate,
        })
    }

    fn set_option(&mut self) -> Result<Statement> {
        self.expect_kw("set")?;
        let name = self.expect_ident()?;
        self.expect(&Token::Eq)?;
        let value = self.expr()?;
        Ok(Statement::SetOption { name, value })
    }

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_kw("drop")?;
        self.expect_kw("table")?;
        let name = self.expect_ident()?;
        Ok(Statement::DropTable { name })
    }

    // -- SELECT -------------------------------------------------------------

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = self.optional_alias()?;
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }

        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            from.push(self.table_ref()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }

        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };

        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            Some(self.group_by()?)
        } else {
            None
        };

        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(Error::Parse(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(Select {
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.expect_ident()?));
        }
        // Implicit alias: a bare identifier that is not a reserved keyword.
        if let Some(Token::Ident(s)) = self.peek() {
            if !RESERVED.iter().any(|kw| s.eq_ignore_ascii_case(kw)) {
                let s = s.clone();
                self.pos += 1;
                return Ok(Some(s));
            }
        }
        Ok(None)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat(&Token::LParen) {
            let query = Box::new(self.select()?);
            self.expect(&Token::RParen)?;
            self.eat_kw("as");
            let alias = self.expect_ident()?;
            Ok(TableRef::Subquery { query, alias })
        } else {
            let name = self.expect_ident()?;
            let alias = self.optional_alias()?;
            Ok(TableRef::Named { name, alias })
        }
    }

    // -- GROUP BY (standard + similarity) ------------------------------------

    fn group_by(&mut self) -> Result<GroupBy> {
        let mut exprs = vec![self.expr()?];
        while self.eat(&Token::Comma) {
            exprs.push(self.expr()?);
        }
        if self.peek().is_some_and(|t| t.is_kw("around")) {
            return self.group_by_around(exprs);
        }
        if !self.peek().is_some_and(|t| t.is_kw("distance")) {
            return Ok(GroupBy::Standard(exprs));
        }

        // Similarity clause. Accepted spellings of the head keyword:
        // DISTANCE-TO-ALL / DISTANCE-ALL / DISTANCE-TO-ANY / DISTANCE-ANY.
        let head = self.hyphen_ident()?;
        let is_all = match head.as_str() {
            "DISTANCE-TO-ALL" | "DISTANCE-ALL" => true,
            "DISTANCE-TO-ANY" | "DISTANCE-ANY" => false,
            other => {
                return Err(Error::Parse(format!(
                    "expected DISTANCE-TO-ALL or DISTANCE-TO-ANY, found {other}"
                )))
            }
        };
        if !(2..=3).contains(&exprs.len()) {
            return Err(Error::Unsupported(format!(
                "similarity group-by takes 2 or 3 grouping attributes \
                 (the paper's \"two and three dimensional data space\"), got {}",
                exprs.len()
            )));
        }

        // Optional metric before WITHIN (Section 4 syntax). Any identifier
        // other than WITHIN in this position must be a valid metric
        // keyword: unknown names are a hard error listing the accepted
        // spellings (silently falling through used to turn typos — and the
        // once mis-aliased LONE — into the wrong metric).
        let mut metric = None;
        if let Some(Token::Ident(s)) = self.peek() {
            if !s.eq_ignore_ascii_case("within") {
                let word = s.clone();
                let m =
                    Metric::from_sql_keyword(&word).ok_or_else(|| unknown_metric_error(&word))?;
                metric = Some(m);
                self.pos += 1;
            }
        }

        self.expect_kw("within")?;
        let eps = match self.next() {
            Some(Token::Int(n)) => n as f64,
            Some(Token::Float(f)) => f,
            other => {
                return Err(Error::Parse(format!(
                    "expected a numeric threshold after WITHIN, found {other:?}"
                )))
            }
        };
        if eps.is_nan() || eps < 0.0 {
            return Err(Error::Parse(format!(
                "WITHIN threshold must be >= 0, got {eps}"
            )));
        }

        // Optional `USING lone|ltwo|l1|l2|linf` (Table 2 syntax).
        if self.eat_kw("using") {
            let word = self.expect_ident()?;
            let m = Metric::from_sql_keyword(&word).ok_or_else(|| unknown_metric_error(&word))?;
            metric = Some(m);
        }
        let metric = metric.unwrap_or(Metric::L2);

        if !is_all {
            return Ok(GroupBy::SimilarityAny { exprs, metric, eps });
        }

        // ON-OVERLAP clause: `ON-OVERLAP x`, `ON OVERLAP x`; defaults to
        // JOIN-ANY when omitted.
        let mut overlap = OverlapAction::JoinAny;
        if self.peek().is_some_and(|t| t.is_kw("on")) {
            let on = self.hyphen_ident()?; // ON or ON-OVERLAP
            if on == "ON" {
                self.expect_kw("overlap")?;
            } else if on != "ON-OVERLAP" {
                return Err(Error::Parse(format!("expected ON-OVERLAP, found {on}")));
            }
            let action = self.hyphen_ident()?;
            overlap = OverlapAction::from_sql_keyword(&action)
                .ok_or_else(|| Error::Parse(format!("unknown ON-OVERLAP action '{action}'")))?;
        }
        Ok(GroupBy::SimilarityAll {
            exprs,
            metric,
            eps,
            overlap,
        })
    }

    /// The SGB-Around clause, entered after the grouping expressions:
    /// `AROUND ((cx, cy), …) [L1|L2|LINF] [WITHIN r] [USING metric]`.
    ///
    /// Malformed center lists are hard errors: an empty list, a center
    /// whose dimensionality differs from the grouping attributes, and
    /// duplicate centers are each rejected with a specific message.
    fn group_by_around(&mut self, exprs: Vec<Expr>) -> Result<GroupBy> {
        self.expect_kw("around")?;
        if !(2..=3).contains(&exprs.len()) {
            return Err(Error::Unsupported(format!(
                "similarity group-by takes 2 or 3 grouping attributes \
                 (the paper's \"two and three dimensional data space\"), got {}",
                exprs.len()
            )));
        }
        let dims = exprs.len();

        self.expect(&Token::LParen)?;
        if self.peek() == Some(&Token::RParen) {
            return Err(Error::Parse(
                "AROUND requires at least one center point, got an empty list".into(),
            ));
        }
        let mut centers: Vec<Vec<f64>> = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut center = vec![self.signed_number()?];
            while self.eat(&Token::Comma) {
                center.push(self.signed_number()?);
            }
            self.expect(&Token::RParen)?;
            if center.len() != dims {
                return Err(Error::Parse(format!(
                    "AROUND center {} has {} coordinate(s) but the query groups \
                     by {dims} attributes",
                    centers.len() + 1,
                    center.len()
                )));
            }
            if let Some(prev) = centers.iter().position(|c| *c == center) {
                return Err(Error::Parse(format!(
                    "duplicate AROUND center {center:?} (centers {} and {})",
                    prev + 1,
                    centers.len() + 1
                )));
            }
            centers.push(center);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;

        // Optional metric keyword before WITHIN. Because every tail clause
        // of AROUND is optional, a reserved keyword (HAVING, ORDER, …)
        // legitimately ends the clause here; any other identifier in this
        // position must be a valid metric — unknown names are a hard error
        // listing the accepted spellings, as for DISTANCE-TO-*.
        let mut metric = None;
        if let Some(Token::Ident(s)) = self.peek() {
            if !RESERVED.iter().any(|kw| s.eq_ignore_ascii_case(kw)) {
                let word = s.clone();
                let m =
                    Metric::from_sql_keyword(&word).ok_or_else(|| unknown_metric_error(&word))?;
                metric = Some(m);
                self.pos += 1;
            }
        }

        // Optional `WITHIN r`: the maximum radius (AROUND is total without
        // it, so — unlike DISTANCE-TO-* — the clause may be omitted).
        let mut radius = None;
        if self.eat_kw("within") {
            let r = match self.next() {
                Some(Token::Int(n)) => n as f64,
                Some(Token::Float(f)) => f,
                other => {
                    return Err(Error::Parse(format!(
                        "expected a numeric radius after WITHIN, found {other:?}"
                    )))
                }
            };
            if !r.is_finite() || r < 0.0 {
                return Err(Error::Parse(format!(
                    "WITHIN radius must be finite and >= 0, got {r}"
                )));
            }
            radius = Some(r);
        }

        // Optional `USING metric` (Table 2 style), as for DISTANCE-TO-*.
        if self.eat_kw("using") {
            let word = self.expect_ident()?;
            let m = Metric::from_sql_keyword(&word).ok_or_else(|| unknown_metric_error(&word))?;
            metric = Some(m);
        }

        Ok(GroupBy::SimilarityAround {
            exprs,
            centers,
            metric: metric.unwrap_or(Metric::L2),
            radius,
        })
    }

    /// A numeric literal with an optional sign, as `f64`.
    fn signed_number(&mut self) -> Result<f64> {
        let neg = if self.eat(&Token::Minus) {
            true
        } else {
            self.eat(&Token::Plus);
            false
        };
        let v = match self.next() {
            Some(Token::Int(n)) => n as f64,
            Some(Token::Float(f)) => f,
            other => {
                return Err(Error::Parse(format!(
                    "expected a numeric coordinate, found {other:?}"
                )))
            }
        };
        if !v.is_finite() {
            // Overflowing literals like 1e999 parse to ±inf.
            return Err(Error::Parse("coordinate literal overflows f64".into()));
        }
        Ok(if neg { -v } else { v })
    }

    // -- expressions ---------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        // [NOT] IN (subquery | list)
        let negated = if self.peek().is_some_and(|t| t.is_kw("not"))
            && self.peek2().is_some_and(|t| t.is_kw("in"))
        {
            self.pos += 2;
            true
        } else if self.eat_kw("in") {
            false
        } else {
            return Ok(left);
        };
        self.expect(&Token::LParen)?;
        if self.peek().is_some_and(|t| t.is_kw("select")) {
            let query = Box::new(self.select()?);
            self.expect(&Token::RParen)?;
            Ok(Expr::InSubquery {
                expr: Box::new(left),
                query,
                negated,
            })
        } else {
            let mut list = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            })
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::Literal(Value::Int(n))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => self.ident_expr(name),
            other => Err(Error::Parse(format!(
                "expected an expression, found {other:?}"
            ))),
        }
    }

    fn ident_expr(&mut self, name: String) -> Result<Expr> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "true" => return Ok(Expr::Literal(Value::Bool(true))),
            "false" => return Ok(Expr::Literal(Value::Bool(false))),
            "null" => return Ok(Expr::Literal(Value::Null)),
            // date 'YYYY-MM-DD'
            "date" => {
                if let Some(Token::Str(s)) = self.peek() {
                    let days = parse_date(s)?;
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Date(days)));
                }
            }
            // interval 'N' (year|month|day|week)
            "interval" => {
                if let Some(Token::Str(s)) = self.peek().cloned() {
                    self.pos += 1;
                    let n: i32 = s
                        .trim()
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad interval quantity '{s}'")))?;
                    let unit = self.expect_ident()?.to_ascii_lowercase();
                    let (months, days) = match unit.trim_end_matches('s') {
                        "year" => (12 * n, 0),
                        "month" => (n, 0),
                        "week" => (0, 7 * n),
                        "day" => (0, n),
                        other => {
                            return Err(Error::Parse(format!("unknown interval unit '{other}'")))
                        }
                    };
                    return Ok(Expr::Literal(Value::Interval { months, days }));
                }
            }
            _ => {}
        }
        // Function call?
        if self.peek() == Some(&Token::LParen) && !RESERVED.contains(&lower.as_str()) {
            self.pos += 1;
            if self.eat(&Token::Star) {
                self.expect(&Token::RParen)?;
                return Ok(Expr::Func {
                    name: lower,
                    args: Vec::new(),
                    star: true,
                });
            }
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Func {
                name: lower,
                args,
                star: false,
            });
        }
        // Qualified column?
        if self.eat(&Token::Dot) {
            let col = self.expect_ident()?;
            return Ok(Expr::Column {
                qualifier: Some(name),
                name: col,
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let s =
            parse_select("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY b DESC LIMIT 5").unwrap();
        assert_eq!(s.items.len(), 2);
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "bee"
        ));
        assert_eq!(s.from.len(), 1);
        assert!(s.where_clause.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn precedence_and_parens() {
        let s = parse_select("SELECT 1 + 2 * 3 FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        // 1 + (2 * 3): the top op must be Add.
        let Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        } = expr
        else {
            panic!("expected Add at top, got {expr:?}")
        };
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
        let s2 = parse_select("SELECT (1 + 2) * 3 FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &s2.items[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn sgb_all_formal_syntax() {
        let s = parse_select(
            "SELECT count(*) FROM gps \
             GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 \
             ON-OVERLAP FORM-NEW-GROUP",
        )
        .unwrap();
        let Some(GroupBy::SimilarityAll {
            exprs,
            metric,
            eps,
            overlap,
        }) = s.group_by
        else {
            panic!("expected SimilarityAll, got {:?}", s.group_by)
        };
        assert_eq!(exprs.len(), 2);
        assert_eq!(metric, Metric::LInf);
        assert_eq!(eps, 3.0);
        assert_eq!(overlap, OverlapAction::FormNewGroup);
    }

    #[test]
    fn sgb_all_table2_syntax() {
        // Table 2 spelling: DISTANCE-ALL WITHIN ε USING ltwo on overlap join-any.
        let s = parse_select(
            "SELECT max(ab) FROM r \
             GROUP BY ab, tp DISTANCE-ALL WITHIN 0.2 USING ltwo on overlap join-any",
        )
        .unwrap();
        let Some(GroupBy::SimilarityAll {
            metric,
            eps,
            overlap,
            ..
        }) = s.group_by
        else {
            panic!()
        };
        assert_eq!(metric, Metric::L2);
        assert_eq!(eps, 0.2);
        assert_eq!(overlap, OverlapAction::JoinAny);
    }

    #[test]
    fn lone_parses_as_manhattan_metric() {
        // Regression: LONE used to silently alias L∞. Both metric
        // positions (before WITHIN, after USING) must plan Metric::L1.
        let s = parse_select(
            "SELECT count(*) FROM gps GROUP BY lat, lon DISTANCE-TO-ALL LONE WITHIN 3",
        )
        .unwrap();
        assert!(matches!(
            s.group_by,
            Some(GroupBy::SimilarityAll {
                metric: Metric::L1,
                ..
            })
        ));
        let s = parse_select(
            "SELECT count(*) FROM gps GROUP BY lat, lon DISTANCE-TO-ANY WITHIN 3 USING lone",
        )
        .unwrap();
        assert!(matches!(
            s.group_by,
            Some(GroupBy::SimilarityAny {
                metric: Metric::L1,
                ..
            })
        ));
        let s =
            parse_select("SELECT count(*) FROM gps GROUP BY lat, lon DISTANCE-TO-ANY L1 WITHIN 3")
                .unwrap();
        assert!(matches!(
            s.group_by,
            Some(GroupBy::SimilarityAny {
                metric: Metric::L1,
                ..
            })
        ));
    }

    #[test]
    fn unknown_metric_is_a_hard_error_naming_valid_keywords() {
        for sql in [
            "SELECT 1 FROM t GROUP BY a, b DISTANCE-TO-ALL COSINE WITHIN 1",
            "SELECT 1 FROM t GROUP BY a, b DISTANCE-TO-ANY WITHIN 1 USING cosine",
        ] {
            let err = parse_select(sql).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("unknown distance metric 'COSINE'") || msg.contains("'cosine'"));
            for kw in ["L1", "LONE", "L2", "LTWO", "LINF"] {
                assert!(msg.contains(kw), "error must name {kw}: {msg}");
            }
        }
    }

    #[test]
    fn sgb_around_full_syntax() {
        let s = parse_select(
            "SELECT count(*) FROM gps \
             GROUP BY lat, lon AROUND ((1.0, 2.0), (-3, 4.5)) LINF WITHIN 0.5",
        )
        .unwrap();
        let Some(GroupBy::SimilarityAround {
            exprs,
            centers,
            metric,
            radius,
        }) = s.group_by
        else {
            panic!("expected SimilarityAround, got {:?}", s.group_by)
        };
        assert_eq!(exprs.len(), 2);
        assert_eq!(centers, vec![vec![1.0, 2.0], vec![-3.0, 4.5]]);
        assert_eq!(metric, Metric::LInf);
        assert_eq!(radius, Some(0.5));
    }

    #[test]
    fn sgb_around_defaults_and_using_spelling() {
        // Metric defaults to L2, radius is optional, USING works after
        // WITHIN, and three-dimensional centers parse.
        let s = parse_select("SELECT count(*) FROM t GROUP BY a, b AROUND ((0, 0))").unwrap();
        assert!(matches!(
            s.group_by,
            Some(GroupBy::SimilarityAround {
                metric: Metric::L2,
                radius: None,
                ..
            })
        ));
        let s = parse_select(
            "SELECT count(*) FROM t GROUP BY a, b AROUND ((0, 0), (1, 1)) WITHIN 2 USING lone",
        )
        .unwrap();
        assert!(matches!(
            s.group_by,
            Some(GroupBy::SimilarityAround {
                metric: Metric::L1,
                radius: Some(r),
                ..
            }) if r == 2.0
        ));
        let s = parse_select(
            "SELECT count(*) FROM t GROUP BY a, b, c AROUND ((0, 0, 0), (1, 1, 1)) L1",
        )
        .unwrap();
        assert!(matches!(
            s.group_by,
            Some(GroupBy::SimilarityAround { ref centers, .. }) if centers[0].len() == 3
        ));
    }

    #[test]
    fn sgb_around_rejects_malformed_center_lists() {
        // Empty list.
        let err = parse_select("SELECT count(*) FROM t GROUP BY a, b AROUND ()").unwrap_err();
        assert!(err.to_string().contains("at least one center"), "{err}");
        // Dimension mismatch (2-D query, 3-D center and vice versa).
        let err =
            parse_select("SELECT count(*) FROM t GROUP BY a, b AROUND ((1, 2, 3))").unwrap_err();
        assert!(err.to_string().contains("3 coordinate(s)"), "{err}");
        let err =
            parse_select("SELECT count(*) FROM t GROUP BY a, b, c AROUND ((1, 2))").unwrap_err();
        assert!(err.to_string().contains("2 coordinate(s)"), "{err}");
        // Duplicate centers (also across int/float spellings of the same
        // value).
        let err =
            parse_select("SELECT count(*) FROM t GROUP BY a, b AROUND ((1, 2), (3, 4), (1.0, 2))")
                .unwrap_err();
        assert!(err.to_string().contains("duplicate AROUND center"), "{err}");
        // Unknown metric keyword is a hard error naming valid spellings.
        let err = parse_select("SELECT count(*) FROM t GROUP BY a, b AROUND ((1, 2)) COSINE")
            .unwrap_err();
        assert!(err.to_string().contains("unknown distance metric"), "{err}");
        // Negative radius.
        let err = parse_select("SELECT count(*) FROM t GROUP BY a, b AROUND ((1, 2)) WITHIN -1")
            .unwrap_err();
        assert!(err.to_string().contains("radius"), "{err}");
        // Non-numeric coordinate.
        assert!(parse_select("SELECT count(*) FROM t GROUP BY a, b AROUND ((x, 2))").is_err());
        // Wrong arity of grouping attributes.
        assert!(parse_select("SELECT count(*) FROM t GROUP BY a AROUND ((1))").is_err());
    }

    #[test]
    fn sgb_any_syntax() {
        let s =
            parse_select("SELECT count(*) FROM gps GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN 3")
                .unwrap();
        let Some(GroupBy::SimilarityAny { metric, eps, .. }) = s.group_by else {
            panic!()
        };
        assert_eq!(metric, Metric::L2);
        assert_eq!(eps, 3.0);
    }

    #[test]
    fn sgb_takes_two_or_three_grouping_attributes() {
        assert!(parse_select("SELECT 1 FROM t GROUP BY a DISTANCE-TO-ALL WITHIN 1").is_err());
        assert!(
            parse_select("SELECT 1 FROM t GROUP BY a, b, c, d DISTANCE-TO-ANY WITHIN 1").is_err()
        );
        // Three-dimensional grouping attributes parse (Section 1: "two and
        // three dimensional data space").
        let s = parse_select("SELECT count(*) FROM t GROUP BY a, b, c DISTANCE-TO-ANY WITHIN 1")
            .unwrap();
        assert!(matches!(
            s.group_by,
            Some(GroupBy::SimilarityAny { ref exprs, .. }) if exprs.len() == 3
        ));
    }

    #[test]
    fn on_overlap_default_is_join_any() {
        let s = parse_select("SELECT 1 FROM t GROUP BY a, b DISTANCE-TO-ALL WITHIN 1").unwrap();
        let Some(GroupBy::SimilarityAll {
            overlap, metric, ..
        }) = s.group_by
        else {
            panic!()
        };
        assert_eq!(overlap, OverlapAction::JoinAny);
        assert_eq!(metric, Metric::L2, "default metric is L2");
    }

    #[test]
    fn standard_group_by_with_having() {
        let s = parse_select(
            "SELECT l_orderkey, sum(l_quantity) FROM lineitem \
             GROUP BY l_orderkey HAVING sum(l_quantity) > 3000",
        )
        .unwrap();
        assert!(matches!(s.group_by, Some(GroupBy::Standard(ref v)) if v.len() == 1));
        assert!(s.having.is_some());
    }

    #[test]
    fn in_subquery_and_derived_table() {
        let s = parse_select(
            "SELECT o_custkey FROM orders, (SELECT c_custkey FROM customer WHERE c_acctbal > 100) AS r1 \
             WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem) AND r1.c_custkey = o_custkey",
        )
        .unwrap();
        assert_eq!(s.from.len(), 2);
        assert!(matches!(&s.from[1], TableRef::Subquery { alias, .. } if alias == "r1"));
        let w = s.where_clause.unwrap();
        let Expr::Binary {
            op: BinOp::And,
            left,
            ..
        } = w
        else {
            panic!()
        };
        assert!(matches!(*left, Expr::InSubquery { .. }));
    }

    #[test]
    fn date_and_interval_literals() {
        let s = parse_select(
            "SELECT 1 FROM l WHERE d > date '1995-01-01' AND d < date '1995-01-01' + interval '10' month",
        )
        .unwrap();
        let w = s.where_clause.unwrap();
        let Expr::Binary {
            op: BinOp::And,
            right,
            ..
        } = w
        else {
            panic!()
        };
        let Expr::Binary { right: sum, .. } = *right else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::Add,
            right: iv,
            ..
        } = *sum
        else {
            panic!()
        };
        assert_eq!(
            *iv,
            Expr::Literal(Value::Interval {
                months: 10,
                days: 0
            })
        );
    }

    #[test]
    fn count_star_and_array_agg() {
        let s = parse_select("SELECT count(*), array_agg(r1.c_custkey) FROM r1").unwrap();
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { expr: Expr::Func { name, star: true, .. }, .. } if name == "count"
        ));
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { expr: Expr::Func { name, args, .. }, .. }
                if name == "array_agg" && args.len() == 1
        ));
    }

    #[test]
    fn create_insert_drop_round_trip() {
        let c =
            parse_statement("CREATE TABLE t (a INT, b DOUBLE PRECISION, c VARCHAR(10))").unwrap();
        assert_eq!(
            c,
            Statement::CreateTable {
                name: "t".into(),
                columns: vec!["a".into(), "b".into(), "c".into()]
            }
        );
        let i = parse_statement("INSERT INTO t VALUES (1, 2.5, 'x'), (2, -1.0, 'y')").unwrap();
        let Statement::Insert { table, rows } = i else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1][1],
            Expr::Neg(Box::new(Expr::Literal(Value::Float(1.0))))
        );
        assert!(matches!(
            parse_statement("DROP TABLE t").unwrap(),
            Statement::DropTable { .. }
        ));
    }

    #[test]
    fn delete_with_and_without_predicate() {
        let d = parse_statement("DELETE FROM t WHERE a > 1 AND b = 'x'").unwrap();
        let Statement::Delete { table, predicate } = d else {
            panic!()
        };
        assert_eq!(table, "t");
        assert!(matches!(
            predicate,
            Some(Expr::Binary { op: BinOp::And, .. })
        ));
        let d = parse_statement("DELETE FROM t;").unwrap();
        assert_eq!(
            d,
            Statement::Delete {
                table: "t".into(),
                predicate: None
            }
        );
        // DELETE needs FROM; trailing garbage is rejected.
        assert!(parse_statement("DELETE t").is_err());
        assert!(parse_statement("DELETE FROM t WHERE").is_err());
        assert!(parse_statement("DELETE FROM t 7").is_err());
    }

    #[test]
    fn not_in_list() {
        let s = parse_select("SELECT 1 FROM t WHERE a NOT IN (1, 2, 3)").unwrap();
        let Some(Expr::InList {
            negated: true,
            list,
            ..
        }) = s.where_clause
        else {
            panic!()
        };
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn implicit_table_alias_stops_at_keywords() {
        let s = parse_select("SELECT x FROM t u WHERE x = 1").unwrap();
        assert!(matches!(
            &s.from[0],
            TableRef::Named { name, alias: Some(a) } if name == "t" && a == "u"
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_select("SELECT 1 FROM t WHERE").is_err());
        assert!(parse_select("SELECT 1 FROM t 42").is_err());
        assert!(parse_statement("SELECT 1 FROM t; SELECT 2 FROM t").is_err());
    }
}
