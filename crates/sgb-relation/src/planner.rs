//! Query planner: binds a parsed AST against the catalog and lowers it into
//! a [`Plan`] tree.
//!
//! The planner applies the textbook rewrites that, per the paper
//! (Section 2), carry over to similarity group-by untouched:
//! *predicate pushdown* (single-table conjuncts filter before the join) and
//! *equi-join extraction* (WHERE `a = b` conjuncts across inputs become
//! hash joins instead of filtered cartesian products). Uncorrelated
//! `IN (SELECT …)` subqueries are materialised once at plan time.
#![deny(clippy::unwrap_used)]

use std::collections::HashSet;
use std::sync::Arc;

use sgb_core::query::DEFAULT_RTREE_FANOUT;
use sgb_core::{Algorithm, AnyAlgorithm, AroundAlgorithm};

use crate::cache::slot_key;
use crate::engine::Database;
use crate::error::{Error, Result};
use crate::exec::execute;
use crate::expr::{BinOp, BoundExpr};
use crate::plan::{AggCall, AggKind, IndexCacheStatus, Plan, SgbMode};
use crate::schema::{Column, Schema};
use crate::sql::ast::{Expr, GroupBy, Select, SelectItem, TableRef};
use crate::subscription::QueryKey;
use crate::value::Value;

/// Plans one SELECT statement against `db`.
pub fn plan_select(db: &Database, stmt: &Select) -> Result<Plan> {
    Planner { db }.select(stmt)
}

/// Binds a constant expression (no input columns) — used for INSERT row
/// literals; subqueries and arithmetic still work.
pub(crate) fn plan_const(db: &Database, expr: &Expr) -> Result<BoundExpr> {
    Planner { db }.bind(expr, &Schema::default())
}

/// Binds a scalar predicate against a table schema — used for the DELETE
/// row filter; uncorrelated `IN (SELECT …)` subqueries still materialise
/// at bind time, exactly as in a WHERE clause.
pub(crate) fn plan_predicate(db: &Database, schema: &Schema, expr: &Expr) -> Result<BoundExpr> {
    Planner { db }.bind(expr, schema)
}

struct Planner<'a> {
    db: &'a Database,
}

impl<'a> Planner<'a> {
    // -- top level -----------------------------------------------------------

    fn select(&self, stmt: &Select) -> Result<Plan> {
        if stmt.from.is_empty() {
            return Err(Error::Unsupported("FROM clause is required".into()));
        }

        // 1. Plan the FROM items.
        let mut inputs: Vec<Plan> = Vec::with_capacity(stmt.from.len());
        for item in &stmt.from {
            inputs.push(self.table_ref(item)?);
        }

        // 2. Split WHERE into conjuncts; push single-input ones down.
        let mut conjuncts: Vec<Option<Expr>> = Vec::new();
        if let Some(w) = &stmt.where_clause {
            let mut flat = Vec::new();
            split_conjuncts(w, &mut flat);
            conjuncts = flat.into_iter().map(Some).collect();
        }
        for slot in conjuncts.iter_mut() {
            let Some(c) = slot.as_ref() else { continue };
            let homes: Vec<usize> = inputs
                .iter()
                .enumerate()
                .filter(|(_, p)| self.resolvable(p.schema(), c))
                .map(|(i, _)| i)
                .collect();
            // Exactly one input can evaluate it, and it actually reads
            // columns: filter that input before joining.
            if homes.len() == 1 && has_column_refs(c) {
                let home = homes[0];
                let predicate = self.bind(c, inputs[home].schema())?;
                let input = std::mem::replace(
                    &mut inputs[home],
                    Plan::Scan {
                        table: String::new(),
                        schema: Schema::default(),
                    },
                );
                inputs[home] = Plan::Filter {
                    input: Box::new(input),
                    predicate,
                };
                *slot = None;
            }
        }

        // 3. Join the inputs left-deep, preferring hash joins over
        //    extracted equi-conjuncts, falling back to cross joins.
        let mut acc = inputs.remove(0);
        while !inputs.is_empty() {
            let mut pick: Option<(usize, Vec<usize>)> = None;
            'candidates: for (i, cand) in inputs.iter().enumerate() {
                let mut used = Vec::new();
                for (ci, slot) in conjuncts.iter().enumerate() {
                    let Some(c) = slot else { continue };
                    if self.equi_key(acc.schema(), cand.schema(), c).is_some() {
                        used.push(ci);
                    }
                }
                if !used.is_empty() {
                    pick = Some((i, used));
                    break 'candidates;
                }
            }
            match pick {
                Some((i, used)) => {
                    let cand = inputs.remove(i);
                    let mut left_keys = Vec::new();
                    let mut right_keys = Vec::new();
                    for ci in used {
                        let Some(c) = conjuncts[ci].take() else {
                            continue;
                        };
                        let (l, r) = self
                            .equi_key(acc.schema(), cand.schema(), &c)
                            .expect("re-check of equi key");
                        left_keys.push(self.bind(l, acc.schema())?);
                        right_keys.push(self.bind(r, cand.schema())?);
                    }
                    let schema = acc.schema().join(cand.schema());
                    acc = Plan::HashJoin {
                        left: Box::new(acc),
                        right: Box::new(cand),
                        left_keys,
                        right_keys,
                        schema,
                    };
                }
                None => {
                    let cand = inputs.remove(0);
                    let schema = acc.schema().join(cand.schema());
                    acc = Plan::CrossJoin {
                        left: Box::new(acc),
                        right: Box::new(cand),
                        schema,
                    };
                }
            }
        }

        // 4. Remaining conjuncts filter the joined relation.
        for slot in conjuncts.iter_mut() {
            if let Some(c) = slot.take() {
                let predicate = self.bind(&c, acc.schema())?;
                acc = Plan::Filter {
                    input: Box::new(acc),
                    predicate,
                };
            }
        }

        // 5. Grouping / projection.
        let has_aggs = stmt.items.iter().any(|it| match it {
            SelectItem::Expr { expr, .. } => expr_has_agg(expr),
            SelectItem::Wildcard => false,
        }) || stmt.having.as_ref().is_some_and(expr_has_agg);

        acc = match (&stmt.group_by, has_aggs) {
            (Some(GroupBy::Standard(keys)), _) => {
                self.build_hash_aggregate(acc, keys.clone(), stmt)?
            }
            (
                Some(GroupBy::SimilarityAll {
                    exprs,
                    metric,
                    eps,
                    overlap,
                }),
                _,
            ) => {
                // Resolve `Auto` at plan time from the estimated input
                // cardinality so EXPLAIN shows the path execution takes,
                // under the session options the plan was built with.
                let n = estimate_rows(&acc, self.db);
                let configured = self.db.session().all_algorithm;
                let (resolved, selection) =
                    sgb_core::cost::resolve_all(configured.for_all(), n, exprs.len());
                let mode = SgbMode::All {
                    eps: *eps,
                    metric: *metric,
                    overlap: *overlap,
                    algorithm: resolved.into(),
                    seed: self.db.session().seed,
                    threads: sgb_core::cost::threads_for_all().0,
                    selection: session_selection(configured, selection),
                    // SGB-All's index tracks the *live groups*, which only
                    // exist mid-run — never shareable across queries.
                    index: IndexCacheStatus::NotApplicable,
                };
                self.build_similarity(acc, exprs, mode, stmt)?
            }
            (Some(GroupBy::SimilarityAny { exprs, metric, eps }), _) => {
                let n = estimate_rows(&acc, self.db);
                let configured = self.db.session().any_algorithm;
                let base = configured.for_any().ok_or_else(|| {
                    Error::Unsupported(format!(
                        "session algorithm {configured} is not an execution path of \
                         DISTANCE-TO-ANY (valid: Auto, AllPairs, Indexed, Grid)"
                    ))
                })?;
                // Probe the session cache (read-only) when the operator
                // reads a base table directly — only then does the cached,
                // version-scoped index describe this node's input — so
                // `Auto` can account for a zero-build-cost index and
                // EXPLAIN can report the cache disposition.
                let probe = self.cache_probe(&acc, exprs)?;
                let cached_grid = probe.as_ref().is_some_and(|p| {
                    self.db
                        .caches()
                        .has_usable_grid(&p.table, &p.coords_key, p.version, *eps)
                });
                let cached_tree = probe.as_ref().is_some_and(|p| {
                    self.db.caches().has_tree(
                        &p.table,
                        &p.coords_key,
                        p.version,
                        DEFAULT_RTREE_FANOUT,
                    )
                });
                // Resolve under the session's memory budget: when the
                // budget rules out building the ε-grid (or the R-tree),
                // `Auto` degrades to the streaming scan and EXPLAIN
                // records why; a session-pinned `Grid` / `Indexed` fails
                // here with `BudgetExceeded`. Version-fresh cached
                // structures cost no new memory and are always admitted.
                let governor = self.db.statement_governor();
                let (resolved, selection) = sgb_core::cost::resolve_any_governed_full(
                    base,
                    n,
                    exprs.len(),
                    cached_grid,
                    cached_tree,
                    &governor,
                )?;
                let (threads, _) =
                    sgb_core::cost::threads_for_any(resolved, self.db.session().threads, n);
                let index = match resolved {
                    AnyAlgorithm::AllPairs => IndexCacheStatus::NotApplicable,
                    _ if !self.db.session().cache => IndexCacheStatus::Disabled,
                    AnyAlgorithm::Grid if cached_grid => IndexCacheStatus::Hit,
                    AnyAlgorithm::Indexed if cached_tree => IndexCacheStatus::Hit,
                    _ => IndexCacheStatus::Built,
                };
                let mode = SgbMode::Any {
                    eps: *eps,
                    metric: *metric,
                    algorithm: resolved.into(),
                    threads,
                    selection: session_selection(configured, selection),
                    index,
                };
                self.build_similarity(acc, exprs, mode, stmt)?
            }
            (
                Some(GroupBy::SimilarityAround {
                    exprs,
                    centers,
                    metric,
                    radius,
                }),
                _,
            ) => self.build_around(acc, exprs, centers, *metric, *radius, stmt)?,
            (None, true) => self.build_hash_aggregate(acc, Vec::new(), stmt)?,
            (None, false) => {
                if stmt.having.is_some() {
                    return Err(Error::Unsupported(
                        "HAVING without GROUP BY or aggregates".into(),
                    ));
                }
                self.build_projection(acc, stmt)?
            }
        };

        // 6. ORDER BY, then LIMIT. Keys bind against the output schema;
        //    for plain projections they may instead reference input columns
        //    (`SELECT name FROM t ORDER BY id`), in which case the sort is
        //    planned below the projection.
        if !stmt.order_by.is_empty() {
            let out_schema = acc.schema().clone();
            // A sort key may also repeat a select item verbatim
            // (`ORDER BY count(*)`): match syntactically and sort by that
            // output column.
            let item_position = |e: &Expr| {
                stmt.items
                    .iter()
                    .position(|it| matches!(it, SelectItem::Expr { expr, .. } if expr == e))
            };
            let out_keys: Result<Vec<(BoundExpr, bool)>> = stmt
                .order_by
                .iter()
                .map(|k| {
                    if let Some(i) = item_position(&k.expr) {
                        return Ok((BoundExpr::Column(i), k.desc));
                    }
                    Ok((self.bind(&k.expr, &out_schema)?, k.desc))
                })
                .collect();
            match out_keys {
                Ok(keys) => {
                    acc = Plan::Sort {
                        input: Box::new(acc),
                        keys,
                    };
                }
                Err(out_err) => {
                    let Plan::Project {
                        input,
                        exprs,
                        schema,
                    } = acc
                    else {
                        return Err(out_err);
                    };
                    let in_schema = input.schema().clone();
                    let mut keys = Vec::new();
                    for k in &stmt.order_by {
                        let bound = self
                            .bind(&k.expr, &in_schema)
                            .map_err(|_| out_err.clone())?;
                        keys.push((bound, k.desc));
                    }
                    acc = Plan::Project {
                        input: Box::new(Plan::Sort { input, keys }),
                        exprs,
                        schema,
                    };
                }
            }
        }
        if let Some(n) = stmt.limit {
            acc = Plan::Limit {
                input: Box::new(acc),
                n,
            };
        }
        Ok(acc)
    }

    fn table_ref(&self, item: &TableRef) -> Result<Plan> {
        match item {
            TableRef::Named { name, alias } => {
                let table = self.db.table(name)?;
                let binding = alias.as_deref().unwrap_or(name);
                Ok(Plan::Scan {
                    table: name.clone(),
                    schema: table.schema.clone().with_qualifier(binding),
                })
            }
            TableRef::Subquery { query, alias } => {
                let inner = self.select(query)?;
                let schema = inner.schema().clone().with_qualifier(alias);
                // Re-qualification is a zero-cost projection: reuse the
                // inner plan and only swap the schema via Project identity.
                let exprs = (0..schema.len()).map(BoundExpr::Column).collect();
                Ok(Plan::Project {
                    input: Box::new(inner),
                    exprs,
                    schema,
                })
            }
        }
    }

    // -- grouping -------------------------------------------------------------

    fn build_hash_aggregate(&self, input: Plan, keys: Vec<Expr>, stmt: &Select) -> Result<Plan> {
        let input_schema = input.schema().clone();
        let mut group_exprs = Vec::new();
        for k in &keys {
            group_exprs.push(self.bind(k, &input_schema)?);
        }
        let mut ctx = AggContext {
            group_asts: keys,
            aggs: Vec::new(),
            agg_asts: Vec::new(),
            sgb: false,
        };
        let (outputs, schema) = self.rewrite_outputs(stmt, &mut ctx, &input_schema)?;
        let having = match &stmt.having {
            Some(h) => Some(self.rewrite_agg(h, &mut ctx, &input_schema)?),
            None => None,
        };
        Ok(Plan::HashAggregate {
            input: Box::new(input),
            group_exprs,
            aggs: ctx.aggs,
            having,
            outputs,
            schema,
        })
    }

    fn build_similarity(
        &self,
        input: Plan,
        grouping: &[Expr],
        mode: SgbMode,
        stmt: &Select,
    ) -> Result<Plan> {
        debug_assert!((2..=3).contains(&grouping.len()), "checked by the parser");
        let input_schema = input.schema().clone();
        let coords: Vec<BoundExpr> = grouping
            .iter()
            .map(|g| self.bind(g, &input_schema))
            .collect::<Result<_>>()?;
        let mut ctx = AggContext {
            group_asts: Vec::new(),
            aggs: Vec::new(),
            agg_asts: Vec::new(),
            sgb: true,
        };
        let (outputs, schema) = self.rewrite_outputs(stmt, &mut ctx, &input_schema)?;
        let having = match &stmt.having {
            Some(h) => Some(self.rewrite_agg(h, &mut ctx, &input_schema)?),
            None => None,
        };
        let snapshot = self.subscription_probe(&input, &coords, &QueryKey::from_sgb_mode(&mode));
        Ok(Plan::SimilarityGroupBy {
            input: Box::new(input),
            coords,
            mode,
            snapshot,
            aggs: ctx.aggs,
            having,
            outputs,
            schema,
        })
    }

    /// Lowers the SGB-Around clause: binds the grouping coordinates and the
    /// grouped select list exactly like [`build_similarity`](Self::build_similarity),
    /// but emits the dedicated [`Plan::SimilarityAround`] node (the centers
    /// are plan constants, validated by the parser).
    fn build_around(
        &self,
        input: Plan,
        grouping: &[Expr],
        centers: &[Vec<f64>],
        metric: sgb_geom::Metric,
        radius: Option<f64>,
        stmt: &Select,
    ) -> Result<Plan> {
        debug_assert!((2..=3).contains(&grouping.len()), "checked by the parser");
        debug_assert!(
            centers.iter().all(|c| c.len() == grouping.len()),
            "checked by the parser"
        );
        let input_schema = input.schema().clone();
        let coords: Vec<BoundExpr> = grouping
            .iter()
            .map(|g| self.bind(g, &input_schema))
            .collect::<Result<_>>()?;
        let mut ctx = AggContext {
            group_asts: Vec::new(),
            aggs: Vec::new(),
            agg_asts: Vec::new(),
            sgb: true,
        };
        let (outputs, schema) = self.rewrite_outputs(stmt, &mut ctx, &input_schema)?;
        let having = match &stmt.having {
            Some(h) => Some(self.rewrite_agg(h, &mut ctx, &input_schema)?),
            None => None,
        };
        // `Auto` resolves from the center count (the quantity the
        // per-tuple cost depends on); the reason lands in EXPLAIN. A
        // cached center index (version-free: it is built from the query's
        // centers, never the table) has zero build cost, so `Auto`
        // prefers it below the cold crossover.
        let configured = self.db.session().around_algorithm;
        let base = configured.for_around().ok_or_else(|| {
            Error::Unsupported(format!(
                "session algorithm {configured} is not an execution path of \
                 AROUND (valid: Auto, AllPairs, Indexed, Grid)"
            ))
        })?;
        let probe = bare_scan_table(&input)
            .filter(|_| self.db.session().cache)
            .map(|t| (t.to_ascii_lowercase(), slot_key(&coords)));
        let cached = probe.as_ref().and_then(|(table, coords_key)| {
            self.db.caches().cached_center_algorithm(
                table,
                coords_key,
                centers,
                DEFAULT_RTREE_FANOUT,
            )
        });
        // Resolve under the session's memory budget, mirroring SGB-Any:
        // a budget that rules out the center index degrades `Auto` to the
        // brute scan (EXPLAIN records why) and fails a session-pinned
        // `Indexed` / `Grid` with `BudgetExceeded`; a cached center index
        // costs no new memory and is always admitted.
        let governor = self.db.statement_governor();
        let (resolved, selection) = sgb_core::cost::resolve_around_governed(
            base,
            centers.len(),
            grouping.len(),
            cached,
            &governor,
        )?;
        let (threads, _) = sgb_core::cost::threads_for_around(
            self.db.session().threads,
            estimate_rows(&input, self.db),
        );
        let index = match resolved {
            AroundAlgorithm::BruteForce => IndexCacheStatus::NotApplicable,
            _ if !self.db.session().cache => IndexCacheStatus::Disabled,
            concrete
                if probe.as_ref().is_some_and(|(table, coords_key)| {
                    self.db.caches().has_center_index(
                        table,
                        coords_key,
                        concrete,
                        centers,
                        DEFAULT_RTREE_FANOUT,
                    )
                }) =>
            {
                IndexCacheStatus::Hit
            }
            _ => IndexCacheStatus::Built,
        };
        let snapshot =
            self.subscription_probe(&input, &coords, &QueryKey::around(centers, metric, radius));
        Ok(Plan::SimilarityAround {
            input: Box::new(input),
            coords,
            centers: centers.to_vec(),
            metric,
            radius,
            algorithm: resolved.into(),
            threads,
            selection: session_selection(configured, selection),
            index,
            snapshot,
            aggs: ctx.aggs,
            having,
            outputs,
            schema,
        })
    }

    /// Rewrites the select list of a grouped query into expressions over the
    /// aggregate node's internal layout, returning them plus the output
    /// schema.
    fn rewrite_outputs(
        &self,
        stmt: &Select,
        ctx: &mut AggContext,
        input_schema: &Schema,
    ) -> Result<(Vec<BoundExpr>, Schema)> {
        let mut outputs = Vec::new();
        let mut columns = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    return Err(Error::Unsupported(
                        "SELECT * is not valid in a grouped query".into(),
                    ))
                }
                SelectItem::Expr { expr, alias } => {
                    outputs.push(self.rewrite_agg(expr, ctx, input_schema)?);
                    columns.push(Column::new(output_name(expr, alias.as_deref(), i)));
                }
            }
        }
        Ok((outputs, Schema { columns }))
    }

    /// Rewrites one expression of a grouped query against the internal
    /// layout `[group values…, aggregate results…]` (`[aggregates…]` for
    /// similarity grouping).
    fn rewrite_agg(
        &self,
        expr: &Expr,
        ctx: &mut AggContext,
        input_schema: &Schema,
    ) -> Result<BoundExpr> {
        // A select item that syntactically repeats a group expression
        // refers to the group value.
        if !ctx.sgb {
            if let Some(i) = ctx.group_asts.iter().position(|g| g == expr) {
                return Ok(BoundExpr::Column(i));
            }
        }
        match expr {
            Expr::Func { name, args, star } => {
                if let Some(kind) = AggKind::from_name(name) {
                    let kind = if *star && kind == AggKind::Count {
                        AggKind::CountStar
                    } else {
                        kind
                    };
                    let arg = if kind == AggKind::CountStar {
                        if !args.is_empty() {
                            return Err(Error::Parse("count(*) takes no arguments".into()));
                        }
                        None
                    } else {
                        if args.len() != 1 {
                            return Err(Error::Unsupported(format!(
                                "{name} takes exactly one argument"
                            )));
                        }
                        if expr_has_agg(&args[0]) {
                            return Err(Error::Unsupported("nested aggregates".into()));
                        }
                        Some(self.bind(&args[0], input_schema)?)
                    };
                    // Deduplicate identical aggregate calls.
                    let idx = match ctx.agg_asts.iter().position(|a| a == expr) {
                        Some(i) => i,
                        None => {
                            ctx.agg_asts.push(expr.clone());
                            ctx.aggs.push(AggCall { kind, arg });
                            ctx.aggs.len() - 1
                        }
                    };
                    let base = if ctx.sgb { 0 } else { ctx.group_asts.len() };
                    Ok(BoundExpr::Column(base + idx))
                } else {
                    Err(Error::Binding(format!("unknown function '{name}'")))
                }
            }
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Binary { op, left, right } => Ok(BoundExpr::Binary {
                op: *op,
                left: Box::new(self.rewrite_agg(left, ctx, input_schema)?),
                right: Box::new(self.rewrite_agg(right, ctx, input_schema)?),
            }),
            Expr::Neg(e) => Ok(BoundExpr::Neg(Box::new(self.rewrite_agg(
                e,
                ctx,
                input_schema,
            )?))),
            Expr::Not(e) => Ok(BoundExpr::Not(Box::new(self.rewrite_agg(
                e,
                ctx,
                input_schema,
            )?))),
            Expr::Column { qualifier, name } => {
                let what = if ctx.sgb {
                    "similarity-grouped queries can only select aggregates"
                } else {
                    "column must appear in GROUP BY or inside an aggregate"
                };
                let full = match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.clone(),
                };
                Err(Error::Binding(format!("{what}: '{full}'")))
            }
            Expr::InSubquery { .. } | Expr::InList { .. } => Err(Error::Unsupported(
                "IN predicates are not supported in grouped select lists".into(),
            )),
        }
    }

    // -- projection (non-aggregated) -----------------------------------------

    fn build_projection(&self, input: Plan, stmt: &Select) -> Result<Plan> {
        let input_schema = input.schema().clone();
        let mut exprs = Vec::new();
        let mut columns = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (ci, col) in input_schema.columns.iter().enumerate() {
                        exprs.push(BoundExpr::Column(ci));
                        columns.push(col.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    exprs.push(self.bind(expr, &input_schema)?);
                    columns.push(Column::new(output_name(expr, alias.as_deref(), i)));
                }
            }
        }
        Ok(Plan::Project {
            input: Box::new(input),
            exprs,
            schema: Schema { columns },
        })
    }

    // -- binding --------------------------------------------------------------

    /// Binds a scalar (aggregate-free) expression against `schema`.
    fn bind(&self, expr: &Expr, schema: &Schema) -> Result<BoundExpr> {
        match expr {
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Column { qualifier, name } => Ok(BoundExpr::Column(
                schema.resolve(qualifier.as_deref(), name)?,
            )),
            Expr::Binary { op, left, right } => Ok(BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind(left, schema)?),
                right: Box::new(self.bind(right, schema)?),
            }),
            Expr::Neg(e) => Ok(BoundExpr::Neg(Box::new(self.bind(e, schema)?))),
            Expr::Not(e) => Ok(BoundExpr::Not(Box::new(self.bind(e, schema)?))),
            Expr::Func { name, .. } => Err(Error::Binding(format!(
                "aggregate or unknown function '{name}' not allowed here"
            ))),
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                // Uncorrelated subquery: plan and run it once at bind time.
                let plan = self.select(query)?;
                let table = execute(&plan, self.db)?;
                if table.schema.len() != 1 {
                    return Err(Error::Unsupported(format!(
                        "IN subquery must return one column, got {}",
                        table.schema.len()
                    )));
                }
                let set: HashSet<Value> = table
                    .rows
                    .into_iter()
                    .filter_map(|mut r| r.pop())
                    .filter(|v| !v.is_null())
                    .collect();
                Ok(BoundExpr::InSet {
                    expr: Box::new(self.bind(expr, schema)?),
                    set: Arc::new(set),
                    negated: *negated,
                })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let mut set = HashSet::with_capacity(list.len());
                for item in list {
                    let bound = self.bind(item, schema)?;
                    // List items must be constants: evaluate on an empty row.
                    let v = bound.eval(&[]).map_err(|_| {
                        Error::Unsupported("IN list items must be constants".into())
                    })?;
                    if !v.is_null() {
                        set.insert(v);
                    }
                }
                Ok(BoundExpr::InSet {
                    expr: Box::new(self.bind(expr, schema)?),
                    set: Arc::new(set),
                    negated: *negated,
                })
            }
        }
    }

    /// The cache-probe coordinates of a similarity node, when probing
    /// makes sense: the session cache is on and the node reads a base
    /// table directly (only then does the cached, version-scoped index
    /// describe the node's input). Binds the grouping expressions the
    /// same way the node itself will — a binding error here would recur
    /// there, so it propagates.
    fn cache_probe(&self, input: &Plan, exprs: &[Expr]) -> Result<Option<CacheProbe>> {
        if !self.db.session().cache {
            return Ok(None);
        }
        let Some(table) = bare_scan_table(input) else {
            return Ok(None);
        };
        let coords: Vec<BoundExpr> = exprs
            .iter()
            .map(|g| self.bind(g, input.schema()))
            .collect::<Result<_>>()?;
        let version = self.db.table(table)?.version();
        Ok(Some(CacheProbe {
            table: table.to_ascii_lowercase(),
            coords_key: slot_key(&coords),
            version,
        }))
    }

    /// The serve-from-subscription annotation of a similarity node: an
    /// active subscription over the node's base table with the same
    /// grouping attributes and result-relevant operator parameters, whose
    /// published snapshot reflects the table's current version. Read-only
    /// — the executor re-checks freshness at run time, so a stale
    /// annotation (table mutated between plan and execution) only makes
    /// EXPLAIN optimistic, never the result wrong.
    fn subscription_probe(
        &self,
        input: &Plan,
        coords: &[BoundExpr],
        key: &QueryKey,
    ) -> Option<crate::plan::SnapshotInfo> {
        let table = bare_scan_table(input)?;
        let version = self.db.table(table).ok()?.version();
        self.db
            .subscriptions()
            .probe(&table.to_ascii_lowercase(), &slot_key(coords), key, version)
    }

    /// `true` when every column `expr` references resolves in `schema`.
    fn resolvable(&self, schema: &Schema, expr: &Expr) -> bool {
        let mut cols = Vec::new();
        collect_columns(expr, &mut cols);
        cols.iter()
            .all(|(q, n)| schema.resolve(q.as_deref(), n).is_ok())
    }

    /// When `c` is `l = r` with `l` over `left` and `r` over `right`
    /// (either orientation), returns the pair oriented as (left, right).
    fn equi_key<'e>(
        &self,
        left: &Schema,
        right: &Schema,
        c: &'e Expr,
    ) -> Option<(&'e Expr, &'e Expr)> {
        let Expr::Binary {
            op: BinOp::Eq,
            left: l,
            right: r,
        } = c
        else {
            return None;
        };
        if !has_column_refs(l) || !has_column_refs(r) {
            return None;
        }
        if self.resolvable(left, l) && self.resolvable(right, r) {
            Some((l, r))
        } else if self.resolvable(left, r) && self.resolvable(right, l) {
            Some((r, l))
        } else {
            None
        }
    }
}

/// Where a similarity node's cache slot lives: lower-cased table name,
/// coordinate key, and the table's current version.
struct CacheProbe {
    table: String,
    coords_key: String,
    version: u64,
}

/// The table a plan node scans directly, if it is a bare catalog scan
/// (the planner's pushdown briefly uses empty-named `Scan` placeholders;
/// those never qualify).
fn bare_scan_table(plan: &Plan) -> Option<&str> {
    match plan {
        Plan::Scan { table, .. } if !table.is_empty() => Some(table),
        _ => None,
    }
}

/// The selection story a plan records: the cost model's reason when the
/// session left the operator on `Auto`, or an explicit note that the
/// session options pinned the path.
fn session_selection(configured: Algorithm, cost_reason: String) -> String {
    if configured == Algorithm::Auto {
        cost_reason
    } else {
        "pinned by session options".to_owned()
    }
}

struct AggContext {
    group_asts: Vec<Expr>,
    aggs: Vec<AggCall>,
    agg_asts: Vec<Expr>,
    sgb: bool,
}

/// Crude input-cardinality estimate for the cost-based algorithm
/// selection: exact for scans (the catalog knows its row counts), an
/// upper bound through filters/limits/joins. Getting this wrong only
/// costs speed, never correctness — every candidate algorithm produces
/// bit-identical groupings.
fn estimate_rows(plan: &Plan, db: &Database) -> usize {
    match plan {
        Plan::Scan { table, .. } => db.table(table).map(|t| t.rows.len()).unwrap_or(0),
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Sort { input, .. }
        | Plan::HashAggregate { input, .. }
        | Plan::SimilarityGroupBy { input, .. }
        | Plan::SimilarityAround { input, .. } => estimate_rows(input, db),
        Plan::Limit { input, n } => estimate_rows(input, db).min(*n),
        // Joins bound from above: a many-to-many equi-join can emit up to
        // |L| · |R| rows, and under-estimating here is the dangerous
        // direction (it could steer `Auto` onto a quadratic scan path),
        // while over-estimating merely builds an index a bit early.
        Plan::HashJoin { left, right, .. } | Plan::CrossJoin { left, right, .. } => {
            estimate_rows(left, db).saturating_mul(estimate_rows(right, db))
        }
    }
}

/// Splits nested `AND`s into a conjunct list.
fn split_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = expr
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(expr.clone());
    }
}

/// Collects column references (not descending into subqueries, which are
/// uncorrelated and self-contained).
fn collect_columns(expr: &Expr, out: &mut Vec<(Option<String>, String)>) {
    match expr {
        Expr::Column { qualifier, name } => out.push((qualifier.clone(), name.clone())),
        Expr::Binary { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::Neg(e) | Expr::Not(e) => collect_columns(e, out),
        Expr::Func { args, .. } => {
            for a in args {
                collect_columns(a, out);
            }
        }
        Expr::InSubquery { expr, .. } => collect_columns(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_columns(expr, out);
            for i in list {
                collect_columns(i, out);
            }
        }
        Expr::Literal(_) => {}
    }
}

fn has_column_refs(expr: &Expr) -> bool {
    let mut cols = Vec::new();
    collect_columns(expr, &mut cols);
    !cols.is_empty()
}

/// `true` when the expression contains an aggregate function call.
fn expr_has_agg(expr: &Expr) -> bool {
    match expr {
        Expr::Func { name, .. } => AggKind::from_name(name).is_some(),
        Expr::Binary { left, right, .. } => expr_has_agg(left) || expr_has_agg(right),
        Expr::Neg(e) | Expr::Not(e) => expr_has_agg(e),
        Expr::InSubquery { expr, .. } => expr_has_agg(expr),
        Expr::InList { expr, list, .. } => expr_has_agg(expr) || list.iter().any(expr_has_agg),
        Expr::Column { .. } | Expr::Literal(_) => false,
    }
}

/// Output column name for a select item.
fn output_name(expr: &Expr, alias: Option<&str>, idx: usize) -> String {
    if let Some(a) = alias {
        return a.to_owned();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Func { name, .. } => name.clone(),
        _ => format!("col{idx}"),
    }
}
