//! Column schemas and name resolution.

use crate::error::{Error, Result};

/// A named output column. Columns may carry a qualifier (table name or
/// alias) for disambiguation after joins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Optional qualifier (`r1` in `r1.c_custkey`).
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl Column {
    /// An unqualified column.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            qualifier: None,
            name: name.into(),
        }
    }

    /// A qualified column.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        Self {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// `true` when this column answers to `qualifier.name` / `name`.
    fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|mine| mine.eq_ignore_ascii_case(q)),
        }
    }

    /// Rendered as `qualifier.name` or `name`.
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An ordered list of columns.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    /// The columns, in position order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// A schema of unqualified column names.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        Self {
            columns: names.into_iter().map(|n| Column::new(n.into())).collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Re-qualifies every column (applied when a table/subquery gets an
    /// alias: `FROM (…) AS r1`).
    pub fn with_qualifier(mut self, qualifier: &str) -> Self {
        for c in &mut self.columns {
            c.qualifier = Some(qualifier.to_owned());
        }
        self
    }

    /// Concatenates two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Resolves `qualifier.name` (or bare `name`) to a column index.
    /// Errors on unknown or ambiguous references.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut hit = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.matches(qualifier, name) {
                if hit.is_some() {
                    return Err(Error::Binding(format!(
                        "ambiguous column reference '{name}'"
                    )));
                }
                hit = Some(i);
            }
        }
        hit.ok_or_else(|| {
            let full = match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_owned(),
            };
            Error::Binding(format!("unknown column '{full}'"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_by_name_case_insensitive() {
        let s = Schema::new(["a", "b", "C"]);
        assert_eq!(s.resolve(None, "b").unwrap(), 1);
        assert_eq!(s.resolve(None, "c").unwrap(), 2);
        assert!(s.resolve(None, "z").is_err());
    }

    #[test]
    fn resolve_with_qualifier() {
        let left = Schema::new(["k", "x"]).with_qualifier("l");
        let right = Schema::new(["k", "y"]).with_qualifier("r");
        let joined = left.join(&right);
        assert_eq!(joined.resolve(Some("l"), "k").unwrap(), 0);
        assert_eq!(joined.resolve(Some("r"), "k").unwrap(), 2);
        assert!(joined.resolve(None, "k").is_err(), "bare k is ambiguous");
        assert_eq!(joined.resolve(None, "x").unwrap(), 1);
        assert_eq!(joined.resolve(None, "y").unwrap(), 3);
    }

    #[test]
    fn unknown_qualifier_fails() {
        let s = Schema::new(["a"]).with_qualifier("t");
        assert!(s.resolve(Some("u"), "a").is_err());
        assert_eq!(s.resolve(Some("T"), "a").unwrap(), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Column::new("a").display_name(), "a");
        assert_eq!(Column::qualified("t", "a").display_name(), "t.a");
    }
}
