//! The session's shared-work caches: one [`sgb_core::SgbCache`] per
//! `(table, grouping coordinates, dimensionality)` slot, plus the
//! extracted-point cache that lets repeat queries skip the O(n·d)
//! row-to-point conversion (and its finiteness validation) entirely.
//!
//! The executor routes a similarity node through a slot whenever the node
//! scans a base table directly (only then does the catalog's table
//! version describe the operator's actual input); the planner *probes*
//! the same slots read-only to report `index: cached (hit)` vs `built`
//! in `EXPLAIN` and to let `Auto` account for a zero-build-cost index.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sgb_core::{AroundAlgorithm, CacheStats, SgbCache};
use sgb_geom::Point;

use crate::error::Result;
use crate::expr::BoundExpr;

/// The cache key of a coordinate projection: the debug rendering of the
/// bound expressions. Bound expressions have no interior mutability, so
/// equal renderings mean the same projection of the same input layout.
pub(crate) fn slot_key(coords: &[BoundExpr]) -> String {
    format!("{coords:?}")
}

/// One slot: the core index/result cache plus the extracted grouping
/// points of the slot's table version.
#[derive(Debug, Default)]
pub(crate) struct Slot<const D: usize> {
    core: SgbCache<D>,
    points: Mutex<Option<(u64, Arc<Vec<Point<D>>>)>>,
}

impl<const D: usize> Slot<D> {
    /// The slot's core cache (indexes + whole results).
    pub(crate) fn core(&self) -> &SgbCache<D> {
        &self.core
    }

    /// The extracted points of table version `version`, converting (and
    /// validating) via `build` only when this version hasn't been
    /// extracted yet.
    pub(crate) fn points_for(
        &self,
        version: u64,
        build: impl FnOnce() -> Result<Vec<Point<D>>>,
    ) -> Result<Arc<Vec<Point<D>>>> {
        let mut guard = self.points.lock().expect("points mutex poisoned");
        if let Some((v, pts)) = guard.as_ref() {
            if *v == version {
                return Ok(Arc::clone(pts));
            }
        }
        let pts = Arc::new(build()?);
        *guard = Some((version, Arc::clone(&pts)));
        Ok(pts)
    }
}

/// A slot of either supported dimensionality. The SQL surface fixes the
/// dimensionality per query (2 or 3 grouping attributes), so the map
/// stores a tagged slot and callers pick their arm.
#[derive(Clone, Debug)]
pub(crate) enum DimSlot {
    /// Two grouping attributes.
    D2(Arc<Slot<2>>),
    /// Three grouping attributes.
    D3(Arc<Slot<3>>),
}

/// All shared-work caches of one database session, keyed by
/// `(lower-cased table name, coordinate key)`. Interior-mutable so the
/// read-only SQL entry points (`query`, `explain`) can use them.
#[derive(Debug, Default)]
pub(crate) struct SessionCaches {
    slots: Mutex<HashMap<(String, String), DimSlot>>,
}

impl SessionCaches {
    /// The 2-D slot for `(table, coords)`, created on first use.
    pub(crate) fn slot2(&self, table: &str, coords_key: &str) -> Arc<Slot<2>> {
        let mut slots = self.lock();
        let entry = slots
            .entry((table.to_owned(), coords_key.to_owned()))
            .or_insert_with(|| DimSlot::D2(Arc::new(Slot::default())));
        match entry {
            DimSlot::D2(s) => Arc::clone(s),
            // A slot key collision across dimensionalities is impossible
            // (the coordinate key encodes the expression count), but stay
            // total: replace rather than panic.
            DimSlot::D3(_) => {
                let fresh = Arc::new(Slot::default());
                *entry = DimSlot::D2(Arc::clone(&fresh));
                fresh
            }
        }
    }

    /// The 3-D slot for `(table, coords)`, created on first use.
    pub(crate) fn slot3(&self, table: &str, coords_key: &str) -> Arc<Slot<3>> {
        let mut slots = self.lock();
        let entry = slots
            .entry((table.to_owned(), coords_key.to_owned()))
            .or_insert_with(|| DimSlot::D3(Arc::new(Slot::default())));
        match entry {
            DimSlot::D3(s) => Arc::clone(s),
            DimSlot::D2(_) => {
                let fresh = Arc::new(Slot::default());
                *entry = DimSlot::D3(Arc::clone(&fresh));
                fresh
            }
        }
    }

    /// An existing slot, without creating one — the planner's probes must
    /// not populate the cache.
    fn peek(&self, table: &str, coords_key: &str) -> Option<DimSlot> {
        self.lock()
            .get(&(table.to_owned(), coords_key.to_owned()))
            .cloned()
    }

    /// Read-only: would an SGB-Any grid query over `(table, coords)` at
    /// `version` find a usable cached ε-grid?
    pub(crate) fn has_usable_grid(
        &self,
        table: &str,
        coords_key: &str,
        version: u64,
        eps: f64,
    ) -> bool {
        match self.peek(table, coords_key) {
            Some(DimSlot::D2(s)) => s.core().has_usable_grid(version, eps),
            Some(DimSlot::D3(s)) => s.core().has_usable_grid(version, eps),
            None => false,
        }
    }

    /// Read-only: is a point R-tree with `fanout` cached for `version`?
    pub(crate) fn has_tree(
        &self,
        table: &str,
        coords_key: &str,
        version: u64,
        fanout: usize,
    ) -> bool {
        match self.peek(table, coords_key) {
            Some(DimSlot::D2(s)) => s.core().has_tree(version, fanout),
            Some(DimSlot::D3(s)) => s.core().has_tree(version, fanout),
            None => false,
        }
    }

    /// Read-only: is a center index for exactly this concrete algorithm,
    /// fan-out, and center list cached? (Center indexes are version-free,
    /// so no version parameter.)
    pub(crate) fn has_center_index(
        &self,
        table: &str,
        coords_key: &str,
        algorithm: AroundAlgorithm,
        centers: &[Vec<f64>],
        fanout: usize,
    ) -> bool {
        match self.peek(table, coords_key) {
            Some(DimSlot::D2(s)) => center_points::<2>(centers)
                .is_some_and(|pts| s.core().has_center_index(algorithm, fanout, &pts)),
            Some(DimSlot::D3(s)) => center_points::<3>(centers)
                .is_some_and(|pts| s.core().has_center_index(algorithm, fanout, &pts)),
            None => false,
        }
    }

    /// Read-only: the concrete algorithm of a cached center index for
    /// exactly these centers, if one exists. Center indexes are
    /// version-free, so no version parameter.
    pub(crate) fn cached_center_algorithm(
        &self,
        table: &str,
        coords_key: &str,
        centers: &[Vec<f64>],
        fanout: usize,
    ) -> Option<AroundAlgorithm> {
        match self.peek(table, coords_key)? {
            DimSlot::D2(s) => {
                let pts = center_points::<2>(centers)?;
                s.core().cached_center_algorithm(&pts, fanout)
            }
            DimSlot::D3(s) => {
                let pts = center_points::<3>(centers)?;
                s.core().cached_center_algorithm(&pts, fanout)
            }
        }
    }

    /// Drops every slot of `table` (already lower-cased) — used when the
    /// table is dropped or replaced wholesale.
    pub(crate) fn remove_table(&self, table: &str) {
        self.lock().retain(|(t, _), _| t != table);
    }

    /// The summed counters of every slot.
    pub(crate) fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for slot in self.lock().values() {
            match slot {
                DimSlot::D2(s) => total.accumulate(s.core().stats()),
                DimSlot::D3(s) => total.accumulate(s.core().stats()),
            }
        }
        total
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<(String, String), DimSlot>> {
        self.slots.lock().expect("slot map mutex poisoned")
    }
}

/// Converts plan-level center rows to points, `None` on a length
/// mismatch (the probe then simply reports no cached index).
fn center_points<const D: usize>(centers: &[Vec<f64>]) -> Option<Vec<Point<D>>> {
    centers
        .iter()
        .map(|c| {
            let arr: [f64; D] = c.as_slice().try_into().ok()?;
            Some(Point::new(arr))
        })
        .collect()
}
