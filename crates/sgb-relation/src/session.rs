//! Per-session engine options: one typed surface instead of N setters.
//!
//! Everything the engine lets a session tune about similarity-query
//! execution lives in [`SessionOptions`]: per-operator [`Algorithm`]
//! overrides, the `JOIN-ANY` arbitration seed, and the worker-thread
//! count for the parallel execution paths (future cost-model tunables
//! slot in here too). A [`crate::Database`] is constructed with a
//! set of options ([`crate::Database::with_options`]) and exposes them for
//! later adjustment through one mutable surface
//! ([`crate::Database::session_mut`]); the planner reads them when lowering
//! a similarity clause, resolves `Auto` through the cost model, and records
//! the resolved path *and* why it was chosen on the plan node — so
//! `EXPLAIN` always reports the exact session options a plan was built
//! under.

use std::time::Duration;

use sgb_core::Algorithm;

/// Typed session options for similarity-query execution.
///
/// The defaults leave every operator on [`Algorithm::Auto`] (cost-selected
/// per query from the estimated input cardinality, center count, and
/// dimensionality) with seed 0; overriding an operator pins every query of
/// that operator to the chosen path.
///
/// ```
/// use sgb_core::Algorithm;
/// use sgb_relation::{Database, SessionOptions};
///
/// // Pin SGB-Any to the ε-grid at construction…
/// let opts = SessionOptions::new().with_any_algorithm(Algorithm::Grid);
/// let mut db = Database::with_options(opts);
/// assert_eq!(db.session().any_algorithm, Algorithm::Grid);
/// // …and adjust the session later through one mutable surface.
/// db.session_mut().seed = 42;
/// db.session_mut().any_algorithm = Algorithm::Auto;
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionOptions {
    /// Execution path for `DISTANCE-TO-ALL` queries (every [`Algorithm`]
    /// variant applies).
    pub all_algorithm: Algorithm,
    /// Execution path for `DISTANCE-TO-ANY` queries. `BoundsChecking` is
    /// SGB-All-only; a query planned under it fails with a clear error.
    pub any_algorithm: Algorithm,
    /// Execution path for `AROUND` queries (`AllPairs` is the brute
    /// center scan). `BoundsChecking` is SGB-All-only; a query planned
    /// under it fails with a clear error.
    pub around_algorithm: Algorithm,
    /// Seed for `ON-OVERLAP JOIN-ANY` arbitration (reproducible runs).
    pub seed: u64,
    /// Worker threads for the parallelisable execution paths (0 = auto:
    /// the cost model decides per query from the estimated input
    /// cardinality, see `sgb_core::cost::resolve_threads`). Paths with no
    /// parallel twin — all of SGB-All, SGB-Any's non-grid algorithms —
    /// ignore the setting and run on 1 worker. Thread count never affects
    /// results: the parallel paths are bit-identical to their sequential
    /// twins.
    pub threads: usize,
    /// Shared-work caching across the session's queries (on by default):
    /// built spatial indexes — the SGB-Any ε-grid (with ε-superset reuse)
    /// and R-tree, the SGB-Around center index — plus whole groupings of
    /// exact repeat queries, invalidated by the table's version counter on
    /// any mutation. Caching never changes results, only build work;
    /// `EXPLAIN` reports the disposition per node (`index: cached (hit)` /
    /// `built` / `built (session cache disabled)`) and
    /// [`crate::Database::cache_stats`] the hit/miss/eviction counters.
    pub cache: bool,
    /// Capacity of the per-slot whole-result cache (groupings retained
    /// per `(table, grouping attributes)`; 0 disables result caching
    /// while leaving index caching on).
    pub cache_capacity: usize,
    /// Continuous-query registration (on by default):
    /// [`crate::Database::subscribe`] maintains a grouping incrementally
    /// under INSERT / DELETE deltas and publishes immutable
    /// version-stamped snapshots; matching SELECTs are served from the
    /// fresh snapshot (`EXPLAIN` reports `snapshot: subscription #N`).
    /// Turning this off rejects new registrations; subscriptions already
    /// registered keep being maintained.
    pub subscriptions: bool,
    /// Per-statement execution deadline (`None` = unlimited). Each
    /// statement draws a fresh deadline when it starts executing; a
    /// similarity operator that overruns it stops at the next governor
    /// check and the statement fails with
    /// [`crate::Error::Aborted`]`(Timeout)`. A failed statement leaves the
    /// session fully usable: no partial grouping enters the caches or
    /// subscriptions. Also settable through SQL:
    /// `SET STATEMENT_TIMEOUT = 250` (milliseconds; `0` clears it).
    pub statement_timeout: Option<Duration>,
    /// Approximate per-statement memory budget in bytes for building
    /// spatial indexes (`None` = unlimited). When the budget rules out
    /// the SGB-Any ε-grid, `Auto` degrades to the streaming all-pairs
    /// scan (EXPLAIN records the reason); a session-pinned `Grid` fails
    /// with [`crate::Error::Aborted`]`(BudgetExceeded)` instead. A
    /// version-fresh cached grid costs no new memory and is always
    /// admitted.
    pub memory_budget: Option<usize>,
    /// Slow-query threshold (`None` = logging off). A statement whose
    /// wall-clock execution time reaches this duration is appended —
    /// successful or not — to the session's ring-buffer slow-query log
    /// ([`crate::Database::slow_queries`]). Also settable through SQL:
    /// `SET SLOW_QUERY_MS = 250` (milliseconds; `0` clears it).
    pub slow_query: Option<Duration>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        Self {
            all_algorithm: Algorithm::Auto,
            any_algorithm: Algorithm::Auto,
            around_algorithm: Algorithm::Auto,
            seed: 0,
            threads: 0,
            cache: true,
            cache_capacity: 128,
            subscriptions: true,
            statement_timeout: None,
            memory_budget: None,
            slow_query: None,
        }
    }
}

impl SessionOptions {
    /// The default options: every operator on [`Algorithm::Auto`], seed 0,
    /// shared-work caching on.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the `DISTANCE-TO-ALL` execution path.
    #[must_use]
    pub fn with_all_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.all_algorithm = algorithm;
        self
    }

    /// Sets the `DISTANCE-TO-ANY` execution path.
    #[must_use]
    pub fn with_any_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.any_algorithm = algorithm;
        self
    }

    /// Sets the `AROUND` execution path.
    #[must_use]
    pub fn with_around_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.around_algorithm = algorithm;
        self
    }

    /// Sets the `JOIN-ANY` arbitration seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (0 = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables shared-work caching (indexes + results).
    #[must_use]
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the per-slot whole-result cache capacity (0 disables result
    /// caching; index caching is unaffected).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Enables or disables continuous-query registration
    /// ([`crate::Database::subscribe`]).
    #[must_use]
    pub fn with_subscriptions(mut self, subscriptions: bool) -> Self {
        self.subscriptions = subscriptions;
        self
    }

    /// Sets the per-statement execution deadline (`None` = unlimited).
    #[must_use]
    pub fn with_statement_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.statement_timeout = timeout;
        self
    }

    /// Sets the approximate per-statement memory budget in bytes for
    /// spatial-index builds (`None` = unlimited).
    #[must_use]
    pub fn with_memory_budget(mut self, budget: Option<usize>) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Sets the slow-query logging threshold (`None` = logging off).
    #[must_use]
    pub fn with_slow_query(mut self, threshold: Option<Duration>) -> Self {
        self.slow_query = threshold;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_fields() {
        let opts = SessionOptions::new()
            .with_all_algorithm(Algorithm::BoundsChecking)
            .with_any_algorithm(Algorithm::Grid)
            .with_around_algorithm(Algorithm::Indexed)
            .with_seed(7)
            .with_threads(4)
            .with_cache(false)
            .with_cache_capacity(9)
            .with_subscriptions(false)
            .with_statement_timeout(Some(Duration::from_millis(250)))
            .with_memory_budget(Some(1 << 20))
            .with_slow_query(Some(Duration::from_millis(100)));
        assert_eq!(opts.all_algorithm, Algorithm::BoundsChecking);
        assert_eq!(opts.any_algorithm, Algorithm::Grid);
        assert_eq!(opts.around_algorithm, Algorithm::Indexed);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.threads, 4);
        assert!(!opts.cache);
        assert_eq!(opts.cache_capacity, 9);
        assert!(!opts.subscriptions);
        assert_eq!(opts.statement_timeout, Some(Duration::from_millis(250)));
        assert_eq!(opts.memory_budget, Some(1 << 20));
        assert_eq!(opts.slow_query, Some(Duration::from_millis(100)));
    }

    #[test]
    fn defaults_are_auto() {
        let opts = SessionOptions::default();
        assert_eq!(opts.all_algorithm, Algorithm::Auto);
        assert_eq!(opts.any_algorithm, Algorithm::Auto);
        assert_eq!(opts.around_algorithm, Algorithm::Auto);
        assert_eq!(opts.seed, 0);
        assert_eq!(opts.threads, 0, "auto parallelism by default");
        assert!(opts.cache, "shared-work caching on by default");
        assert_eq!(opts.cache_capacity, 128);
        assert!(opts.subscriptions, "continuous queries on by default");
        assert_eq!(opts.statement_timeout, None, "no deadline by default");
        assert_eq!(opts.memory_budget, None, "no memory budget by default");
        assert_eq!(opts.slow_query, None, "slow-query logging off by default");
    }
}
