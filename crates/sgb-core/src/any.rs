//! The SGB-Any operator (Section 7): distance-to-any grouping.
//!
//! A point belongs to a group when it is within ε of *at least one* other
//! point of the group; groups therefore are the connected components of the
//! ε-threshold graph, and overlapping groups merge (Figure 8). The
//! framework (Procedure 7) processes points one at a time:
//!
//! 1. `FindCandidateGroups` (Procedure 8) finds the groups containing a
//!    point within ε of the new point — by scanning all previous points
//!    (`AllPairs`), with a metric-aware range query on an on-the-fly
//!    R-tree over the points (`Indexed`), or with an ε-grid probe over the
//!    neighbour cells (`Grid` — no tree descent at all). Every index hit
//!    is verified with the canonical predicate (`VerifyPoints`), so all
//!    paths are bit-identical;
//! 2. `ProcessGroupingANY` (Procedure 9) creates a group, joins the single
//!    candidate, or merges all candidates via Union-Find
//!    (`MergeGroupsInsert`).
//!
//! The one-shot [`sgb_any`] additionally exploits knowing the complete
//! point set: it resolves [`AnyAlgorithm::Auto`] from the true
//! cardinality, bulk-loads the index (sort-tile-recursive packing for the
//! R-tree, one pass for the grid) instead of paying insert-at-a-time
//! construction, and probes each point against the full index — the
//! ε-graph is symmetric, so restricting unions to earlier neighbours
//! yields exactly the streaming components. On the grid path the ε-join
//! can further run **sharded across worker threads** (see
//! [`SgbAnyConfig::threads`]): cells partition by hashed key, each worker
//! unions its shard's close pairs into a private forest, and the forests
//! fold with [`DisjointSet::merge_from`] — connectivity depends only on
//! the union of the edge sets, so the result is bit-identical to the
//! sequential join.

use sgb_dsu::DisjointSet;
use sgb_geom::Point;
use sgb_spatial::{Grid, JoinTally, RTree};
use sgb_telemetry::{Counter, Phase, Telemetry};

use crate::governor::{Pacer, QueryGovernor, SgbError, CHECK_INTERVAL};
use crate::{cost, AnyAlgorithm, Grouping, RecordId, SgbAnyConfig};

/// The index state behind `FindCandidateGroups`, per algorithm.
#[derive(Clone, Debug)]
enum AnyIndex<const D: usize> {
    /// All-Pairs: no index, scan the point log.
    Scan,
    /// `Points_IX` of Procedure 8: on-the-fly R-tree.
    Tree(RTree<D, RecordId>),
    /// ε-grid with cell side = ε (`1` when ε = 0).
    Cells(Grid<D, RecordId>),
}

/// Streaming SGB-Any operator.
///
/// Push points in arrival order, then call [`finish`](Self::finish) to
/// obtain the answer groups.
///
/// ```
/// use sgb_core::{SgbAny, SgbAnyConfig};
/// use sgb_geom::Point;
///
/// let mut op = SgbAny::new(SgbAnyConfig::new(3.0));
/// for p in [[1.0, 1.0], [2.0, 2.0], [9.0, 9.0]] {
///     op.push(Point::new(p));
/// }
/// let out = op.finish();
/// assert_eq!(out.sorted_sizes(), vec![2, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct SgbAny<const D: usize> {
    cfg: SgbAnyConfig,
    points: Vec<Point<D>>,
    dsu: DisjointSet,
    /// Index behind `FindCandidateGroups`. [`AnyAlgorithm::Auto`] resolves
    /// at construction via [`cost::resolve_any_streaming`] (a stream's
    /// final cardinality is unknown, so `Auto` assumes the scalable
    /// regime; the one-shot [`sgb_any`] resolves from the true `n`).
    index: AnyIndex<D>,
    /// Scratch buffer for neighbour ids, reused across pushes.
    neighbours: Vec<RecordId>,
    /// Traversal scratch for the R-tree range probe, reused across pushes
    /// so the indexed hot loop allocates nothing per tuple.
    stack: Vec<usize>,
}

impl<const D: usize> SgbAny<D> {
    /// Creates the operator.
    pub fn new(cfg: SgbAnyConfig) -> Self {
        let index = match cost::resolve_any_streaming(cfg.algorithm, D) {
            AnyAlgorithm::AllPairs => AnyIndex::Scan,
            AnyAlgorithm::Indexed => AnyIndex::Tree(RTree::with_max_entries(cfg.rtree_fanout)),
            AnyAlgorithm::Grid => {
                AnyIndex::Cells(Grid::new(Grid::<D, RecordId>::side_for_eps(cfg.eps)))
            }
            AnyAlgorithm::Auto => unreachable!("streaming resolution never returns Auto"),
        };
        Self {
            cfg,
            points: Vec::new(),
            dsu: DisjointSet::new(),
            index,
            neighbours: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// The concrete algorithm this operator runs with (`Auto` resolved).
    pub fn resolved_algorithm(&self) -> AnyAlgorithm {
        match &self.index {
            AnyIndex::Scan => AnyAlgorithm::AllPairs,
            AnyIndex::Tree(_) => AnyAlgorithm::Indexed,
            AnyIndex::Cells(_) => AnyAlgorithm::Grid,
        }
    }

    /// The configuration this operator runs with.
    pub fn config(&self) -> &SgbAnyConfig {
        &self.cfg
    }

    /// Number of points processed so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` before the first point arrives.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of groups formed so far (before finishing).
    pub fn num_groups(&self) -> usize {
        self.dsu.components()
    }

    /// Processes one point (Procedure 7 body), returning its record id.
    pub fn push(&mut self, p: Point<D>) -> RecordId {
        assert!(p.is_finite(), "points must have finite coordinates");
        let id = self.points.len();
        let eps = self.cfg.eps;
        let metric = self.cfg.metric;

        // FindCandidateGroups: collect neighbours within ε. Every index
        // path visits a guaranteed superset of the canonical predicate and
        // verifies each hit with `Metric::within` (`VerifyPoints` of
        // Procedure 8), so all paths agree with All-Pairs exactly,
        // including on distances that tie with ε.
        self.neighbours.clear();
        match &self.index {
            AnyIndex::Scan => {
                // All-Pairs: scan every previously processed point.
                for (j, q) in self.points.iter().enumerate() {
                    if metric.within(&p, q, eps) {
                        self.neighbours.push(j);
                    }
                }
            }
            AnyIndex::Tree(ix) => {
                // Metric-aware range query pruned with the metric's own
                // ball (diamond/disc/square) instead of its enclosing
                // rectangle; the traversal stack is reused scratch.
                let points = &self.points;
                let neighbours = &mut self.neighbours;
                ix.for_each_within(&p, eps, metric, &mut self.stack, |_, &j| {
                    if metric.within(&p, &points[j], eps) {
                        neighbours.push(j);
                    }
                });
            }
            AnyIndex::Cells(grid) => {
                // ε-grid probe: the point's own cell plus its neighbours,
                // no tree descent.
                let neighbours = &mut self.neighbours;
                grid.for_each_within(&p, eps, metric, |q, &j| {
                    if metric.within(&p, q, eps) {
                        neighbours.push(j);
                    }
                });
            }
        }

        // ProcessGroupingANY: a fresh singleton, then merge with every
        // candidate group. Distinguishing the 0/1/many candidate cases of
        // Procedure 9 is unnecessary with union-find: union is idempotent
        // per component.
        self.points.push(p);
        let me = self.dsu.push();
        debug_assert_eq!(me, id);
        for k in 0..self.neighbours.len() {
            let j = self.neighbours[k];
            self.dsu.union(me, j);
        }
        match &mut self.index {
            AnyIndex::Scan => {}
            AnyIndex::Tree(ix) => ix.insert_point(p, id),
            AnyIndex::Cells(grid) => grid.insert(p, id),
        }
        id
    }

    /// Materialises the answer groups (the connected components of the
    /// ε-threshold graph). Groups are keyed by smallest member id; the
    /// eliminated set is always empty for SGB-Any.
    pub fn finish(self) -> Grouping {
        Grouping {
            groups: self.dsu.into_groups(),
            eliminated: Vec::new(),
        }
    }
}

/// One-shot convenience: runs SGB-Any over a slice of points.
///
/// Knowing the complete point set up front enables two things the
/// streaming interface cannot do:
///
/// * [`AnyAlgorithm::Auto`] resolves from the true cardinality
///   ([`cost::resolve_any`]);
/// * the indexed paths **bulk-load** their index — sort-tile-recursive
///   packing for the R-tree ([`RTree::from_points`]), a single pass for
///   the ε-grid — instead of paying one-at-a-time construction, then probe
///   every point against the full index. Only neighbours with a smaller
///   record id are unioned (the ε-graph is symmetric, so each edge is seen
///   from its later endpoint), which reproduces the streaming components
///   bit for bit.
pub fn sgb_any<const D: usize>(points: &[Point<D>], cfg: &SgbAnyConfig) -> Grouping {
    sgb_any_with(points, cfg, &Telemetry::off())
}

/// [`sgb_any`] with a telemetry handle: the query surface routes through
/// this so profiles capture index-build time and join candidate counts;
/// the public one-shot passes [`Telemetry::off`], keeping its hot path
/// byte-identical to the pre-telemetry engine.
pub(crate) fn sgb_any_with<const D: usize>(
    points: &[Point<D>],
    cfg: &SgbAnyConfig,
    tel: &Telemetry,
) -> Grouping {
    let (algorithm, _) = cost::resolve_any(cfg.algorithm, points.len(), D);
    for p in points {
        assert!(p.is_finite(), "points must have finite coordinates");
    }
    match algorithm {
        AnyAlgorithm::AllPairs => {
            let mut op = SgbAny::new(cfg.clone().algorithm(AnyAlgorithm::AllPairs));
            let join = tel.phase(Phase::Join);
            for p in points {
                op.push(*p);
            }
            drop(join);
            let n = points.len() as u64;
            tel.add(Counter::CandidatePairs, n * n.saturating_sub(1) / 2);
            let merge = tel.phase(Phase::Merge);
            let grouping = op.finish();
            drop(merge);
            grouping
        }
        AnyAlgorithm::Indexed => {
            let build = tel.phase(Phase::IndexBuild);
            let index: RTree<D, RecordId> = RTree::from_points(
                cfg.rtree_fanout,
                points.iter().enumerate().map(|(i, p)| (*p, i)),
            );
            drop(build);
            sgb_any_tree(points, cfg, &index, tel)
        }
        AnyAlgorithm::Grid => {
            let build = tel.phase(Phase::IndexBuild);
            let index: Grid<D, RecordId> = Grid::from_points(
                Grid::<D, RecordId>::side_for_eps(cfg.eps),
                points.iter().enumerate().map(|(i, p)| (*p, i)),
            );
            drop(build);
            let (threads, _) = cost::threads_for_any(AnyAlgorithm::Grid, cfg.threads, points.len());
            sgb_any_grid(points, cfg, &index, threads, tel)
        }
        AnyAlgorithm::Auto => unreachable!("resolve_any never returns Auto"),
    }
}

/// The batch `Indexed` join of [`sgb_any`] over an already-built point
/// R-tree — split out so the session index cache can run it against a
/// tree shared across queries. Only neighbours with a smaller record id
/// are unioned (the ε-graph is symmetric), reproducing the streaming
/// components bit for bit.
pub(crate) fn sgb_any_tree<const D: usize>(
    points: &[Point<D>],
    cfg: &SgbAnyConfig,
    index: &RTree<D, RecordId>,
    tel: &Telemetry,
) -> Grouping {
    let (eps, metric) = (cfg.eps, cfg.metric);
    let mut dsu = DisjointSet::with_len(points.len());
    let mut stack = Vec::new();
    // Branchless candidate tally: `enabled` folds to 0 when the handle is
    // off, so the probe loop stays a register add away from its
    // pre-telemetry codegen.
    let enabled = tel.is_enabled() as u64;
    let mut visited: u64 = 0;
    let join = tel.phase(Phase::Join);
    for (i, p) in points.iter().enumerate() {
        index.for_each_within(p, eps, metric, &mut stack, |_, &j| {
            visited += enabled;
            if j < i && metric.within(p, &points[j], eps) {
                dsu.union(i, j);
            }
        });
    }
    drop(join);
    tel.add(Counter::CandidatePairs, visited);
    let merge = tel.phase(Phase::Merge);
    let groups = dsu.into_groups();
    drop(merge);
    Grouping {
        groups,
        eliminated: Vec::new(),
    }
}

/// The batch ε-join of [`sgb_any`] over an already-built ε-grid: each
/// close pair surfaces exactly once from the neighbour-cell scan (a
/// constant number of hash lookups per occupied cell), verified with the
/// exact `Metric::within` arithmetic, unioned.
///
/// Split out so the session index cache can run it against a shared grid;
/// the grid's cell side may be *smaller* than ε (ε-superset reuse — the
/// probe window widens to `ceil(ε / cell) + 1` cells), which never changes
/// the verified pair set, so the grouping is bit-identical to a grid built
/// at cell side ε.
pub(crate) fn sgb_any_grid<const D: usize>(
    points: &[Point<D>],
    cfg: &SgbAnyConfig,
    index: &Grid<D, RecordId>,
    threads: usize,
    tel: &Telemetry,
) -> Grouping {
    let (eps, metric) = (cfg.eps, cfg.metric);
    let mut dsu = DisjointSet::with_len(points.len());
    if threads <= 1 {
        if tel.is_enabled() {
            // Tallied twin of the plain join (same cell enumeration, same
            // verified pair set — asserted in `sgb_spatial::grid`); the
            // pace budget is unbounded so no governance check ever fires.
            let mut tally = JoinTally::default();
            let join = tel.phase(Phase::Join);
            index
                .try_for_each_pair_within_sharded_paced_tallied(
                    eps,
                    metric,
                    0,
                    1,
                    |&i, &j| {
                        dsu.union(i, j);
                    },
                    usize::MAX,
                    || Ok::<(), std::convert::Infallible>(()),
                    Some(&mut tally),
                )
                .unwrap();
            drop(join);
            join_tally_into(tel, &tally);
        } else {
            // Disabled handle: the pre-telemetry join, untouched — the
            // `telemetry` bench gate pins this path at < 2% overhead.
            let join = tel.phase(Phase::Join);
            index.for_each_pair_within(eps, metric, |&i, &j| {
                dsu.union(i, j);
            });
            drop(join);
        }
    } else {
        // Sharded join: cells are partitioned by hashed key across
        // `threads` shards and every close pair belongs to exactly
        // one shard, so the per-shard forests union the same edge
        // set a sequential run sees. Merging forests is
        // commutative over edges, hence the final `into_groups`
        // output is bit-identical to the sequential twin
        // (asserted by `tests/proptest_parallel.rs`).
        let mut forests: Vec<DisjointSet> = (0..threads)
            .map(|_| DisjointSet::with_len(points.len()))
            .collect();
        let enabled = tel.is_enabled();
        let mut tallies: Vec<JoinTally> = vec![JoinTally::default(); threads];
        let join = tel.phase(Phase::Join);
        let mut pool = scoped_threadpool::Pool::new(threads as u32);
        pool.scoped(|scope| {
            for (shard, (forest, tally)) in forests.iter_mut().zip(tallies.iter_mut()).enumerate() {
                scope.execute(move || {
                    if enabled {
                        index
                            .try_for_each_pair_within_sharded_paced_tallied(
                                eps,
                                metric,
                                shard,
                                threads,
                                |&i, &j| {
                                    forest.union(i, j);
                                },
                                usize::MAX,
                                || Ok::<(), std::convert::Infallible>(()),
                                Some(tally),
                            )
                            .unwrap();
                    } else {
                        index.for_each_pair_within_sharded(
                            eps,
                            metric,
                            shard,
                            threads,
                            |&i, &j| {
                                forest.union(i, j);
                            },
                        );
                    }
                });
            }
        });
        drop(join);
        if enabled {
            let mut total = JoinTally::default();
            for tally in &tallies {
                total.merge(tally);
            }
            join_tally_into(tel, &total);
            tel.record_max(Counter::ThreadsUsed, threads as u64);
        }
        let merge = tel.phase(Phase::Merge);
        for forest in &forests {
            dsu.merge_from(forest);
        }
        drop(merge);
    }
    let merge = tel.phase(Phase::Merge);
    let groups = dsu.into_groups();
    drop(merge);
    Grouping {
        groups,
        eliminated: Vec::new(),
    }
}

/// Records a grid join's tally into the profile counters.
fn join_tally_into(tel: &Telemetry, tally: &JoinTally) {
    tel.add(Counter::CandidatePairs, tally.candidate_pairs);
    tel.add(Counter::CellsProbed, tally.cells_visited);
}

/// Governed twin of the all-pairs scan: the direct pairwise loop with a
/// [`Pacer`] tick per comparison. It unions edge `(i, j)` for every
/// `j < i` in ascending order — exactly the unions the streaming
/// [`SgbAny::push`] scan performs — so the grouping is bit-identical.
pub(crate) fn try_sgb_any_all_pairs<const D: usize>(
    points: &[Point<D>],
    cfg: &SgbAnyConfig,
    governor: &QueryGovernor,
    tel: &Telemetry,
) -> Result<Grouping, SgbError> {
    governor.check()?;
    let (eps, metric) = (cfg.eps, cfg.metric);
    let mut dsu = DisjointSet::with_len(points.len());
    let mut pacer = Pacer::new();
    let join = tel.phase(Phase::Join);
    for i in 0..points.len() {
        for j in 0..i {
            pacer.tick(governor)?;
            if metric.within(&points[i], &points[j], eps) {
                dsu.union(i, j);
            }
        }
    }
    drop(join);
    // The scan's work is exactly the pair triangle, and the pacer polls
    // the governor once per CHECK_INTERVAL ticks (plus the entry check)
    // — both are arithmetic, so the governed loop needs no inline tally.
    let n = points.len() as u64;
    let pairs = n * n.saturating_sub(1) / 2;
    tel.add(Counter::CandidatePairs, pairs);
    tel.add(
        Counter::GovernorPolls,
        1 + pairs / u64::from(CHECK_INTERVAL),
    );
    let merge = tel.phase(Phase::Merge);
    let groups = dsu.into_groups();
    drop(merge);
    Ok(Grouping {
        groups,
        eliminated: Vec::new(),
    })
}

/// Governed twin of [`sgb_any_tree`]: same probes, same unions, plus a
/// deadline/cancellation check per tuple (each probe is the unit of work
/// worth pacing — the per-hit callback stays infallible and branch-free).
pub(crate) fn try_sgb_any_tree<const D: usize>(
    points: &[Point<D>],
    cfg: &SgbAnyConfig,
    index: &RTree<D, RecordId>,
    governor: &QueryGovernor,
    tel: &Telemetry,
) -> Result<Grouping, SgbError> {
    governor.check()?;
    let (eps, metric) = (cfg.eps, cfg.metric);
    let mut dsu = DisjointSet::with_len(points.len());
    let mut stack = Vec::new();
    let mut pacer = Pacer::new();
    let enabled = tel.is_enabled() as u64;
    let mut visited: u64 = 0;
    let join = tel.phase(Phase::Join);
    for (i, p) in points.iter().enumerate() {
        pacer.tick(governor)?;
        index.for_each_within(p, eps, metric, &mut stack, |_, &j| {
            visited += enabled;
            if j < i && metric.within(p, &points[j], eps) {
                dsu.union(i, j);
            }
        });
    }
    drop(join);
    tel.add(Counter::CandidatePairs, visited);
    tel.add(
        Counter::GovernorPolls,
        1 + points.len() as u64 / u64::from(CHECK_INTERVAL),
    );
    let merge = tel.phase(Phase::Merge);
    let groups = dsu.into_groups();
    drop(merge);
    Ok(Grouping {
        groups,
        eliminated: Vec::new(),
    })
}

/// Governed twin of [`sgb_any_grid`]. Both the sequential and the sharded
/// join run the grid's *paced* variant: the per-pair visitor is
/// infallible (same codegen as the ungoverned join) and the governance
/// check runs at cell-row boundaries, every ≤ [`CHECK_INTERVAL`]
/// candidates. Each shard paces against the *shared* governor at its own
/// cadence and parks its verdict in a per-shard slot — no cross-thread
/// abort flag needed. A panicking worker surfaces
/// as [`SgbError::WorkerPanicked`] (the pool cancels the remaining shards
/// and keeps its queue lock un-poisoned — see `vendor/scoped_threadpool`).
///
/// On `Ok`, the grouping is bit-identical to [`sgb_any_grid`]; on `Err`,
/// everything built here is dropped — no partial grouping escapes.
pub(crate) fn try_sgb_any_grid<const D: usize>(
    points: &[Point<D>],
    cfg: &SgbAnyConfig,
    index: &Grid<D, RecordId>,
    threads: usize,
    governor: &QueryGovernor,
    tel: &Telemetry,
) -> Result<Grouping, SgbError> {
    failpoints::fail_point!("sgb_core::any::grid_join", |_| Err(SgbError::Cancelled));
    governor.check()?;
    let (eps, metric) = (cfg.eps, cfg.metric);
    let mut dsu = DisjointSet::with_len(points.len());
    if threads <= 1 {
        if tel.is_enabled() {
            // Tallied twin of the paced join: same pair enumeration, same
            // governance cadence, plus the candidate/cell tally and a
            // poll count from the pace closure (which runs once per
            // ≤ CHECK_INTERVAL candidates — off the hot loop).
            let mut tally = JoinTally::default();
            let mut polls: u64 = 1;
            let join = tel.phase(Phase::Join);
            let verdict = index.try_for_each_pair_within_sharded_paced_tallied(
                eps,
                metric,
                0,
                1,
                |&i, &j| {
                    dsu.union(i, j);
                },
                CHECK_INTERVAL as usize,
                || {
                    polls += 1;
                    governor.check()
                },
                Some(&mut tally),
            );
            drop(join);
            join_tally_into(tel, &tally);
            tel.add(Counter::GovernorPolls, polls);
            verdict?;
        } else {
            // Paced join: the per-pair visitor stays infallible (identical
            // codegen to the ungoverned join); the deadline/cancellation
            // check runs at cell-row boundaries, every ≤ CHECK_INTERVAL
            // candidate comparisons.
            index.try_for_each_pair_within_paced(
                eps,
                metric,
                |&i, &j| {
                    dsu.union(i, j);
                },
                CHECK_INTERVAL as usize,
                || governor.check(),
            )?;
        }
    } else {
        let mut forests: Vec<DisjointSet> = (0..threads)
            .map(|_| DisjointSet::with_len(points.len()))
            .collect();
        let mut verdicts: Vec<Result<(), SgbError>> = vec![Ok(()); threads];
        let enabled = tel.is_enabled();
        let mut tallies: Vec<JoinTally> = vec![JoinTally::default(); threads];
        let join = tel.phase(Phase::Join);
        let mut pool = scoped_threadpool::Pool::new(threads as u32);
        pool.try_scoped(|scope| {
            for (shard, ((forest, verdict), tally)) in forests
                .iter_mut()
                .zip(verdicts.iter_mut())
                .zip(tallies.iter_mut())
                .enumerate()
            {
                scope.execute(move || {
                    *verdict = index.try_for_each_pair_within_sharded_paced_tallied(
                        eps,
                        metric,
                        shard,
                        threads,
                        |&i, &j| {
                            forest.union(i, j);
                        },
                        CHECK_INTERVAL as usize,
                        || governor.check(),
                        if enabled { Some(tally) } else { None },
                    );
                });
            }
        })
        .map_err(|p| SgbError::WorkerPanicked {
            message: p.message().to_owned(),
        })?;
        drop(join);
        if enabled {
            let mut total = JoinTally::default();
            for tally in &tallies {
                total.merge(tally);
            }
            join_tally_into(tel, &total);
            tel.add(
                Counter::GovernorPolls,
                threads as u64 + total.candidate_pairs / u64::from(CHECK_INTERVAL),
            );
            tel.record_max(Counter::ThreadsUsed, threads as u64);
        }
        for verdict in verdicts {
            verdict?;
        }
        let merge = tel.phase(Phase::Merge);
        for forest in &forests {
            dsu.try_merge_from(forest, || governor.check())?;
        }
        drop(merge);
    }
    let merge = tel.phase(Phase::Merge);
    let groups = dsu.into_groups();
    drop(merge);
    Ok(Grouping {
        groups,
        eliminated: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgb_geom::Metric;

    fn pts(raw: &[[f64; 2]]) -> Vec<Point<2>> {
        raw.iter().map(|&c| Point::new(c)).collect()
    }

    /// Brute-force reference: connected components of the ε-graph.
    fn reference(points: &[Point<2>], eps: f64, metric: Metric) -> Grouping {
        let mut dsu = DisjointSet::with_len(points.len());
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if metric.within(&points[i], &points[j], eps) {
                    dsu.union(i, j);
                }
            }
        }
        Grouping {
            groups: dsu.into_groups(),
            eliminated: Vec::new(),
        }
    }

    #[test]
    fn fig1b_chain_forms_one_group() {
        // Figure 1b: points a–h connected transitively under ε = 3 form a
        // single group even though distant pairs exceed ε.
        let points = pts(&[
            [1.0, 5.0], // a
            [2.0, 2.5], // b
            [2.5, 4.0], // c  (within 3 of a, b, d, f)
            [4.5, 3.0], // d
            [6.5, 2.0], // e  (within 3 of d)
            [4.0, 5.0], // f
            [5.5, 5.5], // g
            [6.0, 4.5], // h
        ]);
        let out = sgb_any(&points, &SgbAnyConfig::new(3.0));
        assert_eq!(out.num_groups(), 1);
        assert_eq!(out.groups[0].len(), 8);
    }

    #[test]
    fn fig2_example2_groups_merge_on_overlap() {
        // Figure 2 / Example 2: a5 is within ε of both g1 {a1,a2} and
        // g2 {a3,a4}; the groups merge and the query output is {5}.
        let points = pts(&[
            [2.0, 6.0], // a1
            [3.0, 7.0], // a2
            [6.0, 5.0], // a3
            [7.5, 4.0], // a4
            [4.5, 5.5], // a5
        ]);
        for metric in Metric::ALL {
            let out = sgb_any(&points, &SgbAnyConfig::new(3.0).metric(metric));
            assert_eq!(out.sizes(), vec![5], "metric {metric:?}");
        }
    }

    #[test]
    fn isolated_points_form_singletons() {
        let points = pts(&[[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]]);
        let out = sgb_any(&points, &SgbAnyConfig::new(1.0));
        assert_eq!(out.sizes(), vec![1, 1, 1]);
        out.check_partition(3);
    }

    #[test]
    fn empty_input() {
        let out = sgb_any::<2>(&[], &SgbAnyConfig::new(1.0));
        assert_eq!(out.num_groups(), 0);
    }

    #[test]
    fn duplicate_points_group_together() {
        let points = pts(&[[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]]);
        let out = sgb_any(&points, &SgbAnyConfig::new(0.0));
        assert_eq!(out.sizes(), vec![3]);
    }

    #[test]
    fn epsilon_zero_groups_only_exact_duplicates() {
        let points = pts(&[[1.0, 1.0], [1.0, 1.0], [1.0, 1.000001]]);
        let out = sgb_any(&points, &SgbAnyConfig::new(0.0));
        assert_eq!(out.sorted_sizes(), vec![2, 1]);
    }

    #[test]
    fn verification_rejects_window_corners_for_conservative_metrics() {
        // Two points at the corner of each other's ε-window: L∞ groups
        // them; L2 (δ ≈ 1.27) and L1 (δ = 1.8) must not (VerifyPoints,
        // Procedure 8 line 4).
        let points = pts(&[[0.0, 0.0], [0.9, 0.9]]);
        let eps = 1.0;
        for algo in [
            AnyAlgorithm::AllPairs,
            AnyAlgorithm::Indexed,
            AnyAlgorithm::Grid,
        ] {
            let linf = sgb_any(
                &points,
                &SgbAnyConfig::new(eps).metric(Metric::LInf).algorithm(algo),
            );
            assert_eq!(linf.num_groups(), 1, "{algo:?}");
            for metric in [Metric::L1, Metric::L2] {
                let out = sgb_any(
                    &points,
                    &SgbAnyConfig::new(eps).metric(metric).algorithm(algo),
                );
                assert_eq!(out.num_groups(), 2, "{algo:?} {metric}");
            }
        }
    }

    #[test]
    fn indexed_matches_all_pairs_and_reference() {
        // Pseudo-random point cloud; all algorithms and the brute-force
        // reference must agree exactly.
        let mut state: u64 = 0xDEADBEEF;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let points: Vec<Point<2>> = (0..400)
            .map(|_| Point::new([next() * 10.0, next() * 10.0]))
            .collect();
        for metric in Metric::ALL {
            for eps in [0.05, 0.2, 0.6] {
                let expected = reference(&points, eps, metric).normalized();
                for algo in [
                    AnyAlgorithm::AllPairs,
                    AnyAlgorithm::Indexed,
                    AnyAlgorithm::Grid,
                    AnyAlgorithm::Auto,
                ] {
                    let cfg = SgbAnyConfig::new(eps).metric(metric).algorithm(algo);
                    let got = sgb_any(&points, &cfg);
                    got.check_partition(points.len());
                    assert_eq!(got.normalized(), expected, "{algo:?} {metric:?} ε={eps}");
                }
            }
        }
    }

    #[test]
    fn streaming_and_bulk_paths_agree_exactly() {
        // The one-shot helper bulk-loads its index and probes the full
        // point set; the streaming interface builds incrementally. Both
        // must materialise identical groupings (not just normalized ones —
        // components are keyed by smallest member either way).
        let mut state: u64 = 0xB01D;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let points: Vec<Point<2>> = (0..700)
            .map(|_| Point::new([next() * 10.0, next() * 10.0]))
            .collect();
        for metric in Metric::ALL {
            for algo in [
                AnyAlgorithm::AllPairs,
                AnyAlgorithm::Indexed,
                AnyAlgorithm::Grid,
            ] {
                let cfg = SgbAnyConfig::new(0.25).metric(metric).algorithm(algo);
                let mut op = SgbAny::new(cfg.clone());
                for p in &points {
                    op.push(*p);
                }
                assert_eq!(op.resolved_algorithm(), algo);
                assert_eq!(op.finish(), sgb_any(&points, &cfg), "{algo:?} {metric}");
            }
        }
    }

    #[test]
    fn auto_resolves_by_cardinality_and_matches_every_concrete() {
        let small = pts(&[[0.0, 0.0], [0.4, 0.0], [5.0, 5.0]]);
        let op = SgbAny::<2>::new(SgbAnyConfig::new(0.5));
        // Streaming Auto assumes the scalable regime.
        assert_eq!(op.resolved_algorithm(), AnyAlgorithm::Grid);
        let auto = sgb_any(&small, &SgbAnyConfig::new(0.5));
        for algo in [
            AnyAlgorithm::AllPairs,
            AnyAlgorithm::Indexed,
            AnyAlgorithm::Grid,
        ] {
            let concrete = sgb_any(&small, &SgbAnyConfig::new(0.5).algorithm(algo));
            assert_eq!(auto, concrete, "{algo:?}");
        }
    }

    #[test]
    fn order_independence_of_components() {
        // SGB-Any output is insertion-order independent (as a set of sets).
        let points = pts(&[
            [0.0, 0.0],
            [1.0, 0.0],
            [2.0, 0.0],
            [8.0, 8.0],
            [8.5, 8.5],
            [20.0, 20.0],
        ]);
        let cfg = SgbAnyConfig::new(1.5);
        let forward = sgb_any(&points, &cfg).normalized();
        let mut rev = points.clone();
        rev.reverse();
        let backward = sgb_any(&rev, &cfg);
        // Map reversed ids back to original ids before comparing.
        let n = points.len();
        let remapped = Grouping {
            groups: backward
                .groups
                .iter()
                .map(|g| g.iter().map(|&i| n - 1 - i).collect())
                .collect(),
            eliminated: vec![],
        };
        assert_eq!(remapped.normalized(), forward);
    }

    #[test]
    fn streaming_group_count_is_monotone_under_merges() {
        let mut op = SgbAny::new(SgbAnyConfig::new(1.5));
        op.push(Point::new([0.0, 0.0]));
        op.push(Point::new([5.0, 0.0]));
        assert_eq!(op.num_groups(), 2);
        // Bridging point merges both groups.
        op.push(Point::new([2.0, 0.0])); // within 1.5 of neither! 2.0 vs 0.0 → 2.0 > 1.5
        assert_eq!(op.num_groups(), 3);
        op.push(Point::new([1.0, 0.0])); // links 0.0 and 2.0
        assert_eq!(op.num_groups(), 2);
        op.push(Point::new([3.5, 0.0])); // links 2.0 and 5.0
        assert_eq!(op.num_groups(), 1);
        assert_eq!(op.len(), 5);
        let out = op.finish();
        assert_eq!(out.sizes(), vec![5]);
    }

    #[test]
    fn sharded_parallel_grid_join_is_bit_identical_to_sequential() {
        let mut state: u64 = 0x5A4D;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let points: Vec<Point<2>> = (0..900)
            .map(|_| Point::new([next() * 10.0, next() * 10.0]))
            .collect();
        for metric in Metric::ALL {
            let base = SgbAnyConfig::new(0.3)
                .metric(metric)
                .algorithm(AnyAlgorithm::Grid);
            let sequential = sgb_any(&points, &base.clone().threads(1));
            for threads in [2, 3, 7] {
                let parallel = sgb_any(&points, &base.clone().threads(threads));
                // Exact equality, not normalized: group numbering and
                // member order must match the sequential run bit for bit.
                assert_eq!(
                    parallel.groups, sequential.groups,
                    "{metric} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn governed_joins_match_their_infallible_twins_and_honor_deadlines() {
        let mut state: u64 = 0x60BE;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let points: Vec<Point<2>> = (0..900)
            .map(|_| Point::new([next() * 10.0, next() * 10.0]))
            .collect();
        let eps = 0.3;
        let free = QueryGovernor::unrestricted();
        let cfg = SgbAnyConfig::new(eps);
        let grid: Grid<2, RecordId> = Grid::from_points(
            Grid::<2, RecordId>::side_for_eps(eps),
            points.iter().enumerate().map(|(i, p)| (*p, i)),
        );
        let tree: RTree<2, RecordId> = RTree::from_points(
            cfg.rtree_fanout,
            points.iter().enumerate().map(|(i, p)| (*p, i)),
        );
        let off = Telemetry::off();
        let expected = sgb_any(&points, &cfg.clone().algorithm(AnyAlgorithm::AllPairs));
        assert_eq!(
            try_sgb_any_all_pairs(&points, &cfg, &free, &off).unwrap(),
            expected
        );
        assert_eq!(
            try_sgb_any_tree(&points, &cfg, &tree, &free, &off).unwrap(),
            expected
        );
        for threads in [1, 3] {
            assert_eq!(
                try_sgb_any_grid(&points, &cfg, &grid, threads, &free, &off).unwrap(),
                expected,
                "threads={threads}"
            );
        }
        // An already-expired deadline aborts every path with `Timeout`.
        let expired =
            QueryGovernor::unrestricted().with_deadline(std::time::Duration::from_secs(0));
        assert!(matches!(
            try_sgb_any_all_pairs(&points, &cfg, &expired, &off),
            Err(SgbError::Timeout)
        ));
        assert!(matches!(
            try_sgb_any_tree(&points, &cfg, &tree, &expired, &off),
            Err(SgbError::Timeout)
        ));
        for threads in [1, 3] {
            assert!(matches!(
                try_sgb_any_grid(&points, &cfg, &grid, threads, &expired, &off),
                Err(SgbError::Timeout)
            ));
        }
    }

    #[test]
    fn telemetry_tallies_do_not_change_groupings_and_count_candidates() {
        let mut state: u64 = 0x7E1E;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let points: Vec<Point<2>> = (0..600)
            .map(|_| Point::new([next() * 10.0, next() * 10.0]))
            .collect();
        let eps = 0.3;
        let free = QueryGovernor::unrestricted();
        let cfg = SgbAnyConfig::new(eps);
        let grid: Grid<2, RecordId> = Grid::from_points(
            Grid::<2, RecordId>::side_for_eps(eps),
            points.iter().enumerate().map(|(i, p)| (*p, i)),
        );
        let tree: RTree<2, RecordId> = RTree::from_points(
            cfg.rtree_fanout,
            points.iter().enumerate().map(|(i, p)| (*p, i)),
        );
        let expected = sgb_any(&points, &cfg.clone().algorithm(AnyAlgorithm::AllPairs));
        // Connecting the components needs at least a spanning forest of
        // ε-edges, so every join must have visited at least this many
        // candidates (a component of size k can have as few as k-1 edges).
        let accepted = (points.len() - expected.groups.len()) as u64;

        // Every instrumented path groups identically to its silent twin
        // and reports at least as many candidates as the ε-graph's edge
        // lower bound, with the join/merge phases timed.
        let runs: Vec<(&str, Grouping, Telemetry)> = vec![
            {
                let tel = Telemetry::new();
                let out = sgb_any_with(&points, &cfg, &tel);
                ("auto", out, tel)
            },
            {
                let tel = Telemetry::new();
                let out = sgb_any_tree(&points, &cfg, &tree, &tel);
                ("tree", out, tel)
            },
            {
                let tel = Telemetry::new();
                let out = sgb_any_grid(&points, &cfg, &grid, 3, &tel);
                ("grid3", out, tel)
            },
            {
                let tel = Telemetry::new();
                let out = try_sgb_any_all_pairs(&points, &cfg, &free, &tel).unwrap();
                ("try-allpairs", out, tel)
            },
            {
                let tel = Telemetry::new();
                let out = try_sgb_any_tree(&points, &cfg, &tree, &free, &tel).unwrap();
                ("try-tree", out, tel)
            },
            {
                let tel = Telemetry::new();
                let out = try_sgb_any_grid(&points, &cfg, &grid, 1, &free, &tel).unwrap();
                ("try-grid1", out, tel)
            },
            {
                let tel = Telemetry::new();
                let out = try_sgb_any_grid(&points, &cfg, &grid, 3, &free, &tel).unwrap();
                ("try-grid3", out, tel)
            },
        ];
        for (label, out, tel) in runs {
            assert_eq!(out, expected, "{label}");
            let profile = tel.profile().unwrap();
            assert!(
                profile.counter(Counter::CandidatePairs) >= accepted,
                "{label}: candidates {} < accepted pairs {accepted}",
                profile.counter(Counter::CandidatePairs)
            );
            assert!(profile.phase_nanos(Phase::Join) > 0, "{label}: join timed");
            assert!(
                profile.phase_nanos(Phase::Merge) > 0,
                "{label}: merge timed"
            );
        }

        // Sharded grid tallies agree with the sequential tally.
        let (seq, par) = (Telemetry::new(), Telemetry::new());
        try_sgb_any_grid(&points, &cfg, &grid, 1, &free, &seq).unwrap();
        try_sgb_any_grid(&points, &cfg, &grid, 3, &free, &par).unwrap();
        let (seq, par) = (seq.profile().unwrap(), par.profile().unwrap());
        assert_eq!(
            seq.counter(Counter::CandidatePairs),
            par.counter(Counter::CandidatePairs)
        );
        assert_eq!(
            seq.counter(Counter::CellsProbed),
            par.counter(Counter::CellsProbed)
        );
        assert_eq!(par.counter(Counter::ThreadsUsed), 3);
    }

    #[test]
    fn three_dimensional_points() {
        let points: Vec<Point<3>> = vec![
            Point::new([0.0, 0.0, 0.0]),
            Point::new([0.5, 0.5, 0.5]),
            Point::new([0.0, 0.0, 5.0]), // far only in z
        ];
        let out = sgb_any(&points, &SgbAnyConfig::new(1.0));
        assert_eq!(out.sorted_sizes(), vec![2, 1]);
    }
}
