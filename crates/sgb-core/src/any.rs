//! The SGB-Any operator (Section 7): distance-to-any grouping.
//!
//! A point belongs to a group when it is within ε of *at least one* other
//! point of the group; groups therefore are the connected components of the
//! ε-threshold graph, and overlapping groups merge (Figure 8). The
//! framework (Procedure 7) processes points one at a time:
//!
//! 1. `FindCandidateGroups` (Procedure 8) finds the groups containing a
//!    point within ε of the new point — either by scanning all previous
//!    points (`AllPairs`) or with a metric-aware range query on an
//!    on-the-fly R-tree over the points (`Indexed`), followed by an exact
//!    distance check with the canonical predicate (`VerifyPoints`);
//! 2. `ProcessGroupingANY` (Procedure 9) creates a group, joins the single
//!    candidate, or merges all candidates via Union-Find
//!    (`MergeGroupsInsert`).

use sgb_dsu::DisjointSet;
use sgb_geom::Point;
use sgb_spatial::RTree;

use crate::{AnyAlgorithm, Grouping, RecordId, SgbAnyConfig};

/// Streaming SGB-Any operator.
///
/// Push points in arrival order, then call [`finish`](Self::finish) to
/// obtain the answer groups.
///
/// ```
/// use sgb_core::{SgbAny, SgbAnyConfig};
/// use sgb_geom::Point;
///
/// let mut op = SgbAny::new(SgbAnyConfig::new(3.0));
/// for p in [[1.0, 1.0], [2.0, 2.0], [9.0, 9.0]] {
///     op.push(Point::new(p));
/// }
/// let out = op.finish();
/// assert_eq!(out.sorted_sizes(), vec![2, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct SgbAny<const D: usize> {
    cfg: SgbAnyConfig,
    points: Vec<Point<D>>,
    dsu: DisjointSet,
    /// `Points_IX` of Procedure 8 (only for [`AnyAlgorithm::Indexed`]).
    index: Option<RTree<D, RecordId>>,
    /// Scratch buffer for neighbour ids, reused across pushes.
    neighbours: Vec<RecordId>,
}

impl<const D: usize> SgbAny<D> {
    /// Creates the operator.
    pub fn new(cfg: SgbAnyConfig) -> Self {
        let index = match cfg.algorithm {
            AnyAlgorithm::AllPairs => None,
            AnyAlgorithm::Indexed => Some(RTree::with_max_entries(cfg.rtree_fanout)),
        };
        Self {
            cfg,
            points: Vec::new(),
            dsu: DisjointSet::new(),
            index,
            neighbours: Vec::new(),
        }
    }

    /// The configuration this operator runs with.
    pub fn config(&self) -> &SgbAnyConfig {
        &self.cfg
    }

    /// Number of points processed so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` before the first point arrives.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of groups formed so far (before finishing).
    pub fn num_groups(&self) -> usize {
        self.dsu.components()
    }

    /// Processes one point (Procedure 7 body), returning its record id.
    pub fn push(&mut self, p: Point<D>) -> RecordId {
        assert!(p.is_finite(), "points must have finite coordinates");
        let id = self.points.len();
        let eps = self.cfg.eps;
        let metric = self.cfg.metric;

        // FindCandidateGroups: collect neighbours within ε.
        self.neighbours.clear();
        match &self.index {
            None => {
                // All-Pairs: scan every previously processed point.
                for (j, q) in self.points.iter().enumerate() {
                    if metric.within(&p, q, eps) {
                        self.neighbours.push(j);
                    }
                }
            }
            Some(ix) => {
                // Metric-aware range query pruned with the metric's own
                // ball (diamond/disc/square) instead of its enclosing
                // rectangle, then verify every hit with the canonical
                // predicate — `VerifyPoints` of Procedure 8. The query's
                // relaxed threshold makes the visited set a guaranteed
                // superset of the floating-point predicate, so this path
                // agrees with All-Pairs exactly, including on distances
                // that tie with ε.
                let points = &self.points;
                let neighbours = &mut self.neighbours;
                ix.query_within(&p, eps, metric, |_, &j| {
                    if metric.within(&p, &points[j], eps) {
                        neighbours.push(j);
                    }
                });
            }
        }

        // ProcessGroupingANY: a fresh singleton, then merge with every
        // candidate group. Distinguishing the 0/1/many candidate cases of
        // Procedure 9 is unnecessary with union-find: union is idempotent
        // per component.
        self.points.push(p);
        let me = self.dsu.push();
        debug_assert_eq!(me, id);
        for k in 0..self.neighbours.len() {
            let j = self.neighbours[k];
            self.dsu.union(me, j);
        }
        if let Some(ix) = &mut self.index {
            ix.insert_point(p, id);
        }
        id
    }

    /// Materialises the answer groups (the connected components of the
    /// ε-threshold graph). Groups are keyed by smallest member id; the
    /// eliminated set is always empty for SGB-Any.
    pub fn finish(self) -> Grouping {
        Grouping {
            groups: self.dsu.into_groups(),
            eliminated: Vec::new(),
        }
    }
}

/// One-shot convenience: runs SGB-Any over a slice of points.
pub fn sgb_any<const D: usize>(points: &[Point<D>], cfg: &SgbAnyConfig) -> Grouping {
    let mut op = SgbAny::new(cfg.clone());
    for p in points {
        op.push(*p);
    }
    op.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgb_geom::Metric;

    fn pts(raw: &[[f64; 2]]) -> Vec<Point<2>> {
        raw.iter().map(|&c| Point::new(c)).collect()
    }

    /// Brute-force reference: connected components of the ε-graph.
    fn reference(points: &[Point<2>], eps: f64, metric: Metric) -> Grouping {
        let mut dsu = DisjointSet::with_len(points.len());
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if metric.within(&points[i], &points[j], eps) {
                    dsu.union(i, j);
                }
            }
        }
        Grouping {
            groups: dsu.into_groups(),
            eliminated: Vec::new(),
        }
    }

    #[test]
    fn fig1b_chain_forms_one_group() {
        // Figure 1b: points a–h connected transitively under ε = 3 form a
        // single group even though distant pairs exceed ε.
        let points = pts(&[
            [1.0, 5.0], // a
            [2.0, 2.5], // b
            [2.5, 4.0], // c  (within 3 of a, b, d, f)
            [4.5, 3.0], // d
            [6.5, 2.0], // e  (within 3 of d)
            [4.0, 5.0], // f
            [5.5, 5.5], // g
            [6.0, 4.5], // h
        ]);
        let out = sgb_any(&points, &SgbAnyConfig::new(3.0));
        assert_eq!(out.num_groups(), 1);
        assert_eq!(out.groups[0].len(), 8);
    }

    #[test]
    fn fig2_example2_groups_merge_on_overlap() {
        // Figure 2 / Example 2: a5 is within ε of both g1 {a1,a2} and
        // g2 {a3,a4}; the groups merge and the query output is {5}.
        let points = pts(&[
            [2.0, 6.0], // a1
            [3.0, 7.0], // a2
            [6.0, 5.0], // a3
            [7.5, 4.0], // a4
            [4.5, 5.5], // a5
        ]);
        for metric in Metric::ALL {
            let out = sgb_any(&points, &SgbAnyConfig::new(3.0).metric(metric));
            assert_eq!(out.sizes(), vec![5], "metric {metric:?}");
        }
    }

    #[test]
    fn isolated_points_form_singletons() {
        let points = pts(&[[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]]);
        let out = sgb_any(&points, &SgbAnyConfig::new(1.0));
        assert_eq!(out.sizes(), vec![1, 1, 1]);
        out.check_partition(3);
    }

    #[test]
    fn empty_input() {
        let out = sgb_any::<2>(&[], &SgbAnyConfig::new(1.0));
        assert_eq!(out.num_groups(), 0);
    }

    #[test]
    fn duplicate_points_group_together() {
        let points = pts(&[[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]]);
        let out = sgb_any(&points, &SgbAnyConfig::new(0.0));
        assert_eq!(out.sizes(), vec![3]);
    }

    #[test]
    fn epsilon_zero_groups_only_exact_duplicates() {
        let points = pts(&[[1.0, 1.0], [1.0, 1.0], [1.0, 1.000001]]);
        let out = sgb_any(&points, &SgbAnyConfig::new(0.0));
        assert_eq!(out.sorted_sizes(), vec![2, 1]);
    }

    #[test]
    fn verification_rejects_window_corners_for_conservative_metrics() {
        // Two points at the corner of each other's ε-window: L∞ groups
        // them; L2 (δ ≈ 1.27) and L1 (δ = 1.8) must not (VerifyPoints,
        // Procedure 8 line 4).
        let points = pts(&[[0.0, 0.0], [0.9, 0.9]]);
        let eps = 1.0;
        for algo in [AnyAlgorithm::AllPairs, AnyAlgorithm::Indexed] {
            let linf = sgb_any(
                &points,
                &SgbAnyConfig::new(eps).metric(Metric::LInf).algorithm(algo),
            );
            assert_eq!(linf.num_groups(), 1, "{algo:?}");
            for metric in [Metric::L1, Metric::L2] {
                let out = sgb_any(
                    &points,
                    &SgbAnyConfig::new(eps).metric(metric).algorithm(algo),
                );
                assert_eq!(out.num_groups(), 2, "{algo:?} {metric}");
            }
        }
    }

    #[test]
    fn indexed_matches_all_pairs_and_reference() {
        // Pseudo-random point cloud; all algorithms and the brute-force
        // reference must agree exactly.
        let mut state: u64 = 0xDEADBEEF;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let points: Vec<Point<2>> = (0..400)
            .map(|_| Point::new([next() * 10.0, next() * 10.0]))
            .collect();
        for metric in Metric::ALL {
            for eps in [0.05, 0.2, 0.6] {
                let expected = reference(&points, eps, metric).normalized();
                for algo in [AnyAlgorithm::AllPairs, AnyAlgorithm::Indexed] {
                    let cfg = SgbAnyConfig::new(eps).metric(metric).algorithm(algo);
                    let got = sgb_any(&points, &cfg);
                    got.check_partition(points.len());
                    assert_eq!(got.normalized(), expected, "{algo:?} {metric:?} ε={eps}");
                }
            }
        }
    }

    #[test]
    fn order_independence_of_components() {
        // SGB-Any output is insertion-order independent (as a set of sets).
        let points = pts(&[
            [0.0, 0.0],
            [1.0, 0.0],
            [2.0, 0.0],
            [8.0, 8.0],
            [8.5, 8.5],
            [20.0, 20.0],
        ]);
        let cfg = SgbAnyConfig::new(1.5);
        let forward = sgb_any(&points, &cfg).normalized();
        let mut rev = points.clone();
        rev.reverse();
        let backward = sgb_any(&rev, &cfg);
        // Map reversed ids back to original ids before comparing.
        let n = points.len();
        let remapped = Grouping {
            groups: backward
                .groups
                .iter()
                .map(|g| g.iter().map(|&i| n - 1 - i).collect())
                .collect(),
            eliminated: vec![],
        };
        assert_eq!(remapped.normalized(), forward);
    }

    #[test]
    fn streaming_group_count_is_monotone_under_merges() {
        let mut op = SgbAny::new(SgbAnyConfig::new(1.5));
        op.push(Point::new([0.0, 0.0]));
        op.push(Point::new([5.0, 0.0]));
        assert_eq!(op.num_groups(), 2);
        // Bridging point merges both groups.
        op.push(Point::new([2.0, 0.0])); // within 1.5 of neither! 2.0 vs 0.0 → 2.0 > 1.5
        assert_eq!(op.num_groups(), 3);
        op.push(Point::new([1.0, 0.0])); // links 0.0 and 2.0
        assert_eq!(op.num_groups(), 2);
        op.push(Point::new([3.5, 0.0])); // links 2.0 and 5.0
        assert_eq!(op.num_groups(), 1);
        assert_eq!(op.len(), 5);
        let out = op.finish();
        assert_eq!(out.sizes(), vec![5]);
    }

    #[test]
    fn three_dimensional_points() {
        let points: Vec<Point<3>> = vec![
            Point::new([0.0, 0.0, 0.0]),
            Point::new([0.5, 0.5, 0.5]),
            Point::new([0.0, 0.0, 5.0]), // far only in z
        ];
        let out = sgb_any(&points, &SgbAnyConfig::new(1.0));
        assert_eq!(out.sorted_sizes(), vec![2, 1]);
    }
}
