//! The answer-set representation produced by the SGB operators.

/// Identifier of an input record: its zero-based position in the input
/// stream (the order in which points were pushed into the operator).
pub type RecordId = usize;

/// The set of answer groups `Gs` produced by a similarity group-by
/// (Definition 3), plus the records discarded by `ON-OVERLAP ELIMINATE`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Grouping {
    /// Output groups; each group lists its member record ids. SGB-All
    /// reports groups in creation order with members in join order;
    /// SGB-Any reports connected components keyed by their smallest member.
    pub groups: Vec<Vec<RecordId>>,
    /// Records dropped by `ON-OVERLAP ELIMINATE` (empty for the other
    /// semantics and for SGB-Any), in elimination order.
    pub eliminated: Vec<RecordId>,
}

impl Grouping {
    /// Number of output groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of records placed in groups.
    pub fn grouped_records(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Group sizes in group order — e.g. the `{3, 2}` / `{2, 2}` /
    /// `{2, 2, 1}` answers of Example 1.
    pub fn sizes(&self) -> Vec<usize> {
        self.groups.iter().map(Vec::len).collect()
    }

    /// Group sizes in descending order (order-insensitive comparisons).
    pub fn sorted_sizes(&self) -> Vec<usize> {
        let mut s = self.sizes();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s
    }

    /// A canonical form: members sorted within each group, groups sorted by
    /// first member, eliminated sorted. Two groupings are semantically equal
    /// iff their normalized forms are equal.
    pub fn normalized(&self) -> Grouping {
        let mut groups: Vec<Vec<RecordId>> = self
            .groups
            .iter()
            .map(|g| {
                let mut g = g.clone();
                g.sort_unstable();
                g
            })
            .collect();
        groups.sort();
        let mut eliminated = self.eliminated.clone();
        eliminated.sort_unstable();
        Grouping { groups, eliminated }
    }

    /// Maps each record id in `0..n` to the index of the group containing
    /// it (`None` for eliminated or never-seen records).
    pub fn assignment(&self, n: usize) -> Vec<Option<usize>> {
        let mut out = vec![None; n];
        for (gi, g) in self.groups.iter().enumerate() {
            for &r in g {
                debug_assert!(r < n, "record id out of range");
                debug_assert!(out[r].is_none(), "record {r} in two groups");
                out[r] = Some(gi);
            }
        }
        out
    }

    /// Asserts internal consistency for `n` input records: every record
    /// appears in at most one group, never both grouped and eliminated.
    /// Intended for tests.
    pub fn check_partition(&self, n: usize) {
        let mut seen = vec![false; n];
        for g in &self.groups {
            assert!(!g.is_empty(), "output groups must be non-empty");
            for &r in g {
                assert!(r < n, "record {r} out of range {n}");
                assert!(!seen[r], "record {r} appears twice");
                seen[r] = true;
            }
        }
        for &r in &self.eliminated {
            assert!(r < n, "eliminated record {r} out of range");
            assert!(!seen[r], "record {r} both grouped and eliminated");
            seen[r] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Grouping {
        Grouping {
            groups: vec![vec![3, 1], vec![0, 2, 4]],
            eliminated: vec![5],
        }
    }

    #[test]
    fn sizes_and_counts() {
        let g = sample();
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.sizes(), vec![2, 3]);
        assert_eq!(g.sorted_sizes(), vec![3, 2]);
        assert_eq!(g.grouped_records(), 5);
    }

    #[test]
    fn normalized_is_canonical() {
        let a = sample();
        let b = Grouping {
            groups: vec![vec![4, 2, 0], vec![1, 3]],
            eliminated: vec![5],
        };
        assert_ne!(a, b);
        assert_eq!(a.normalized(), b.normalized());
    }

    #[test]
    fn assignment_maps_records() {
        let g = sample();
        let a = g.assignment(6);
        assert_eq!(a, vec![Some(1), Some(0), Some(1), Some(0), Some(1), None]);
    }

    #[test]
    fn check_partition_accepts_valid() {
        sample().check_partition(6);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn check_partition_rejects_duplicates() {
        let g = Grouping {
            groups: vec![vec![0, 1], vec![1]],
            eliminated: vec![],
        };
        g.check_partition(2);
    }

    #[test]
    #[should_panic(expected = "both grouped and eliminated")]
    fn check_partition_rejects_grouped_and_eliminated() {
        let g = Grouping {
            groups: vec![vec![0]],
            eliminated: vec![0],
        };
        g.check_partition(1);
    }
}
