//! Aggregate evaluation over similarity groups.
//!
//! The SGB operators are *group-by* operators: their output feeds aggregate
//! functions exactly like the standard relational group-by (`SELECT
//! count(*), max(ab) … GROUP BY … DISTANCE-TO-ALL …`). This module provides
//! the common aggregates over a [`Grouping`] paired with per-record payload
//! values. The full SQL pipeline lives in the `sgb-relation` crate; these
//! helpers serve programmatic users of the core operators.

use crate::{Grouping, RecordId};

/// An aggregate function over `f64` payloads, mirroring the aggregates used
/// by the paper's evaluation queries (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggregateFn {
    /// `count(*)` — number of records in the group.
    Count,
    /// `sum(col)`.
    Sum,
    /// `avg(col)`.
    Avg,
    /// `min(col)`.
    Min,
    /// `max(col)`.
    Max,
}

impl AggregateFn {
    /// Evaluates the aggregate over the payloads of one group.
    /// `Min`/`Max`/`Avg` of an empty group yield `None`.
    pub fn eval(&self, values: impl IntoIterator<Item = f64>) -> Option<f64> {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            count += 1;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        match self {
            AggregateFn::Count => Some(count as f64),
            AggregateFn::Sum => Some(sum),
            AggregateFn::Avg => (count > 0).then(|| sum / count as f64),
            AggregateFn::Min => (count > 0).then_some(min),
            AggregateFn::Max => (count > 0).then_some(max),
        }
    }
}

/// One row of aggregated output per group.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupAggregates {
    /// Index of the group in the [`Grouping`].
    pub group: usize,
    /// One value per requested aggregate, in request order.
    pub values: Vec<f64>,
}

/// Evaluates `aggs` over every group: `value(r)` supplies the payload of
/// record `r` (e.g. a column of the input relation).
pub fn aggregate_groups<F>(
    grouping: &Grouping,
    aggs: &[AggregateFn],
    mut value: F,
) -> Vec<GroupAggregates>
where
    F: FnMut(RecordId) -> f64,
{
    grouping
        .groups
        .iter()
        .enumerate()
        .map(|(gi, members)| {
            let payloads: Vec<f64> = members.iter().map(|&r| value(r)).collect();
            let values = aggs
                .iter()
                .map(|a| a.eval(payloads.iter().copied()).unwrap_or(f64::NAN))
                .collect();
            GroupAggregates { group: gi, values }
        })
        .collect()
}

/// `array_agg`-style helper: per group, the payloads produced by `value`.
pub fn collect_groups<T, F>(grouping: &Grouping, mut value: F) -> Vec<Vec<T>>
where
    F: FnMut(RecordId) -> T,
{
    grouping
        .groups
        .iter()
        .map(|members| members.iter().map(|&r| value(r)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grouping() -> Grouping {
        Grouping {
            groups: vec![vec![0, 1, 2], vec![3, 4]],
            eliminated: vec![5],
        }
    }

    #[test]
    fn count_per_group() {
        let vals = [10.0, 20.0, 30.0, 5.0, 15.0, 99.0];
        let rows = aggregate_groups(&grouping(), &[AggregateFn::Count], |r| vals[r]);
        assert_eq!(rows[0].values, vec![3.0]);
        assert_eq!(rows[1].values, vec![2.0]);
    }

    #[test]
    fn multiple_aggregates_in_order() {
        let vals = [10.0, 20.0, 30.0, 5.0, 15.0, 99.0];
        let rows = aggregate_groups(
            &grouping(),
            &[
                AggregateFn::Sum,
                AggregateFn::Avg,
                AggregateFn::Min,
                AggregateFn::Max,
            ],
            |r| vals[r],
        );
        assert_eq!(rows[0].values, vec![60.0, 20.0, 10.0, 30.0]);
        assert_eq!(rows[1].values, vec![20.0, 10.0, 5.0, 15.0]);
    }

    #[test]
    fn eliminated_records_never_aggregate() {
        let rows = aggregate_groups(&grouping(), &[AggregateFn::Sum], |r| {
            assert_ne!(r, 5, "eliminated record must not be visited");
            1.0
        });
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn collect_groups_preserves_member_order() {
        let ids = collect_groups(&grouping(), |r| r * 100);
        assert_eq!(ids, vec![vec![0, 100, 200], vec![300, 400]]);
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(AggregateFn::Count.eval([]), Some(0.0));
        assert_eq!(AggregateFn::Sum.eval([]), Some(0.0));
        assert_eq!(AggregateFn::Avg.eval([]), None);
        assert_eq!(AggregateFn::Min.eval([]), None);
        assert_eq!(AggregateFn::Max.eval([]), None);
    }
}
