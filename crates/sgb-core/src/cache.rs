//! The shared-work index / result cache behind
//! [`SgbQuery::run_cached`](crate::SgbQuery::run_cached) (multi-query
//! optimization).
//!
//! Ad-hoc execution rebuilds its ε-grid or R-tree from scratch on every
//! run, so 1000 queries against one table pay 1000 index builds. This
//! module keeps the built structures alive across queries:
//!
//! * **Point indexes** (the SGB-Any ε-grid and point R-tree) are keyed on
//!   the *table version* — a monotone counter the caller bumps on every
//!   content change — plus the structure's build parameter (cell side /
//!   fan-out). A version change drops them wholesale: invalidation never
//!   scans data.
//! * **ε-superset reuse**: one cached grid with cell side `c` serves any
//!   query with ε′ ≥ c by widening the probe window (the pair scan visits
//!   `ceil(ε′ / c) + 1` neighbour rings), so mixed-ε workloads share one
//!   build. A grid is considered usable while ε′ stays within
//!   [`GRID_REUSE_MAX_RATIO`]× its cell side; beyond that the widened
//!   window would visit more cells than a right-sized build saves.
//! * **Center indexes** (SGB-Around) are keyed on the center coordinates
//!   themselves — construction never reads the table or the metric, so
//!   entries survive table mutations and serve every metric.
//! * **Whole-`Grouping` results** are keyed on the query fingerprint for
//!   exact repeat queries, version-scoped like the point indexes.
//!
//! Sharing never changes answers: the grid pair scan verifies every
//! candidate with the canonical `Metric::within` predicate regardless of
//! cell size, and SGB-Any's component extraction is union-order
//! insensitive — so a reused index yields bit-identical groupings
//! (asserted by `tests/proptest_mqo.rs`).
//!
//! ```
//! use sgb_core::{SgbCache, SgbQuery};
//! use sgb_geom::Point;
//!
//! let points: Vec<Point<2>> = (0..600)
//!     .map(|i| Point::new([(i % 25) as f64, (i / 25) as f64]))
//!     .collect();
//! let cache = SgbCache::new();
//! let version = 1; // bump whenever `points` changes
//! let cold = SgbQuery::any(1.0).run_cached(&points, &cache, version);
//! let warm = SgbQuery::any(1.0).run_cached(&points, &cache, version);
//! assert_eq!(cold, warm);
//! assert!(cache.stats().result_hits >= 1);
//! ```

use std::sync::{Arc, Mutex};

use sgb_geom::Point;
use sgb_spatial::{Grid, RTree};

use crate::around::{build_center_index, CenterIndex};
use crate::query::Grouping;
use crate::{AroundAlgorithm, RecordId};

/// A cached grid with cell side `c` serves an ε-query while
/// `side_for_eps(ε) / c` stays at or below this ratio. Past it, the
/// widened probe window visits more neighbour cells than a right-sized
/// build would, so the cache builds a fresh grid instead.
pub const GRID_REUSE_MAX_RATIO: f64 = 4.0;

/// How many distinct-cell-size grids one cache retains per table version.
const GRIDS_CAP: usize = 4;

/// How many distinct-fan-out point R-trees one cache retains per version.
const TREES_CAP: usize = 2;

/// How many distinct center indexes one cache retains (version-free).
const CENTER_INDEXES_CAP: usize = 8;

/// Default capacity of the whole-`Grouping` result cache.
const DEFAULT_RESULT_CAPACITY: usize = 128;

/// Cache effectiveness counters, all monotone over the cache's lifetime.
/// Obtained from [`SgbCache::stats`] (or summed across a session's caches
/// by the SQL layer's `Database::cache_stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Index lookups served from a cached structure (grid, point R-tree,
    /// or center index).
    pub index_hits: u64,
    /// Index lookups that had to build (and cache) a new structure.
    pub index_misses: u64,
    /// Repeat queries answered from the whole-result cache.
    pub result_hits: u64,
    /// Result lookups that fell through to execution.
    pub result_misses: u64,
    /// Entries dropped — by table-version invalidation or capacity.
    pub evictions: u64,
    /// Point-validation passes skipped because the table version was
    /// already validated (the once-per-version finiteness scan).
    pub validations_skipped: u64,
}

impl CacheStats {
    /// Accumulates another counter set into this one (used to sum the
    /// per-slot caches of a session).
    pub fn accumulate(&mut self, other: CacheStats) {
        self.index_hits += other.index_hits;
        self.index_misses += other.index_misses;
        self.result_hits += other.result_hits;
        self.result_misses += other.result_misses;
        self.evictions += other.evictions;
        self.validations_skipped += other.validations_skipped;
    }
}

/// Key of a cached center index: concrete algorithm tag, R-tree fan-out,
/// and the exact center coordinates (bit pattern). Construction reads
/// nothing else, so nothing else may distinguish entries.
type CenterKey = (u8, usize, Vec<u64>);

/// Everything behind the lock: the cached structures plus the version
/// they are scoped to.
#[derive(Debug)]
struct CacheInner<const D: usize> {
    /// The table version the version-scoped entries belong to.
    version: u64,
    /// Whether the once-per-version finiteness validation already ran.
    validated: bool,
    /// ε-grids over the table's points, `(cell-side bits, grid)`, LRU
    /// order (back = most recent).
    grids: Vec<(u64, Arc<Grid<D, RecordId>>)>,
    /// Point R-trees over the table's points, `(fan-out, tree)`, LRU.
    trees: Vec<(usize, Arc<RTree<D, RecordId>>)>,
    /// Center indexes, version-free (built from query centers), LRU.
    centers: Vec<(CenterKey, Arc<CenterIndex<D>>)>,
    /// Whole-result cache, `(query fingerprint, grouping)`, LRU.
    results: Vec<(Vec<u64>, Grouping)>,
    stats: CacheStats,
}

/// A shared-work cache for one point set (one table, one coordinate
/// projection): built spatial indexes and whole results, invalidated by a
/// caller-supplied monotone version. Interior-mutable and `Sync` — one
/// cache can serve concurrent queries.
///
/// See the [module docs](self) for the sharing and invalidation rules,
/// and [`SgbQuery::run_cached`](crate::SgbQuery::run_cached) for the
/// execution entry point.
#[derive(Debug)]
pub struct SgbCache<const D: usize> {
    inner: Mutex<CacheInner<D>>,
    result_capacity: usize,
}

impl<const D: usize> Default for SgbCache<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> SgbCache<D> {
    /// A cache with the default result capacity (128 groupings).
    pub fn new() -> Self {
        Self::with_result_capacity(DEFAULT_RESULT_CAPACITY)
    }

    /// A cache retaining at most `capacity` whole groupings (0 disables
    /// the result cache; index caching is unaffected).
    pub fn with_result_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                version: 0,
                validated: false,
                grids: Vec::new(),
                trees: Vec::new(),
                centers: Vec::new(),
                results: Vec::new(),
                stats: CacheStats::default(),
            }),
            result_capacity: capacity,
        }
    }

    /// A snapshot of the effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner<D>> {
        // Poison-tolerant: every mutation under this lock is
        // transactional (entries are inserted fully built or not at all),
        // so a panic on one thread never leaves half-written state —
        // propagating poison would only turn one failed query into a
        // permanently unusable session cache.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Validates that every point is finite — once per table version.
    /// Repeat calls under the same version skip the O(n·d) scan (counted
    /// in [`CacheStats::validations_skipped`]).
    ///
    /// # Panics
    /// Like `SgbQuery::run`: `"points must have finite coordinates"`.
    pub fn validate_once(&self, version: u64, points: &[Point<D>]) {
        let mut inner = self.lock();
        inner.enter_version(version);
        if inner.validated {
            inner.stats.validations_skipped += 1;
            return;
        }
        assert!(
            points.iter().all(Point::is_finite),
            "points must have finite coordinates"
        );
        inner.validated = true;
    }

    /// Read-only probe: would an ε-query over `version` find a usable
    /// cached grid? Never mutates state or counters — safe for planners
    /// (`EXPLAIN` must not change what it describes).
    pub fn has_usable_grid(&self, version: u64, eps: f64) -> bool {
        let want = Grid::<D, RecordId>::side_for_eps(eps);
        let inner = self.lock();
        inner.version == version
            && inner
                .grids
                .iter()
                .any(|&(bits, _)| grid_usable(f64::from_bits(bits), want))
    }

    /// Read-only probe: is a point R-tree with this fan-out cached for
    /// `version`?
    pub fn has_tree(&self, version: u64, fanout: usize) -> bool {
        let inner = self.lock();
        inner.version == version && inner.trees.iter().any(|&(f, _)| f == fanout)
    }

    /// Ensures a grid serving `eps` exists for `version`, building it
    /// from `points` on a miss — the batch API's shared-build entry
    /// point: build once at the batch's smallest ε, then every ε-superset
    /// query in the batch reuses it.
    pub fn prewarm_grid(&self, version: u64, eps: f64, points: &[Point<D>]) {
        let _ = self.get_or_build_grid(version, eps, |side| {
            Grid::from_points(side, points.iter().enumerate().map(|(i, p)| (*p, i)))
        });
    }

    /// Read-only probe: is a center index for exactly this concrete
    /// algorithm, fan-out, and center list cached?
    pub fn has_center_index(
        &self,
        algorithm: AroundAlgorithm,
        fanout: usize,
        centers: &[Point<D>],
    ) -> bool {
        let tag: u8 = match algorithm {
            AroundAlgorithm::Indexed => 1,
            AroundAlgorithm::Grid => 2,
            _ => return false,
        };
        let bits = center_bits(centers);
        let inner = self.lock();
        inner
            .centers
            .iter()
            .any(|((t, f, b), _)| *t == tag && *f == fanout && *b == bits)
    }

    /// Read-only probe: the concrete algorithm of a cached center index
    /// for exactly these centers (and fan-out), if one exists. Feeds
    /// [`crate::cost::resolve_around_with_cache`].
    pub fn cached_center_algorithm(
        &self,
        centers: &[Point<D>],
        fanout: usize,
    ) -> Option<AroundAlgorithm> {
        let bits = center_bits(centers);
        let inner = self.lock();
        inner
            .centers
            .iter()
            .rev()
            .find(|((_, f, b), _)| *f == fanout && *b == bits)
            .map(|((tag, _, _), _)| match tag {
                1 => AroundAlgorithm::Indexed,
                _ => AroundAlgorithm::Grid,
            })
    }

    /// The cached ε-grid for `version`, reusing any grid whose cell side
    /// serves `eps` (ε-superset reuse), else building one at
    /// `side_for_eps(eps)` via `build` and caching it.
    pub(crate) fn get_or_build_grid(
        &self,
        version: u64,
        eps: f64,
        build: impl FnOnce(f64) -> Grid<D, RecordId>,
    ) -> Arc<Grid<D, RecordId>> {
        let want = Grid::<D, RecordId>::side_for_eps(eps);
        let mut inner = self.lock();
        inner.enter_version(version);
        // Prefer the largest usable cell: fewest occupied cells to scan.
        let best = inner
            .grids
            .iter()
            .enumerate()
            .filter(|(_, &(bits, _))| grid_usable(f64::from_bits(bits), want))
            .max_by(|(_, &(a, _)), (_, &(b, _))| f64::from_bits(a).total_cmp(&f64::from_bits(b)))
            .map(|(i, _)| i);
        if let Some(i) = best {
            inner.stats.index_hits += 1;
            let entry = inner.grids.remove(i);
            let grid = Arc::clone(&entry.1);
            inner.grids.push(entry);
            return grid;
        }
        inner.stats.index_misses += 1;
        let grid = Arc::new(build(want));
        if inner.grids.len() >= GRIDS_CAP {
            inner.grids.remove(0);
            inner.stats.evictions += 1;
        }
        inner.grids.push((want.to_bits(), Arc::clone(&grid)));
        grid
    }

    /// The cached point R-tree for `version` and `fanout`, building (and
    /// caching) it via `build` on a miss.
    pub(crate) fn get_or_build_tree(
        &self,
        version: u64,
        fanout: usize,
        build: impl FnOnce() -> RTree<D, RecordId>,
    ) -> Arc<RTree<D, RecordId>> {
        let mut inner = self.lock();
        inner.enter_version(version);
        if let Some(i) = inner.trees.iter().position(|&(f, _)| f == fanout) {
            inner.stats.index_hits += 1;
            let entry = inner.trees.remove(i);
            let tree = Arc::clone(&entry.1);
            inner.trees.push(entry);
            return tree;
        }
        inner.stats.index_misses += 1;
        let tree = Arc::new(build());
        if inner.trees.len() >= TREES_CAP {
            inner.trees.remove(0);
            inner.stats.evictions += 1;
        }
        inner.trees.push((fanout, Arc::clone(&tree)));
        tree
    }

    /// The cached center index for a *concrete* indexed algorithm over
    /// exactly these centers, built on a miss. Version-free: center
    /// indexes read only the query's centers.
    pub(crate) fn get_or_build_center_index(
        &self,
        algorithm: AroundAlgorithm,
        fanout: usize,
        centers: &[Point<D>],
    ) -> Arc<CenterIndex<D>> {
        let tag: u8 = match algorithm {
            AroundAlgorithm::Indexed => 1,
            AroundAlgorithm::Grid => 2,
            _ => unreachable!("only indexed center structures are cached"),
        };
        let key: CenterKey = (tag, fanout, center_bits(centers));
        let mut inner = self.lock();
        if let Some(i) = inner.centers.iter().position(|(k, _)| *k == key) {
            inner.stats.index_hits += 1;
            let entry = inner.centers.remove(i);
            let ix = Arc::clone(&entry.1);
            inner.centers.push(entry);
            return ix;
        }
        inner.stats.index_misses += 1;
        let ix = Arc::new(build_center_index(algorithm, fanout, centers));
        if inner.centers.len() >= CENTER_INDEXES_CAP {
            inner.centers.remove(0);
            inner.stats.evictions += 1;
        }
        inner.centers.push((key, Arc::clone(&ix)));
        ix
    }

    /// The cached whole result for an exact repeat query under `version`.
    pub(crate) fn lookup_result(&self, version: u64, fingerprint: &[u64]) -> Option<Grouping> {
        if self.result_capacity == 0 {
            return None;
        }
        let mut inner = self.lock();
        inner.enter_version(version);
        if let Some(i) = inner.results.iter().position(|(fp, _)| fp == fingerprint) {
            inner.stats.result_hits += 1;
            let entry = inner.results.remove(i);
            let out = entry.1.clone();
            inner.results.push(entry);
            return Some(out);
        }
        inner.stats.result_misses += 1;
        None
    }

    /// Caches a complete grouping under the query fingerprint.
    pub(crate) fn store_result(&self, version: u64, fingerprint: Vec<u64>, result: Grouping) {
        // Chaos site: a fired `return` drops the store on the floor (a
        // cache write failure costs a recompute, never correctness); a
        // fired `panic` exercises the poison-tolerant lock above.
        failpoints::fail_point!("sgb_core::cache::store_result", |_| ());
        if self.result_capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.enter_version(version);
        if let Some(i) = inner.results.iter().position(|(fp, _)| *fp == fingerprint) {
            inner.results.remove(i);
        }
        if inner.results.len() >= self.result_capacity {
            inner.results.remove(0);
            inner.stats.evictions += 1;
        }
        inner.results.push((fingerprint, result));
    }
}

impl<const D: usize> CacheInner<D> {
    /// Moves the cache to `version`, dropping every version-scoped entry
    /// when it changed (center indexes survive: they never read the
    /// table).
    fn enter_version(&mut self, version: u64) {
        if self.version == version {
            return;
        }
        let dropped = self.grids.len() + self.trees.len() + self.results.len();
        self.stats.evictions += dropped as u64;
        self.grids.clear();
        self.trees.clear();
        self.results.clear();
        self.validated = false;
        self.version = version;
    }
}

/// The ε-superset rule: a grid with cell side `cell` serves a query
/// wanting cell side `want` when the cell is no coarser than wanted and
/// the widened probe window stays within [`GRID_REUSE_MAX_RATIO`].
fn grid_usable(cell: f64, want: f64) -> bool {
    cell <= want && want / cell <= GRID_REUSE_MAX_RATIO
}

/// The bit pattern of a center list (coordinates are finite by
/// construction, so bit equality is coordinate equality).
fn center_bits<const D: usize>(centers: &[Point<D>]) -> Vec<u64> {
    centers
        .iter()
        .flat_map(|p| p.coords().iter().map(|c| c.to_bits()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SgbQuery;

    fn cloud(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        (0..n)
            .map(|_| Point::new([next() * 10.0, next() * 10.0]))
            .collect()
    }

    #[test]
    fn grid_reuse_policy() {
        assert!(grid_usable(0.5, 0.5));
        assert!(grid_usable(0.5, 2.0), "superset reuse: bigger eps is fine");
        assert!(!grid_usable(0.5, 2.1), "past the ratio: rebuild");
        assert!(!grid_usable(0.5, 0.4), "coarser than wanted: rebuild");
    }

    #[test]
    fn repeat_query_hits_the_result_cache_with_identical_metadata() {
        let points = cloud(700, 1);
        let cache = SgbCache::new();
        let q = SgbQuery::any(0.4);
        let cold = q.run_cached(&points, &cache, 7);
        let warm = q.run_cached(&points, &cache, 7);
        assert_eq!(cold, warm);
        assert_eq!(cold.resolved_algorithm(), warm.resolved_algorithm());
        assert_eq!(cold.selection_reason(), warm.selection_reason());
        assert_eq!(cold.threads(), warm.threads());
        let s = cache.stats();
        assert_eq!(s.result_hits, 1);
        assert_eq!(s.result_misses, 1);
        assert_eq!(s.validations_skipped, 1);
    }

    #[test]
    fn eps_superset_queries_share_one_grid_build() {
        let points = cloud(900, 2);
        let cache = SgbCache::new();
        for eps in [0.3, 0.5, 0.9, 1.1] {
            let cached = SgbQuery::any(eps).run_cached(&points, &cache, 1);
            let cold = SgbQuery::any(eps).run(&points);
            assert_eq!(cached, cold, "eps = {eps}");
        }
        let s = cache.stats();
        assert_eq!(s.index_misses, 1, "one grid build serves all eps");
        assert_eq!(s.index_hits, 3);
    }

    #[test]
    fn version_change_invalidates_point_indexes_but_not_center_indexes() {
        let points = cloud(800, 3);
        let cache = SgbCache::new();
        let centers = cloud(300, 4);
        let around = SgbQuery::around(centers.clone());
        let any = SgbQuery::any(0.5);
        let _ = any.run_cached(&points, &cache, 1);
        let _ = around.run_cached(&points, &cache, 1);
        let before = cache.stats();
        assert_eq!(before.index_misses, 2, "one grid, one center index");

        let mut grown = points.clone();
        grown.push(Point::new([0.123, 0.456]));
        let fresh_any = any.run_cached(&grown, &cache, 2);
        let fresh_around = around.run_cached(&grown, &cache, 2);
        assert_eq!(fresh_any, any.run(&grown), "no stale grouping after bump");
        assert_eq!(fresh_around, around.run(&grown));
        let after = cache.stats();
        assert!(after.evictions > before.evictions, "grid was dropped");
        // The grid rebuilt (miss), the center index survived (hit).
        assert_eq!(after.index_misses, before.index_misses + 1);
        assert_eq!(after.index_hits, before.index_hits + 1);
    }

    #[test]
    fn zero_capacity_disables_the_result_cache() {
        let points = cloud(600, 5);
        let cache = SgbCache::with_result_capacity(0);
        let q = SgbQuery::any(0.4);
        assert_eq!(
            q.run_cached(&points, &cache, 1),
            q.run_cached(&points, &cache, 1)
        );
        let s = cache.stats();
        assert_eq!(s.result_hits, 0);
        assert_eq!(s.result_misses, 0);
        assert_eq!(s.index_hits, 1, "index caching is unaffected");
    }

    #[test]
    #[should_panic(expected = "points must have finite coordinates")]
    fn validate_once_rejects_non_finite_points() {
        let cache = SgbCache::<2>::new();
        cache.validate_once(1, &[Point::new([f64::NAN, 0.0])]);
    }
}
