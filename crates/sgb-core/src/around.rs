//! The SGB-Around operator: nearest-of-a-set-of-centers grouping.
//!
//! The third member of the similarity group-by family (per the companion
//! paper *On Order-independent Semantics of the Similarity Group-By
//! Relational Database Operator*): the query supplies a set of **center
//! points**, and every tuple joins the group of its nearest center under
//! the query metric — optionally bounded by a maximum radius `r`, beyond
//! which tuples fall into an explicit **outlier group**.
//!
//! Because the group seeds are fixed up front, the assignment of each tuple
//! depends only on the tuple itself, never on previously processed tuples:
//! the grouping is trivially **order-independent** (unlike SGB-All, whose
//! `ON-OVERLAP` arbitration is arrival-order sensitive). That makes it the
//! natural high-throughput member of the family — assignments are
//! embarrassingly parallel and need no inter-group reconciliation.
//!
//! Three interchangeable search strategies:
//!
//! * [`AroundAlgorithm::BruteForce`] scans every center per tuple;
//! * [`AroundAlgorithm::Indexed`] bulk-loads the centers into an
//!   [`RTree`] once (sort-tile-recursive packing, no per-center inserts)
//!   and answers each tuple with a metric-aware nearest-neighbour query;
//! * [`AroundAlgorithm::Grid`] bulk-loads the centers into a uniform
//!   [`Grid`] sized for roughly one center per cell and answers each
//!   tuple with an expanding-ring search.
//!
//! [`AroundAlgorithm::Auto`] cost-selects among them from the center
//! count ([`crate::cost::resolve_around`] — centers are part of the query,
//! so streaming and one-shot execution resolve identically).
//!
//! All paths break exact distance ties towards the **lowest center
//! index** and produce bit-identical groupings: the brute path compares
//! canonical [`sgb_geom::Metric::distance`] values, the R-tree's best-first
//! search reports the same values for point entries (see
//! [`RTree::nearest`]) with ties in ascending payload order, and the
//! grid's ring search computes the same canonical distances with the same
//! `(distance, payload)`-lexicographic argmin.

use std::sync::Arc;

use sgb_geom::Point;
use sgb_spatial::{Grid, RTree};

use crate::governor::{Pacer, QueryGovernor, SgbError};
use crate::{cost, AroundAlgorithm, Grouping, RecordId, SgbAroundConfig};

/// Index of a center in the configured center list.
pub type CenterId = usize;

/// The per-tuple nearest-center search structure, per concrete algorithm.
/// Crate-visible (behind an `Arc`) so the session index cache can build a
/// center index once and share it across queries — its construction reads
/// only the query's center coordinates, never the table, so a cached
/// entry stays valid across table versions and metrics.
#[derive(Clone, Debug)]
pub(crate) enum CenterIndex<const D: usize> {
    /// Brute force: scan the configured center list.
    Scan,
    /// Center R-tree, STR bulk-loaded once at construction.
    Tree(RTree<D, CenterId>),
    /// Center grid, bulk-loaded once at construction.
    Cells(Grid<D, CenterId>),
}

/// Bulk-loads the center search structure for a *concrete* algorithm —
/// the construction half of [`SgbAround::new`], split out so the session
/// cache can build (and retain) an index without an operator instance.
///
/// # Panics
/// On [`AroundAlgorithm::Auto`] (resolve first).
pub(crate) fn build_center_index<const D: usize>(
    algorithm: AroundAlgorithm,
    rtree_fanout: usize,
    centers: &[Point<D>],
) -> CenterIndex<D> {
    match algorithm {
        AroundAlgorithm::BruteForce => CenterIndex::Scan,
        AroundAlgorithm::Indexed => CenterIndex::Tree(RTree::from_points(
            rtree_fanout,
            centers.iter().enumerate().map(|(c, p)| (*p, c)),
        )),
        AroundAlgorithm::Grid => CenterIndex::Cells(Grid::from_points(
            Grid::<D, CenterId>::side_for_points(centers),
            centers.iter().enumerate().map(|(c, p)| (*p, c)),
        )),
        AroundAlgorithm::Auto => unreachable!("resolve_around never returns Auto"),
    }
}

/// The answer set of SGB-Around: one group per center (index-aligned with
/// the configured center list, possibly empty) plus the outlier set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AroundGrouping {
    /// Per-center member lists in arrival order. `groups[c]` holds the
    /// records whose nearest center is `c`; centers that attracted no
    /// record keep an empty list, so the vector stays index-aligned.
    pub groups: Vec<Vec<RecordId>>,
    /// Records farther than the configured radius from every center, in
    /// arrival order. Empty when no radius bound was set.
    pub outliers: Vec<RecordId>,
}

impl AroundGrouping {
    /// Number of centers (occupied or not).
    #[inline]
    pub fn num_centers(&self) -> usize {
        self.groups.len()
    }

    /// Number of centers that attracted at least one record.
    pub fn occupied_centers(&self) -> usize {
        self.groups.iter().filter(|g| !g.is_empty()).count()
    }

    /// Total number of records assigned to a center.
    pub fn assigned_records(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Maps each record id in `0..n` to its center index (`None` for
    /// outliers).
    pub fn assignment(&self, n: usize) -> Vec<Option<CenterId>> {
        let mut out = vec![None; n];
        for (c, g) in self.groups.iter().enumerate() {
            for &r in g {
                debug_assert!(r < n, "record id out of range");
                debug_assert!(out[r].is_none(), "record {r} assigned twice");
                out[r] = Some(c);
            }
        }
        for &r in &self.outliers {
            debug_assert!(r < n, "outlier id out of range");
        }
        out
    }

    /// Converts to the family-wide [`Grouping`] representation: non-empty
    /// center groups in center order, then — when present — the outlier
    /// group as the final group. Nothing is ever eliminated.
    pub fn grouping(&self) -> Grouping {
        let mut groups: Vec<Vec<RecordId>> = self
            .groups
            .iter()
            .filter(|g| !g.is_empty())
            .cloned()
            .collect();
        if !self.outliers.is_empty() {
            groups.push(self.outliers.clone());
        }
        Grouping {
            groups,
            eliminated: Vec::new(),
        }
    }

    /// Asserts internal consistency for `n` input records (for tests):
    /// every record is assigned to exactly one center or the outlier set.
    pub fn check_partition(&self, n: usize) {
        let mut seen = vec![false; n];
        for g in &self.groups {
            for &r in g {
                assert!(r < n, "record {r} out of range {n}");
                assert!(!seen[r], "record {r} assigned twice");
                seen[r] = true;
            }
        }
        for &r in &self.outliers {
            assert!(r < n, "outlier {r} out of range {n}");
            assert!(!seen[r], "record {r} both assigned and outlier");
            seen[r] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every record must be assigned or an outlier"
        );
    }
}

/// Streaming SGB-Around operator.
///
/// Push points in any order, then call [`finish`](Self::finish). The
/// grouping is order-independent: only member order within a group follows
/// arrival order.
///
/// ```
/// use sgb_core::{SgbAround, SgbAroundConfig};
/// use sgb_geom::Point;
///
/// let centers = vec![Point::new([0.0, 0.0]), Point::new([10.0, 10.0])];
/// let mut op = SgbAround::new(SgbAroundConfig::new(centers).max_radius(3.0));
/// for p in [[1.0, 1.0], [9.0, 9.5], [0.5, -0.5], [5.0, 5.0]] {
///     op.push(Point::new(p));
/// }
/// let out = op.finish();
/// assert_eq!(out.groups, vec![vec![0, 2], vec![1]]);
/// assert_eq!(out.outliers, vec![3]); // (5, 5) is > 3 away from both
/// ```
#[derive(Clone, Debug)]
pub struct SgbAround<const D: usize> {
    cfg: SgbAroundConfig<D>,
    /// Nearest-center search structure, bulk-loaded once at construction
    /// (centers never change during a run). [`AroundAlgorithm::Auto`]
    /// resolves from the center count before this is built. Shared
    /// (`Arc`) so the session index cache can hand the same built
    /// structure to many operator instances.
    index: Arc<CenterIndex<D>>,
    groups: Vec<Vec<RecordId>>,
    outliers: Vec<RecordId>,
    pushed: usize,
    /// Traversal scratch for the indexed nearest-center query, reused
    /// across pushes so the hot loop allocates nothing per tuple.
    scratch: Vec<usize>,
}

impl<const D: usize> SgbAround<D> {
    /// Creates the operator, resolving [`AroundAlgorithm::Auto`] from the
    /// center count and bulk-loading the center index when an indexed
    /// algorithm is selected.
    pub fn new(cfg: SgbAroundConfig<D>) -> Self {
        let (algorithm, _) = cost::resolve_around(cfg.algorithm, cfg.centers.len(), D);
        let index = Arc::new(build_center_index(
            algorithm,
            cfg.rtree_fanout,
            &cfg.centers,
        ));
        Self::with_center_index(cfg, index)
    }

    /// Creates the operator around an already-built center index (the
    /// session cache's entry point). The index must have been built from
    /// `cfg.centers` in order — construction ignores the metric and the
    /// table, so one built index serves every query over the same center
    /// list.
    pub(crate) fn with_center_index(cfg: SgbAroundConfig<D>, index: Arc<CenterIndex<D>>) -> Self {
        let groups = vec![Vec::new(); cfg.centers.len()];
        Self {
            cfg,
            index,
            groups,
            outliers: Vec::new(),
            pushed: 0,
            scratch: Vec::new(),
        }
    }

    /// The configuration this operator runs with.
    pub fn config(&self) -> &SgbAroundConfig<D> {
        &self.cfg
    }

    /// The concrete search strategy this operator runs with
    /// ([`AroundAlgorithm::Auto`] resolved at construction).
    pub fn resolved_algorithm(&self) -> AroundAlgorithm {
        match &*self.index {
            CenterIndex::Scan => AroundAlgorithm::BruteForce,
            CenterIndex::Tree(_) => AroundAlgorithm::Indexed,
            CenterIndex::Cells(_) => AroundAlgorithm::Grid,
        }
    }

    /// Number of points processed so far.
    pub fn len(&self) -> usize {
        self.pushed
    }

    /// `true` before the first point arrives.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// The nearest center of `p`, ties towards the lowest center index.
    fn nearest_center(&mut self, p: &Point<D>) -> CenterId {
        nearest_center_in(&self.index, &self.cfg, &mut self.scratch, p)
    }

    /// Assigns one point to its nearest center (or the outlier group),
    /// returning its record id.
    pub fn push(&mut self, p: Point<D>) -> RecordId {
        assert!(p.is_finite(), "points must have finite coordinates");
        let id = self.pushed;
        self.pushed += 1;
        let c = self.nearest_center(&p);
        if is_outlier(&self.cfg, &p, c) {
            self.outliers.push(id);
        } else {
            self.groups[c].push(id);
        }
        id
    }

    /// Assigns a complete batch of points, equivalent to pushing each in
    /// order — but when the configuration requests (or the cost model
    /// grants, see [`crate::cost::threads_for_around`]) more than one
    /// worker, the nearest-center classification runs **in parallel over
    /// tuple chunks**. Assignment depends only on the tuple itself, so
    /// each worker classifies its chunk independently into a shared slot
    /// array; a sequential arrival-order stitch then appends record ids to
    /// their groups, reproducing the member order of a sequential run
    /// exactly (asserted by `tests/proptest_parallel.rs`).
    pub fn extend_from_slice(&mut self, points: &[Point<D>]) {
        let (threads, _) = cost::threads_for_around(self.cfg.threads, points.len());
        if threads <= 1 {
            for p in points {
                self.push(*p);
            }
            return;
        }
        assert!(
            self.cfg.centers.len() < u32::MAX as usize,
            "too many centers for the parallel assignment encoding"
        );
        const OUTLIER: u32 = u32::MAX;
        let mut assign = vec![OUTLIER; points.len()];
        // Several chunks per worker so an uneven cluster layout still
        // balances; chunk geometry never affects results.
        let chunk = points.len().div_ceil(threads * 4).max(1);
        let index = &self.index;
        let cfg = &self.cfg;
        let mut pool = scoped_threadpool::Pool::new(threads as u32);
        pool.scoped(|scope| {
            for (pts, out) in points.chunks(chunk).zip(assign.chunks_mut(chunk)) {
                scope.execute(move || {
                    let mut scratch = Vec::new();
                    for (p, slot) in pts.iter().zip(out.iter_mut()) {
                        assert!(p.is_finite(), "points must have finite coordinates");
                        let c = nearest_center_in(index, cfg, &mut scratch, p);
                        *slot = if is_outlier(cfg, p, c) {
                            OUTLIER
                        } else {
                            c as u32
                        };
                    }
                });
            }
        });
        for &code in &assign {
            let id = self.pushed;
            self.pushed += 1;
            if code == OUTLIER {
                self.outliers.push(id);
            } else {
                self.groups[code as usize].push(id);
            }
        }
    }

    /// Governed twin of [`extend_from_slice`](Self::extend_from_slice):
    /// same classification, same arrival-order stitch, plus a
    /// deadline/cancellation check per tuple (each parallel worker paces
    /// its own chunk against the shared governor and parks its verdict in
    /// a per-chunk slot; the stitch runs only when every chunk succeeded).
    ///
    /// On `Ok`, the operator state is bit-identical to the infallible
    /// batch. On `Err`, the state may have absorbed a prefix of the batch
    /// — **discard the operator**; the governed query entry points build a
    /// fresh operator per call, so no partial grouping is observable.
    pub(crate) fn try_extend_from_slice(
        &mut self,
        points: &[Point<D>],
        governor: &QueryGovernor,
    ) -> Result<(), SgbError> {
        failpoints::fail_point!("sgb_core::around::assign", |_| Err(SgbError::Cancelled));
        governor.check()?;
        let (threads, _) = cost::threads_for_around(self.cfg.threads, points.len());
        if threads <= 1 {
            let mut pacer = Pacer::new();
            for p in points {
                pacer.tick(governor)?;
                self.push(*p);
            }
            return Ok(());
        }
        assert!(
            self.cfg.centers.len() < u32::MAX as usize,
            "too many centers for the parallel assignment encoding"
        );
        const OUTLIER: u32 = u32::MAX;
        let mut assign = vec![OUTLIER; points.len()];
        let chunk = points.len().div_ceil(threads * 4).max(1);
        let mut verdicts: Vec<Result<(), SgbError>> = vec![Ok(()); points.len().div_ceil(chunk)];
        let index = &self.index;
        let cfg = &self.cfg;
        let mut pool = scoped_threadpool::Pool::new(threads as u32);
        pool.try_scoped(|scope| {
            for ((pts, out), verdict) in points
                .chunks(chunk)
                .zip(assign.chunks_mut(chunk))
                .zip(verdicts.iter_mut())
            {
                scope.execute(move || {
                    let mut scratch = Vec::new();
                    let mut pacer = Pacer::new();
                    *verdict = pts.iter().zip(out.iter_mut()).try_for_each(|(p, slot)| {
                        pacer.tick(governor)?;
                        debug_assert!(p.is_finite(), "validated at the query boundary");
                        let c = nearest_center_in(index, cfg, &mut scratch, p);
                        *slot = if is_outlier(cfg, p, c) {
                            OUTLIER
                        } else {
                            c as u32
                        };
                        Ok(())
                    });
                });
            }
        })
        .map_err(|p| SgbError::WorkerPanicked {
            message: p.message().to_owned(),
        })?;
        for verdict in verdicts {
            verdict?;
        }
        for &code in &assign {
            let id = self.pushed;
            self.pushed += 1;
            if code == OUTLIER {
                self.outliers.push(id);
            } else {
                self.groups[code as usize].push(id);
            }
        }
        Ok(())
    }

    /// Materialises the answer groups.
    pub fn finish(self) -> AroundGrouping {
        AroundGrouping {
            groups: self.groups,
            outliers: self.outliers,
        }
    }
}

/// The nearest center of `p` under `cfg.metric`, ties towards the lowest
/// center index. Free function (rather than a method) so the parallel
/// batch path can classify from a shared `&CenterIndex` with per-worker
/// traversal scratch.
///
/// The brute path compares canonical [`sgb_geom::Metric::distance`]
/// values so its tie set is identical to the indexed path's
/// ([`RTree::nearest_one_with`] reports the same floating-point distances
/// for point entries and breaks ties by ascending payload).
pub(crate) fn nearest_center_in<const D: usize>(
    index: &CenterIndex<D>,
    cfg: &SgbAroundConfig<D>,
    scratch: &mut Vec<usize>,
    p: &Point<D>,
) -> CenterId {
    match index {
        CenterIndex::Scan => {
            let metric = cfg.metric;
            let mut best = (f64::INFINITY, 0);
            for (c, q) in cfg.centers.iter().enumerate() {
                let d = metric.distance(p, q);
                if d < best.0 {
                    best = (d, c);
                }
            }
            best.1
        }
        CenterIndex::Tree(ix) => {
            let hit = ix.nearest_one_with(p, cfg.metric, scratch);
            hit.expect("center list is never empty").1
        }
        CenterIndex::Cells(grid) => {
            let hit = grid.nearest_one(p, cfg.metric);
            hit.expect("center list is never empty").1
        }
    }
}

/// Radius bound with the canonical predicate, evaluated identically on
/// every path (never against the index's reported distance).
#[inline]
pub(crate) fn is_outlier<const D: usize>(
    cfg: &SgbAroundConfig<D>,
    p: &Point<D>,
    c: CenterId,
) -> bool {
    match cfg.max_radius {
        Some(r) => !cfg.metric.within(p, &cfg.centers[c], r),
        None => false,
    }
}

/// One-shot convenience: runs SGB-Around over a slice of points (in
/// parallel when [`SgbAroundConfig::threads`] asks for it — see
/// [`SgbAround::extend_from_slice`]).
pub fn sgb_around<const D: usize>(points: &[Point<D>], cfg: &SgbAroundConfig<D>) -> AroundGrouping {
    let mut op = SgbAround::new(cfg.clone());
    op.extend_from_slice(points);
    op.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metric;

    const ALGOS: [AroundAlgorithm; 3] = [
        AroundAlgorithm::BruteForce,
        AroundAlgorithm::Indexed,
        AroundAlgorithm::Grid,
    ];

    fn pts(raw: &[[f64; 2]]) -> Vec<Point<2>> {
        raw.iter().map(|&c| Point::new(c)).collect()
    }

    /// Deterministic pseudo-random cloud shared by the equivalence tests.
    fn cloud(n: usize, seed: u64, scale: f64) -> Vec<Point<2>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        (0..n)
            .map(|_| Point::new([next() * scale, next() * scale]))
            .collect()
    }

    #[test]
    fn assigns_to_nearest_center() {
        let centers = pts(&[[0.0, 0.0], [10.0, 0.0]]);
        let points = pts(&[[1.0, 0.0], [9.0, 0.0], [4.0, 0.0], [6.0, 0.0]]);
        for algo in ALGOS {
            let cfg = SgbAroundConfig::new(centers.clone()).algorithm(algo);
            let out = sgb_around(&points, &cfg);
            assert_eq!(out.groups, vec![vec![0, 2], vec![1, 3]], "{algo:?}");
            assert!(out.outliers.is_empty());
            out.check_partition(4);
        }
    }

    #[test]
    fn exact_ties_break_to_lowest_center_index() {
        // The midpoint (5, 0) ties exactly between both centers under every
        // metric; so does a point equidistant from three centers.
        let centers = pts(&[[0.0, 0.0], [10.0, 0.0]]);
        let points = pts(&[[5.0, 0.0]]);
        for metric in Metric::ALL {
            for algo in ALGOS {
                let cfg = SgbAroundConfig::new(centers.clone())
                    .metric(metric)
                    .algorithm(algo);
                let out = sgb_around(&points, &cfg);
                assert_eq!(out.groups[0], vec![0], "{algo:?} {metric}");
                assert!(out.groups[1].is_empty(), "{algo:?} {metric}");
            }
        }
        // Swapping the center order flips the winner: the tie-break is by
        // index, not by coordinates.
        let swapped = pts(&[[10.0, 0.0], [0.0, 0.0]]);
        for algo in ALGOS {
            let cfg = SgbAroundConfig::new(swapped.clone()).algorithm(algo);
            let out = sgb_around(&points, &cfg);
            assert_eq!(out.groups[0], vec![0], "{algo:?}");
        }
    }

    #[test]
    fn duplicate_centers_resolve_to_first() {
        // Core-level behavior (the SQL parser rejects duplicates earlier):
        // the lowest index of a duplicated center wins.
        let centers = pts(&[[1.0, 1.0], [1.0, 1.0]]);
        for algo in ALGOS {
            let cfg = SgbAroundConfig::new(centers.clone()).algorithm(algo);
            let out = sgb_around(&pts(&[[1.2, 1.0]]), &cfg);
            assert_eq!(out.groups[0], vec![0], "{algo:?}");
            assert!(out.groups[1].is_empty(), "{algo:?}");
        }
    }

    #[test]
    fn radius_bound_produces_outliers() {
        let centers = pts(&[[0.0, 0.0]]);
        // Boundary is inclusive (canonical predicate δ ≤ r).
        let points = pts(&[[3.0, 0.0], [3.1, 0.0], [0.0, -3.0], [8.0, 8.0]]);
        for algo in ALGOS {
            let cfg = SgbAroundConfig::new(centers.clone())
                .max_radius(3.0)
                .algorithm(algo);
            let out = sgb_around(&points, &cfg);
            assert_eq!(out.groups[0], vec![0, 2], "{algo:?}");
            assert_eq!(out.outliers, vec![1, 3], "{algo:?}");
            out.check_partition(4);
        }
    }

    #[test]
    fn radius_semantics_differ_per_metric() {
        // (0.8, 0.8) vs a center at the origin: δ∞ = 0.8 ≤ 1 keeps it,
        // δ2 ≈ 1.13 and δ1 = 1.6 expel it.
        let centers = pts(&[[0.0, 0.0]]);
        let points = pts(&[[0.8, 0.8]]);
        for algo in ALGOS {
            let cfg = |m: Metric| {
                SgbAroundConfig::new(centers.clone())
                    .metric(m)
                    .max_radius(1.0)
                    .algorithm(algo)
            };
            assert!(sgb_around(&points, &cfg(Metric::LInf)).outliers.is_empty());
            assert_eq!(sgb_around(&points, &cfg(Metric::L2)).outliers, vec![0]);
            assert_eq!(sgb_around(&points, &cfg(Metric::L1)).outliers, vec![0]);
        }
    }

    #[test]
    fn metrics_pick_different_nearest_centers() {
        // q = (2.2, 2.2): center A at (3, 3) has δ1 = 1.6, δ∞ = 0.8;
        // center B at (2.2, 0.9) has δ1 = 1.3, δ∞ = 1.3. L1 prefers B,
        // L∞ prefers A.
        let centers = pts(&[[3.0, 3.0], [2.2, 0.9]]);
        let q = pts(&[[2.2, 2.2]]);
        for algo in ALGOS {
            let cfg = |m: Metric| {
                SgbAroundConfig::new(centers.clone())
                    .metric(m)
                    .algorithm(algo)
            };
            let l1 = sgb_around(&q, &cfg(Metric::L1));
            assert_eq!(l1.groups[1], vec![0], "{algo:?}");
            let linf = sgb_around(&q, &cfg(Metric::LInf));
            assert_eq!(linf.groups[0], vec![0], "{algo:?}");
        }
    }

    #[test]
    fn all_paths_agree_exactly_on_random_clouds() {
        let points = cloud(600, 0xA40C, 10.0);
        let centers: Vec<Point<2>> = cloud(37, 0xC357, 10.0);
        for metric in Metric::ALL {
            for radius in [None, Some(0.9), Some(2.5)] {
                let run = |algo| {
                    let mut cfg = SgbAroundConfig::new(centers.clone())
                        .metric(metric)
                        .algorithm(algo);
                    if let Some(r) = radius {
                        cfg = cfg.max_radius(r);
                    }
                    sgb_around(&points, &cfg)
                };
                let brute = run(AroundAlgorithm::BruteForce);
                for algo in [
                    AroundAlgorithm::Indexed,
                    AroundAlgorithm::Grid,
                    AroundAlgorithm::Auto,
                ] {
                    assert_eq!(brute, run(algo), "{algo:?} {metric} radius {radius:?}");
                }
                brute.check_partition(points.len());
            }
        }
    }

    #[test]
    fn auto_resolves_from_center_count() {
        let few = SgbAround::new(SgbAroundConfig::new(cloud(8, 1, 5.0)));
        assert_eq!(few.resolved_algorithm(), AroundAlgorithm::BruteForce);
        let many = SgbAround::new(SgbAroundConfig::new(cloud(700, 2, 5.0)));
        assert_eq!(many.resolved_algorithm(), AroundAlgorithm::Grid);
        let explicit = SgbAround::new(
            SgbAroundConfig::new(cloud(8, 3, 5.0)).algorithm(AroundAlgorithm::Indexed),
        );
        assert_eq!(explicit.resolved_algorithm(), AroundAlgorithm::Indexed);
    }

    #[test]
    fn order_independence_of_assignment() {
        let points = cloud(300, 0x0D3F1A, 8.0);
        let centers: Vec<Point<2>> = cloud(9, 7, 8.0);
        let cfg = SgbAroundConfig::new(centers).max_radius(1.5);
        let forward = sgb_around(&points, &cfg);
        let assignment = forward.assignment(points.len());
        // Process in reverse: each record's center must be unchanged.
        let mut rev = points.clone();
        rev.reverse();
        let backward = sgb_around(&rev, &cfg);
        let back_assignment = backward.assignment(points.len());
        let n = points.len();
        for i in 0..n {
            assert_eq!(assignment[i], back_assignment[n - 1 - i], "record {i}");
        }
    }

    #[test]
    fn grouping_conversion_drops_empty_centers_and_appends_outliers() {
        let centers = pts(&[[0.0, 0.0], [50.0, 50.0], [10.0, 0.0]]);
        let points = pts(&[[0.5, 0.0], [9.5, 0.0], [25.0, 25.0]]);
        let cfg = SgbAroundConfig::new(centers).max_radius(2.0);
        let out = sgb_around(&points, &cfg);
        assert_eq!(out.num_centers(), 3);
        assert_eq!(out.occupied_centers(), 2);
        assert_eq!(out.assigned_records(), 2);
        let g = out.grouping();
        // Center 1 attracted nothing; outliers come last.
        assert_eq!(g.groups, vec![vec![0], vec![1], vec![2]]);
        g.check_partition(3);
        assert_eq!(out.assignment(3), vec![Some(0), Some(2), None]);
    }

    #[test]
    fn empty_input_yields_empty_groups() {
        let cfg = SgbAroundConfig::new(pts(&[[0.0, 0.0], [1.0, 1.0]]));
        for algo in ALGOS {
            let out = sgb_around::<2>(&[], &cfg.clone().algorithm(algo));
            assert_eq!(out.num_centers(), 2);
            assert_eq!(out.occupied_centers(), 0);
            assert!(out.grouping().groups.is_empty());
        }
    }

    #[test]
    fn zero_radius_keeps_only_exact_matches() {
        let centers = pts(&[[1.0, 1.0]]);
        let points = pts(&[[1.0, 1.0], [1.0, 1.0000001]]);
        let cfg = SgbAroundConfig::new(centers).max_radius(0.0);
        let out = sgb_around(&points, &cfg);
        assert_eq!(out.groups[0], vec![0]);
        assert_eq!(out.outliers, vec![1]);
    }

    #[test]
    fn three_dimensional_grouping() {
        let centers = vec![Point::new([0.0, 0.0, 0.0]), Point::new([5.0, 5.0, 5.0])];
        let points = vec![
            Point::new([0.2, 0.1, 0.0]),
            Point::new([4.9, 5.0, 5.2]),
            Point::new([2.5, 2.5, 2.5]), // exact midpoint: lowest index wins
        ];
        for metric in Metric::ALL {
            for algo in ALGOS {
                let cfg = SgbAroundConfig::new(centers.clone())
                    .metric(metric)
                    .algorithm(algo);
                let out = sgb_around(&points, &cfg);
                assert_eq!(out.groups, vec![vec![0, 2], vec![1]], "{algo:?} {metric}");
            }
        }
    }

    #[test]
    fn parallel_assignment_is_bit_identical_to_sequential() {
        let points = cloud(800, 0xFA57, 10.0);
        let centers: Vec<Point<2>> = cloud(23, 0xC0DE, 10.0);
        for metric in Metric::ALL {
            for algo in ALGOS {
                for radius in [None, Some(1.2)] {
                    let mut base = SgbAroundConfig::new(centers.clone())
                        .metric(metric)
                        .algorithm(algo);
                    if let Some(r) = radius {
                        base = base.max_radius(r);
                    }
                    let sequential = sgb_around(&points, &base.clone().threads(1));
                    for threads in [2, 3, 7] {
                        let parallel = sgb_around(&points, &base.clone().threads(threads));
                        // Exact equality: member order within every group
                        // and the outlier order must match arrival order.
                        assert_eq!(
                            parallel, sequential,
                            "{algo:?} {metric} radius {radius:?} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn streaming_interface_matches_one_shot() {
        let points = cloud(100, 3, 5.0);
        let centers: Vec<Point<2>> = cloud(5, 4, 5.0);
        let cfg = SgbAroundConfig::new(centers).max_radius(1.0);
        let mut op = SgbAround::new(cfg.clone());
        assert!(op.is_empty());
        for p in &points {
            op.push(*p);
        }
        assert_eq!(op.len(), 100);
        assert_eq!(op.config().max_radius, Some(1.0));
        assert_eq!(op.finish(), sgb_around(&points, &cfg));
    }
}
