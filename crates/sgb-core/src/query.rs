//! The unified operator surface: one builder, one result, one stream.
//!
//! The three similarity group-by operators share almost all of their
//! vocabulary — a metric δ, an execution-path selector, thresholds — and
//! differ only in their membership rule. This module exposes that family
//! as **one declarative query type** instead of three parallel config
//! stacks:
//!
//! * [`SgbQuery`] — a single builder with one constructor per operator
//!   ([`SgbQuery::all`], [`SgbQuery::any`], [`SgbQuery::around`]) and the
//!   shared knobs declared once ([`metric`](SgbQuery::metric),
//!   [`algorithm`](SgbQuery::algorithm) over the unified [`Algorithm`]
//!   enum, …). Operator-specific knobs
//!   ([`overlap`](SgbQuery::overlap), [`max_radius`](SgbQuery::max_radius),
//!   …) panic when applied to an operator that has no such concept, so a
//!   nonsensical query fails at construction, not mid-execution.
//! * [`Grouping`] — a single answer-set type covering the whole family:
//!   member lists, the `ELIMINATE`d set, the radius-bounded outlier set,
//!   and the resolved execution path with the cost model's reason (the
//!   same story `EXPLAIN` tells at the SQL layer).
//! * [`SgbStream`] — a single streaming operator wrapping the per-operator
//!   engines behind one `push`/`finish` interface.
//!
//! Execution is delegated to the per-operator engines unchanged, so every
//! grouping produced here is **bit-identical** to the legacy
//! `sgb_all`/`sgb_any`/`sgb_around` entry points under the same knobs
//! (asserted by `tests/api_equivalence.rs`).
//!
//! ```
//! use sgb_core::{Algorithm, SgbQuery};
//! use sgb_geom::{Metric, Point};
//!
//! let points: Vec<Point<2>> = vec![
//!     Point::new([1.0, 1.0]),
//!     Point::new([2.0, 2.0]),
//!     Point::new([9.0, 9.0]),
//! ];
//! // Connected components within ε = 1.5 under L2:
//! let out = SgbQuery::any(1.5).metric(Metric::L2).run(&points);
//! assert_eq!(out.sorted_sizes(), vec![2, 1]);
//! assert_eq!(out.resolved_algorithm(), Algorithm::AllPairs); // tiny n
//!
//! // The same family, grouped around query-supplied centers:
//! let centers = vec![Point::new([1.0, 1.0]), Point::new([9.0, 9.0])];
//! let out = SgbQuery::around(centers).max_radius(2.0).run(&points);
//! assert_eq!(out.num_groups(), 2);
//! assert!(out.outliers().is_empty());
//! ```

use std::sync::Arc;

use sgb_geom::{Metric, Point};
use sgb_spatial::{Grid, RTree};

use sgb_telemetry::{Counter, Phase, QueryProfile, Telemetry};

use crate::any::{
    sgb_any_grid, sgb_any_tree, sgb_any_with, try_sgb_any_all_pairs, try_sgb_any_grid,
    try_sgb_any_tree,
};
use crate::around::{AroundGrouping, CenterIndex};
use crate::cache::SgbCache;
use crate::governor::{QueryGovernor, SgbError};
use crate::grouping::Grouping as FlatGrouping;
use crate::{
    cost, Algorithm, AnyAlgorithm, AroundAlgorithm, OverlapAction, RecordId, SgbAll, SgbAllConfig,
    SgbAny, SgbAnyConfig, SgbAround, SgbAroundConfig,
};

/// The unified answer set of the SGB operator family (Definition 3, plus
/// the order-independent extensions of arXiv:1412.4303).
///
/// One type covers all three operators:
///
/// * [`groups`](Self::groups) — the answer groups, each a member list of
///   record ids in join order. SGB-All reports cliques in creation order,
///   SGB-Any connected components keyed by smallest member, SGB-Around
///   the non-empty center groups in center order.
/// * [`eliminated`](Self::eliminated) — records dropped by SGB-All's
///   `ON-OVERLAP ELIMINATE` (empty for everything else).
/// * [`outliers`](Self::outliers) — records beyond the radius bound of
///   SGB-Around's `WITHIN r` (empty for everything else). They are **not**
///   part of [`groups`](Self::groups); [`output_groups`](Self::output_groups)
///   appends them as one trailing group, which is how the SQL layer emits
///   them.
/// * [`resolved_algorithm`](Self::resolved_algorithm) /
///   [`selection_reason`](Self::selection_reason) — the concrete execution
///   path the run used and why, in the same vocabulary `EXPLAIN` prints.
///
/// Equality compares the **answer sets only** (groups, eliminated,
/// outliers); the execution metadata is deliberately excluded so results
/// produced by different algorithms compare equal exactly when the
/// grouping semantics say they should.
#[derive(Clone, Debug)]
pub struct Grouping {
    groups: Vec<Vec<RecordId>>,
    eliminated: Vec<RecordId>,
    outliers: Vec<RecordId>,
    algorithm: Algorithm,
    selection: String,
    threads: usize,
    /// The telemetry handle the producing run recorded into — off unless
    /// the query had one installed ([`SgbQuery::telemetry`]). Carrying the
    /// live handle (not a snapshot) lets later stages — the relational
    /// aggregation, for one — keep recording into the same profile; a
    /// snapshot is materialised on demand by [`Grouping::profile`].
    telemetry: Telemetry,
}

impl Grouping {
    /// An empty grouping: no groups, nothing eliminated, no outliers —
    /// what any query produces over empty input. Useful as the identity
    /// value of total wrappers that sometimes have nothing to run.
    #[must_use]
    pub fn empty() -> Self {
        Grouping {
            groups: Vec::new(),
            eliminated: Vec::new(),
            outliers: Vec::new(),
            algorithm: Algorithm::AllPairs,
            selection: "empty input, nothing ran".to_owned(),
            threads: 1,
            telemetry: Telemetry::off(),
        }
    }

    /// Wraps a flat SGB-All / SGB-Any answer set.
    pub(crate) fn from_flat(
        flat: FlatGrouping,
        algorithm: Algorithm,
        selection: String,
        threads: usize,
    ) -> Self {
        Grouping {
            groups: flat.groups,
            eliminated: flat.eliminated,
            outliers: Vec::new(),
            algorithm,
            selection,
            threads,
            telemetry: Telemetry::off(),
        }
    }

    /// Wraps an SGB-Around answer set: non-empty center groups in center
    /// order, outliers kept as the explicit outlier set.
    pub(crate) fn from_around(
        around: AroundGrouping,
        algorithm: Algorithm,
        selection: String,
        threads: usize,
    ) -> Self {
        Grouping {
            groups: around
                .groups
                .into_iter()
                .filter(|g| !g.is_empty())
                .collect(),
            eliminated: Vec::new(),
            outliers: around.outliers,
            algorithm,
            selection,
            threads,
            telemetry: Telemetry::off(),
        }
    }

    /// The answer groups (member record ids in join order).
    #[must_use]
    pub fn groups(&self) -> &[Vec<RecordId>] {
        &self.groups
    }

    /// Iterates over the answer groups.
    pub fn iter(&self) -> impl Iterator<Item = &[RecordId]> {
        self.groups.iter().map(Vec::as_slice)
    }

    /// The answer groups plus — when any exist — the outlier set as one
    /// trailing group: the relational output shape (`GROUP BY … AROUND …
    /// WITHIN r` emits the outlier group last).
    pub fn output_groups(&self) -> impl Iterator<Item = &[RecordId]> {
        self.groups
            .iter()
            .map(Vec::as_slice)
            .chain((!self.outliers.is_empty()).then_some(self.outliers.as_slice()))
    }

    /// Records dropped by `ON-OVERLAP ELIMINATE`, in elimination order.
    #[must_use]
    pub fn eliminated(&self) -> &[RecordId] {
        &self.eliminated
    }

    /// Records beyond the SGB-Around radius bound, in arrival order.
    #[must_use]
    pub fn outliers(&self) -> &[RecordId] {
        &self.outliers
    }

    /// Number of answer groups (the outlier set is not counted; see
    /// [`output_groups`](Self::output_groups)).
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of records placed in answer groups.
    #[must_use]
    pub fn grouped_records(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Group sizes in group order.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        self.groups.iter().map(Vec::len).collect()
    }

    /// Group sizes in descending order (order-insensitive comparisons).
    #[must_use]
    pub fn sorted_sizes(&self) -> Vec<usize> {
        let mut s = self.sizes();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s
    }

    /// The concrete execution path this grouping was produced by
    /// (never [`Algorithm::Auto`] — `Auto` is resolved before running).
    #[must_use]
    pub fn resolved_algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Why [`resolved_algorithm`](Self::resolved_algorithm) was chosen:
    /// `"configured explicitly"` or the cost model's reason — the same
    /// text the SQL layer's `EXPLAIN` prints after `path:`.
    #[must_use]
    pub fn selection_reason(&self) -> &str {
        &self.selection
    }

    /// How many worker threads the run actually used (1 for every
    /// sequential path, including all of SGB-All). Like
    /// [`resolved_algorithm`](Self::resolved_algorithm), this is execution
    /// metadata: it never influences the answer sets and is excluded from
    /// equality.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The query profile recorded while producing this grouping — phase
    /// timings (validate, index build, join, merge, …) and engine counters
    /// (candidate pairs, cells probed, cache hits, …). `None` unless the
    /// query installed a telemetry handle ([`SgbQuery::telemetry`]). Like
    /// [`threads`](Self::threads), this is execution metadata, excluded
    /// from equality.
    #[must_use]
    pub fn profile(&self) -> Option<QueryProfile> {
        self.telemetry.profile()
    }

    /// The live telemetry handle behind [`profile`](Self::profile), so
    /// downstream stages (relational aggregation) can keep recording into
    /// the same sink after the operator returns.
    #[must_use]
    pub fn telemetry_handle(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Installs the telemetry handle this grouping reports through.
    pub(crate) fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Maps each record id in `0..n` to the index of the answer group
    /// containing it (`None` for eliminated, outlier, or never-seen
    /// records).
    #[must_use]
    pub fn assignment(&self, n: usize) -> Vec<Option<usize>> {
        let mut out = vec![None; n];
        for (gi, g) in self.groups.iter().enumerate() {
            for &r in g {
                debug_assert!(r < n, "record id out of range");
                debug_assert!(out[r].is_none(), "record {r} in two groups");
                out[r] = Some(gi);
            }
        }
        out
    }

    /// A canonical form: members sorted within each group, groups sorted
    /// by first member, eliminated/outliers sorted. Two groupings are
    /// semantically equal as sets of sets iff their normalized forms are
    /// equal. Metadata is preserved.
    #[must_use]
    pub fn normalized(&self) -> Grouping {
        let mut groups: Vec<Vec<RecordId>> = self
            .groups
            .iter()
            .map(|g| {
                let mut g = g.clone();
                g.sort_unstable();
                g
            })
            .collect();
        groups.sort();
        let mut eliminated = self.eliminated.clone();
        eliminated.sort_unstable();
        let mut outliers = self.outliers.clone();
        outliers.sort_unstable();
        Grouping {
            groups,
            eliminated,
            outliers,
            algorithm: self.algorithm,
            selection: self.selection.clone(),
            threads: self.threads,
            telemetry: self.telemetry.clone(),
        }
    }

    /// Asserts internal consistency for `n` input records: every record
    /// appears in at most one group, never both grouped and
    /// eliminated/outlier. Intended for tests.
    pub fn check_partition(&self, n: usize) {
        let mut seen = vec![false; n];
        for g in &self.groups {
            assert!(!g.is_empty(), "output groups must be non-empty");
            for &r in g {
                assert!(r < n, "record {r} out of range {n}");
                assert!(!seen[r], "record {r} appears twice");
                seen[r] = true;
            }
        }
        for &r in self.eliminated.iter().chain(&self.outliers) {
            assert!(r < n, "record {r} out of range {n}");
            assert!(!seen[r], "record {r} appears twice");
            seen[r] = true;
        }
    }
}

impl PartialEq for Grouping {
    fn eq(&self, other: &Self) -> bool {
        // Metadata (algorithm, selection reason) is excluded on purpose:
        // equality is about the answer sets.
        self.groups == other.groups
            && self.eliminated == other.eliminated
            && self.outliers == other.outliers
    }
}

impl Eq for Grouping {}

impl<'a> IntoIterator for &'a Grouping {
    type Item = &'a [RecordId];
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, Vec<RecordId>>,
        fn(&'a Vec<RecordId>) -> &'a [RecordId],
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.groups.iter().map(Vec::as_slice)
    }
}

/// The operator-specific part of a query: which membership rule applies
/// and its private knobs.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum OpSpec<const D: usize> {
    /// SGB-All: ε-cliques with `ON-OVERLAP` arbitration.
    All { eps: f64, overlap: OverlapAction },
    /// SGB-Any: connected components of the ε-threshold graph.
    Any { eps: f64 },
    /// SGB-Around: nearest of a fixed center set, optional radius bound.
    Around {
        centers: Vec<Point<D>>,
        max_radius: Option<f64>,
    },
}

impl<const D: usize> OpSpec<D> {
    fn name(&self) -> &'static str {
        match self {
            OpSpec::All { .. } => "SGB-All",
            OpSpec::Any { .. } => "SGB-Any",
            OpSpec::Around { .. } => "SGB-Around",
        }
    }
}

/// One declarative query over the SGB operator family.
///
/// Construct with [`SgbQuery::all`] / [`SgbQuery::any`] /
/// [`SgbQuery::around`], refine with the builder knobs, then either
/// [`run`](Self::run) over a complete point set or [`stream`](Self::stream)
/// points in arrival order.
///
/// Knob defaults match the legacy per-operator configs exactly (`L2`,
/// `Auto`, `JOIN-ANY`, seed `0x5EED`, hull threshold 16, R-tree fan-out
/// 12), so migrating a call site never changes its grouping.
///
/// ```
/// use sgb_core::{Algorithm, OverlapAction, SgbQuery};
/// use sgb_geom::{Metric, Point};
///
/// let q = SgbQuery::all(3.0)
///     .metric(Metric::LInf)
///     .overlap(OverlapAction::Eliminate)
///     .algorithm(Algorithm::Indexed);
/// let out = q.run(&[
///     Point::new([1.0, 7.0]),
///     Point::new([2.0, 6.0]),
///     Point::new([6.0, 2.0]),
///     Point::new([7.0, 1.0]),
///     Point::new([4.0, 4.0]),
/// ]);
/// assert_eq!(out.sorted_sizes(), vec![2, 2]); // the overlapping point drops
/// assert_eq!(out.eliminated(), &[4]);
/// assert_eq!(out.resolved_algorithm(), Algorithm::Indexed);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SgbQuery<const D: usize> {
    pub(crate) op: OpSpec<D>,
    metric: Metric,
    algorithm: Algorithm,
    seed: u64,
    hull_threshold: usize,
    rtree_fanout: usize,
    threads: usize,
    /// Profile sink for this query's executions ([`Telemetry::off`] by
    /// default — zero-cost; see the `telemetry` bench gate). Excluded from
    /// [`fingerprint`](Self::fingerprint): observing a query never changes
    /// its cache identity.
    telemetry: Telemetry,
}

/// The default R-tree fan-out of a freshly-built query (shared with the
/// SQL layer, whose cache probes must key on the same value the executor
/// will build with).
pub const DEFAULT_RTREE_FANOUT: usize = 12;

impl<const D: usize> SgbQuery<D> {
    fn new(op: OpSpec<D>) -> Self {
        Self {
            op,
            metric: Metric::default(),
            algorithm: Algorithm::default(),
            seed: 0x5EED,
            hull_threshold: 16,
            rtree_fanout: DEFAULT_RTREE_FANOUT,
            threads: 0,
            telemetry: Telemetry::off(),
        }
    }

    /// An SGB-All (distance-to-*all*, ε-clique) query with threshold
    /// `eps`. Panics on a non-finite or negative ε.
    #[must_use]
    pub fn all(eps: f64) -> Self {
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "epsilon must be finite and non-negative"
        );
        Self::new(OpSpec::All {
            eps,
            overlap: OverlapAction::default(),
        })
    }

    /// An SGB-Any (distance-to-*any*, connected-component) query with
    /// threshold `eps`. Panics on a non-finite or negative ε.
    #[must_use]
    pub fn any(eps: f64) -> Self {
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "epsilon must be finite and non-negative"
        );
        Self::new(OpSpec::Any { eps })
    }

    /// An SGB-Around (nearest-center) query around `centers`. Panics on an
    /// empty center list or non-finite center coordinates (the SQL parser
    /// rejects both earlier with proper errors).
    #[must_use]
    pub fn around(centers: Vec<Point<D>>) -> Self {
        assert!(!centers.is_empty(), "AROUND requires at least one center");
        assert!(
            centers.iter().all(Point::is_finite),
            "centers must have finite coordinates"
        );
        Self::new(OpSpec::Around {
            centers,
            max_radius: None,
        })
    }

    // -- shared knobs --------------------------------------------------------

    /// Sets the distance function δ (default `L2`).
    #[must_use]
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Selects the execution path (default [`Algorithm::Auto`], resolved
    /// by the cost model at run time). Panics when the algorithm does not
    /// exist for this query's operator (`BoundsChecking` is SGB-All-only).
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        let applicable = match self.op {
            OpSpec::All { .. } => true,
            OpSpec::Any { .. } => algorithm.for_any().is_some(),
            OpSpec::Around { .. } => algorithm.for_around().is_some(),
        };
        assert!(
            applicable,
            "{algorithm} is not an execution path of {} (valid: Auto, AllPairs, Indexed, Grid)",
            self.op.name()
        );
        self.algorithm = algorithm;
        self
    }

    /// Sets the R-tree fan-out of the indexed paths (default 12).
    #[must_use]
    pub fn rtree_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout >= 4, "R-tree fan-out must be at least 4");
        self.rtree_fanout = fanout;
        self
    }

    /// Sets the worker-thread count for [`run`](Self::run) (default 0 =
    /// auto: the cost model decides, see
    /// [`cost::resolve_threads`]). Accepted on every operator — paths with
    /// no parallel twin (all of SGB-All, SGB-Any's non-grid algorithms)
    /// resolve back to 1 worker rather than rejecting the knob, so one
    /// session-level setting can apply to a whole workload. Thread count
    /// never affects results; the actual count used is reported by
    /// [`Grouping::threads`].
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Installs a telemetry handle: every subsequent execution records its
    /// phase timings and engine counters into the handle's shared profile,
    /// and the produced [`Grouping`] reports it via
    /// [`Grouping::profile`]. The default is [`Telemetry::off`], under
    /// which every instrumentation site is a no-op branch — the hot paths
    /// stay byte-for-byte on their pre-telemetry codegen (pinned by the
    /// `telemetry` bench gate at < 2% overhead).
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    // -- operator-specific knobs ---------------------------------------------

    /// Sets SGB-All's `ON-OVERLAP` action (default `JOIN-ANY`). Panics for
    /// SGB-Any / SGB-Around, which have no overlap concept.
    #[must_use]
    pub fn overlap(mut self, action: OverlapAction) -> Self {
        match &mut self.op {
            OpSpec::All { overlap, .. } => *overlap = action,
            other => panic!("ON-OVERLAP applies only to SGB-All, not {}", other.name()),
        }
        self
    }

    /// Sets SGB-All's `JOIN-ANY` arbitration seed (default `0x5EED`).
    /// Panics for SGB-Any / SGB-Around, whose groupings are
    /// deterministic without one.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        match &self.op {
            OpSpec::All { .. } => self.seed = seed,
            other => panic!(
                "the JOIN-ANY seed applies only to SGB-All, not {}",
                other.name()
            ),
        }
        self
    }

    /// Sets SGB-All's convex-hull caching threshold (default 16;
    /// `usize::MAX` disables the hull refinement). Panics for SGB-Any /
    /// SGB-Around, which never refine through hulls.
    #[must_use]
    pub fn hull_threshold(mut self, members: usize) -> Self {
        match &self.op {
            OpSpec::All { .. } => self.hull_threshold = members.max(1),
            other => panic!(
                "the hull threshold applies only to SGB-All, not {}",
                other.name()
            ),
        }
        self
    }

    /// Sets SGB-Around's maximum radius (the `WITHIN r` clause): records
    /// farther than `r` from every center join the explicit outlier set.
    /// Panics for SGB-All / SGB-Any (their `WITHIN` is the ε threshold,
    /// set at construction).
    #[must_use]
    pub fn max_radius(mut self, r: f64) -> Self {
        assert!(
            r >= 0.0 && r.is_finite(),
            "radius must be finite and non-negative"
        );
        match &mut self.op {
            OpSpec::Around { max_radius, .. } => *max_radius = Some(r),
            other => panic!(
                "the radius bound applies only to SGB-Around, not {}",
                other.name()
            ),
        }
        self
    }

    // -- introspection -------------------------------------------------------

    /// The operator family member this query runs (`"SGB-All"`,
    /// `"SGB-Any"`, or `"SGB-Around"`).
    #[must_use]
    pub fn operator(&self) -> &'static str {
        self.op.name()
    }

    /// The configured distance function.
    #[must_use]
    pub fn configured_metric(&self) -> Metric {
        self.metric
    }

    /// The configured execution path (possibly [`Algorithm::Auto`]).
    #[must_use]
    pub fn configured_algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configured worker-thread count (0 = auto).
    #[must_use]
    pub fn configured_threads(&self) -> usize {
        self.threads
    }

    /// The ε threshold (SGB-All / SGB-Any) — `None` for SGB-Around, whose
    /// `WITHIN` is the radius bound.
    #[must_use]
    pub fn eps(&self) -> Option<f64> {
        match &self.op {
            OpSpec::All { eps, .. } | OpSpec::Any { eps } => Some(*eps),
            OpSpec::Around { .. } => None,
        }
    }

    /// The center list (SGB-Around only).
    #[must_use]
    pub fn centers(&self) -> Option<&[Point<D>]> {
        match &self.op {
            OpSpec::Around { centers, .. } => Some(centers),
            _ => None,
        }
    }

    /// The radius bound (SGB-Around only; `None` when unbounded or for
    /// the other operators).
    #[must_use]
    pub fn radius_bound(&self) -> Option<f64> {
        match &self.op {
            OpSpec::Around { max_radius, .. } => *max_radius,
            _ => None,
        }
    }

    // -- lowering ------------------------------------------------------------

    pub(crate) fn all_config(&self, eps: f64, overlap: OverlapAction) -> SgbAllConfig {
        SgbAllConfig::new(eps)
            .metric(self.metric)
            .overlap(overlap)
            .seed(self.seed)
            .hull_threshold(self.hull_threshold)
            .rtree_fanout(self.rtree_fanout)
    }

    pub(crate) fn any_config(&self, eps: f64) -> SgbAnyConfig {
        SgbAnyConfig::new(eps)
            .metric(self.metric)
            .rtree_fanout(self.rtree_fanout)
    }

    pub(crate) fn around_config(
        &self,
        centers: Vec<Point<D>>,
        max_radius: Option<f64>,
    ) -> SgbAroundConfig<D> {
        let mut cfg = SgbAroundConfig::new(centers)
            .metric(self.metric)
            .rtree_fanout(self.rtree_fanout);
        if let Some(r) = max_radius {
            cfg = cfg.max_radius(r);
        }
        cfg
    }

    // -- execution -----------------------------------------------------------

    /// Records the result-shape counters and attaches this query's
    /// telemetry handle to an outgoing grouping (cache-stored copies keep
    /// their inert handle — attachment happens on the value returned to
    /// the caller, after any `store_result`).
    fn finalize(&self, mut out: Grouping) -> Grouping {
        if self.telemetry.is_enabled() {
            self.telemetry.add(Counter::Groups, out.groups.len() as u64);
            self.telemetry
                .add(Counter::Outliers, out.outliers.len() as u64);
            self.telemetry
                .record_max(Counter::ThreadsUsed, out.threads as u64);
        }
        out.telemetry = self.telemetry.clone();
        out
    }

    /// Approximate SGB-Around candidate count: the brute scan compares
    /// every point against every center; the indexed paths probe the
    /// center index once per point.
    fn around_candidates(&self, n: usize, centers: usize, resolved: AroundAlgorithm) -> u64 {
        match resolved {
            AroundAlgorithm::BruteForce => n as u64 * centers as u64,
            _ => n as u64,
        }
    }

    /// Runs the query over a complete point set.
    ///
    /// [`Algorithm::Auto`] resolves from the true cardinality (or center
    /// count) via the cost model; the resolution and its reason are
    /// recorded on the returned [`Grouping`]. Results never depend on the
    /// resolution — every concrete path is bit-identical.
    #[must_use]
    pub fn run(&self, points: &[Point<D>]) -> Grouping {
        let tel = &self.telemetry;
        // One shared contract for the whole family: non-finite coordinates
        // are rejected here, at the query boundary, so every operator arm
        // (including the parallel bulk paths, which bypass the streaming
        // `push` asserts) fails identically and early.
        let validate = tel.phase(Phase::Validate);
        assert!(
            points.iter().all(Point::is_finite),
            "points must have finite coordinates"
        );
        drop(validate);
        let out = match &self.op {
            OpSpec::All { eps, overlap } => {
                let (resolved, reason) =
                    cost::resolve_all(self.algorithm.for_all(), points.len(), D);
                // A requested thread count is accepted but resolves to 1:
                // SGB-All's arbitration is arrival-order sensitive.
                let (threads, _) = cost::threads_for_all();
                let cfg = self.all_config(*eps, *overlap).algorithm(resolved);
                let join = tel.phase(Phase::Join);
                let mut op = SgbAll::new(cfg);
                for p in points {
                    op.push(*p);
                }
                drop(join);
                tel.add(Counter::CandidatePairs, op.candidates_tested());
                let merge = tel.phase(Phase::Merge);
                let flat = op.finish();
                drop(merge);
                Grouping::from_flat(flat, resolved.into(), reason, threads)
            }
            OpSpec::Any { eps } => {
                let base = self.algorithm.for_any().expect("validated by algorithm()");
                let (resolved, reason) = cost::resolve_any(base, points.len(), D);
                let (threads, _) = cost::threads_for_any(resolved, self.threads, points.len());
                let cfg = self.any_config(*eps).algorithm(resolved).threads(threads);
                Grouping::from_flat(
                    sgb_any_with(points, &cfg, tel),
                    resolved.into(),
                    reason,
                    threads,
                )
            }
            OpSpec::Around {
                centers,
                max_radius,
            } => {
                let base = self
                    .algorithm
                    .for_around()
                    .expect("validated by algorithm()");
                let (resolved, reason) = cost::resolve_around(base, centers.len(), D);
                let (threads, _) = cost::threads_for_around(self.threads, points.len());
                let cfg = self
                    .around_config(centers.clone(), *max_radius)
                    .algorithm(resolved)
                    .threads(threads);
                // Feed the engine directly instead of going through
                // `sgb_around(&cfg)`, which would clone the center list a
                // second time per run. Same code path, bit-identical.
                // `SgbAround::new` builds the center index eagerly, so it
                // is the index-build phase; the extend is the assign join.
                let build = tel.phase(Phase::IndexBuild);
                let mut op = SgbAround::new(cfg);
                drop(build);
                let join = tel.phase(Phase::Join);
                op.extend_from_slice(points);
                drop(join);
                tel.add(
                    Counter::CandidatePairs,
                    self.around_candidates(points.len(), centers.len(), resolved),
                );
                let merge = tel.phase(Phase::Merge);
                let around = op.finish();
                drop(merge);
                Grouping::from_around(around, resolved.into(), reason, threads)
            }
        };
        self.finalize(out)
    }

    /// Runs the query through a shared-work [`SgbCache`], reusing spatial
    /// indexes (and whole results) built by earlier queries over the same
    /// point set.
    ///
    /// `version` is the caller's monotone counter for the point set: bump
    /// it on every content change and cached state from older versions is
    /// dropped, never served. Under an unchanged version the cache
    /// supplies:
    ///
    /// * the SGB-Any ε-grid — including **ε-superset reuse**, where one
    ///   grid serves nearby larger ε values by widening the probe window;
    /// * the SGB-Any point R-tree (keyed on fan-out);
    /// * the SGB-Around center index — version-free, since it is built
    ///   from the query's centers, never the table;
    /// * the complete [`Grouping`] of an exact repeat query;
    /// * the once-per-version finiteness validation, skipping
    ///   [`run`](Self::run)'s O(n·d) scan on every warm execution.
    ///
    /// [`Algorithm::Auto`] resolves cache-aware
    /// ([`cost::resolve_any_with_cache`] /
    /// [`cost::resolve_around_with_cache`]): a cached index has zero build
    /// cost, so it can win below the cold crossover. Whatever path runs,
    /// the answer sets are **bit-identical** to [`run`](Self::run) — index
    /// probes verify with the canonical predicate and SGB-Any's component
    /// extraction is union-order insensitive.
    ///
    /// # Panics
    /// Like [`run`](Self::run) if any point has a non-finite coordinate.
    #[must_use]
    pub fn run_cached(&self, points: &[Point<D>], cache: &SgbCache<D>, version: u64) -> Grouping {
        let tel = &self.telemetry;
        let validate = tel.phase(Phase::Validate);
        cache.validate_once(version, points);
        drop(validate);
        let probe = tel.phase(Phase::CacheProbe);
        let fingerprint = self.fingerprint();
        let hit = cache.lookup_result(version, &fingerprint);
        drop(probe);
        if let Some(hit) = hit {
            tel.add(Counter::CacheHits, 1);
            return self.finalize(hit);
        }
        tel.add(Counter::CacheMisses, 1);
        let out = match &self.op {
            // SGB-All builds no reusable structure (its index tracks the
            // *live groups*, which exist only mid-run), so only the whole
            // result is cacheable — it is deterministic given the seed.
            OpSpec::All { eps, overlap } => {
                let (resolved, reason) =
                    cost::resolve_all(self.algorithm.for_all(), points.len(), D);
                let (threads, _) = cost::threads_for_all();
                let cfg = self.all_config(*eps, *overlap).algorithm(resolved);
                let join = tel.phase(Phase::Join);
                let mut op = SgbAll::new(cfg);
                for p in points {
                    op.push(*p);
                }
                drop(join);
                tel.add(Counter::CandidatePairs, op.candidates_tested());
                let merge = tel.phase(Phase::Merge);
                let flat = op.finish();
                drop(merge);
                Grouping::from_flat(flat, resolved.into(), reason, threads)
            }
            OpSpec::Any { eps } => {
                let base = self.algorithm.for_any().expect("validated by algorithm()");
                let (resolved, reason) = cost::resolve_any_with_cache(
                    base,
                    points.len(),
                    D,
                    cache.has_usable_grid(version, *eps),
                );
                let (threads, _) = cost::threads_for_any(resolved, self.threads, points.len());
                let cfg = self.any_config(*eps).algorithm(resolved).threads(threads);
                let flat = match resolved {
                    AnyAlgorithm::AllPairs => sgb_any_with(points, &cfg, tel),
                    AnyAlgorithm::Indexed => {
                        let build = tel.phase(Phase::IndexBuild);
                        let index = cache.get_or_build_tree(version, self.rtree_fanout, || {
                            RTree::from_points(
                                self.rtree_fanout,
                                points.iter().enumerate().map(|(i, p)| (*p, i)),
                            )
                        });
                        drop(build);
                        sgb_any_tree(points, &cfg, &index, tel)
                    }
                    AnyAlgorithm::Grid => {
                        let build = tel.phase(Phase::IndexBuild);
                        let index = cache.get_or_build_grid(version, *eps, |side| {
                            Grid::from_points(side, points.iter().enumerate().map(|(i, p)| (*p, i)))
                        });
                        drop(build);
                        sgb_any_grid(points, &cfg, &index, threads, tel)
                    }
                    AnyAlgorithm::Auto => unreachable!("resolve_any never returns Auto"),
                };
                Grouping::from_flat(flat, resolved.into(), reason, threads)
            }
            OpSpec::Around {
                centers,
                max_radius,
            } => {
                let base = self
                    .algorithm
                    .for_around()
                    .expect("validated by algorithm()");
                let (resolved, reason) = cost::resolve_around_with_cache(
                    base,
                    centers.len(),
                    D,
                    cache.cached_center_algorithm(centers, self.rtree_fanout),
                );
                let (threads, _) = cost::threads_for_around(self.threads, points.len());
                let cfg = self
                    .around_config(centers.clone(), *max_radius)
                    .algorithm(resolved)
                    .threads(threads);
                let build = tel.phase(Phase::IndexBuild);
                let index = match resolved {
                    // The brute scan has no structure worth caching.
                    AroundAlgorithm::BruteForce => Arc::new(CenterIndex::Scan),
                    AroundAlgorithm::Indexed | AroundAlgorithm::Grid => {
                        cache.get_or_build_center_index(resolved, self.rtree_fanout, centers)
                    }
                    AroundAlgorithm::Auto => unreachable!("resolve_around never returns Auto"),
                };
                let mut op = SgbAround::with_center_index(cfg, index);
                drop(build);
                let join = tel.phase(Phase::Join);
                op.extend_from_slice(points);
                drop(join);
                tel.add(
                    Counter::CandidatePairs,
                    self.around_candidates(points.len(), centers.len(), resolved),
                );
                let merge = tel.phase(Phase::Merge);
                let around = op.finish();
                drop(merge);
                Grouping::from_around(around, resolved.into(), reason, threads)
            }
        };
        cache.store_result(version, fingerprint, out.clone());
        self.finalize(out)
    }

    /// Governed twin of [`run`](Self::run): executes under a
    /// [`QueryGovernor`] and returns a typed [`SgbError`] instead of
    /// panicking or running away.
    ///
    /// * Non-finite coordinates yield [`SgbError::NonFinite`] (where
    ///   [`run`](Self::run) panics).
    /// * A deadline or cancellation aborts the hot loops within
    ///   [`governor::CHECK_INTERVAL`](crate::governor::CHECK_INTERVAL)
    ///   units of work per worker — [`SgbError::Timeout`] /
    ///   [`SgbError::Cancelled`].
    /// * A memory budget too small for the SGB-Any ε-grid degrades
    ///   [`Algorithm::Auto`] to the O(1)-memory all-pairs scan (the reason
    ///   on the grouping records the fallback); an explicitly requested
    ///   grid fails with [`SgbError::BudgetExceeded`] instead.
    /// * A panic on a parallel worker is captured and surfaced as
    ///   [`SgbError::WorkerPanicked`] — never a process abort, never a
    ///   poisoned lock.
    ///
    /// On `Ok`, the grouping is **bit-identical** to [`run`](Self::run)
    /// under the same knobs (modulo the recorded reason when the budget
    /// forced a fallback). On `Err`, every partial structure is dropped —
    /// no partial grouping is observable anywhere.
    pub fn try_run(
        &self,
        points: &[Point<D>],
        governor: &QueryGovernor,
    ) -> Result<Grouping, SgbError> {
        let tel = &self.telemetry;
        let validate = tel.phase(Phase::Validate);
        let finite = points.iter().all(Point::is_finite);
        drop(validate);
        if !finite {
            return Err(SgbError::NonFinite);
        }
        governor.check()?;
        let out = match &self.op {
            OpSpec::All { eps, overlap } => {
                let (resolved, reason) =
                    cost::resolve_all(self.algorithm.for_all(), points.len(), D);
                let (threads, _) = cost::threads_for_all();
                let cfg = self.all_config(*eps, *overlap).algorithm(resolved);
                // Stream pushes exactly like `sgb_all`, with a governor
                // check per tuple: each push does a candidate search, so
                // the check is cheap relative to the work it bounds.
                let join = tel.phase(Phase::Join);
                let mut op = SgbAll::new(cfg);
                for p in points {
                    governor.check()?;
                    op.push(*p);
                }
                drop(join);
                tel.add(Counter::CandidatePairs, op.candidates_tested());
                tel.add(Counter::GovernorPolls, 1 + points.len() as u64);
                let merge = tel.phase(Phase::Merge);
                let flat = op.finish();
                drop(merge);
                Grouping::from_flat(flat, resolved.into(), reason, threads)
            }
            OpSpec::Any { eps } => {
                let base = self.algorithm.for_any().expect("validated by algorithm()");
                let (resolved, reason) =
                    cost::resolve_any_governed_full(base, points.len(), D, false, false, governor)?;
                let (threads, _) = cost::threads_for_any(resolved, self.threads, points.len());
                let cfg = self.any_config(*eps).algorithm(resolved).threads(threads);
                let flat = match resolved {
                    AnyAlgorithm::AllPairs => try_sgb_any_all_pairs(points, &cfg, governor, tel)?,
                    AnyAlgorithm::Indexed => {
                        // `resolve_any_governed_full` admitted the build.
                        let build = tel.phase(Phase::IndexBuild);
                        let index: RTree<D, RecordId> = RTree::from_points(
                            self.rtree_fanout,
                            points.iter().enumerate().map(|(i, p)| (*p, i)),
                        );
                        drop(build);
                        try_sgb_any_tree(points, &cfg, &index, governor, tel)?
                    }
                    AnyAlgorithm::Grid => {
                        // `resolve_any_governed_full` admitted the build.
                        let build = tel.phase(Phase::IndexBuild);
                        let index: Grid<D, RecordId> = Grid::from_points(
                            Grid::<D, RecordId>::side_for_eps(*eps),
                            points.iter().enumerate().map(|(i, p)| (*p, i)),
                        );
                        drop(build);
                        try_sgb_any_grid(points, &cfg, &index, threads, governor, tel)?
                    }
                    AnyAlgorithm::Auto => {
                        unreachable!("resolve_any_governed_full never returns Auto")
                    }
                };
                Grouping::from_flat(flat, resolved.into(), reason, threads)
            }
            OpSpec::Around {
                centers,
                max_radius,
            } => {
                let base = self
                    .algorithm
                    .for_around()
                    .expect("validated by algorithm()");
                let (resolved, reason) =
                    cost::resolve_around_governed(base, centers.len(), D, None, governor)?;
                let (threads, _) = cost::threads_for_around(self.threads, points.len());
                let cfg = self
                    .around_config(centers.clone(), *max_radius)
                    .algorithm(resolved)
                    .threads(threads);
                let build = tel.phase(Phase::IndexBuild);
                let mut op = SgbAround::new(cfg);
                drop(build);
                let join = tel.phase(Phase::Join);
                op.try_extend_from_slice(points, governor)?;
                drop(join);
                tel.add(
                    Counter::CandidatePairs,
                    self.around_candidates(points.len(), centers.len(), resolved),
                );
                let merge = tel.phase(Phase::Merge);
                let around = op.finish();
                drop(merge);
                Grouping::from_around(around, resolved.into(), reason, threads)
            }
        };
        Ok(self.finalize(out))
    }

    /// Governed twin of [`run_cached`](Self::run_cached): the shared-work
    /// cache plus the [`QueryGovernor`] contract of [`try_run`](Self::try_run).
    ///
    /// Failure hygiene: a grouping is stored in the result cache **only on
    /// success** — a timed-out, cancelled, or faulted execution never
    /// plants a partial answer for a later query to reuse. Spatial indexes
    /// the cache finished building before the failure remain cached; they
    /// are complete, version-checked structures, so reusing them later is
    /// sound. A usable cached ε-grid is admitted past the memory budget
    /// (it already exists — running against it allocates nothing new).
    pub fn try_run_cached(
        &self,
        points: &[Point<D>],
        cache: &SgbCache<D>,
        version: u64,
        governor: &QueryGovernor,
    ) -> Result<Grouping, SgbError> {
        let tel = &self.telemetry;
        let validate = tel.phase(Phase::Validate);
        let finite = points.iter().all(Point::is_finite);
        if finite {
            // Already validated above, so this only memoizes the version's
            // validation flag (and can never hit the panicking path).
            cache.validate_once(version, points);
        }
        drop(validate);
        if !finite {
            return Err(SgbError::NonFinite);
        }
        governor.check()?;
        let probe = tel.phase(Phase::CacheProbe);
        let fingerprint = self.fingerprint();
        let hit = cache.lookup_result(version, &fingerprint);
        drop(probe);
        if let Some(hit) = hit {
            tel.add(Counter::CacheHits, 1);
            return Ok(self.finalize(hit));
        }
        tel.add(Counter::CacheMisses, 1);
        let out = match &self.op {
            OpSpec::All { eps, overlap } => {
                let (resolved, reason) =
                    cost::resolve_all(self.algorithm.for_all(), points.len(), D);
                let (threads, _) = cost::threads_for_all();
                let cfg = self.all_config(*eps, *overlap).algorithm(resolved);
                let join = tel.phase(Phase::Join);
                let mut op = SgbAll::new(cfg);
                for p in points {
                    governor.check()?;
                    op.push(*p);
                }
                drop(join);
                tel.add(Counter::CandidatePairs, op.candidates_tested());
                tel.add(Counter::GovernorPolls, 1 + points.len() as u64);
                let merge = tel.phase(Phase::Merge);
                let flat = op.finish();
                drop(merge);
                Grouping::from_flat(flat, resolved.into(), reason, threads)
            }
            OpSpec::Any { eps } => {
                let base = self.algorithm.for_any().expect("validated by algorithm()");
                let (resolved, reason) = cost::resolve_any_governed_full(
                    base,
                    points.len(),
                    D,
                    cache.has_usable_grid(version, *eps),
                    cache.has_tree(version, self.rtree_fanout),
                    governor,
                )?;
                let (threads, _) = cost::threads_for_any(resolved, self.threads, points.len());
                let cfg = self.any_config(*eps).algorithm(resolved).threads(threads);
                let flat = match resolved {
                    AnyAlgorithm::AllPairs => try_sgb_any_all_pairs(points, &cfg, governor, tel)?,
                    AnyAlgorithm::Indexed => {
                        let build = tel.phase(Phase::IndexBuild);
                        let index = cache.get_or_build_tree(version, self.rtree_fanout, || {
                            RTree::from_points(
                                self.rtree_fanout,
                                points.iter().enumerate().map(|(i, p)| (*p, i)),
                            )
                        });
                        drop(build);
                        try_sgb_any_tree(points, &cfg, &index, governor, tel)?
                    }
                    AnyAlgorithm::Grid => {
                        let build = tel.phase(Phase::IndexBuild);
                        let index = cache.get_or_build_grid(version, *eps, |side| {
                            Grid::from_points(side, points.iter().enumerate().map(|(i, p)| (*p, i)))
                        });
                        drop(build);
                        try_sgb_any_grid(points, &cfg, &index, threads, governor, tel)?
                    }
                    AnyAlgorithm::Auto => {
                        unreachable!("resolve_any_governed_full never returns Auto")
                    }
                };
                Grouping::from_flat(flat, resolved.into(), reason, threads)
            }
            OpSpec::Around {
                centers,
                max_radius,
            } => {
                let base = self
                    .algorithm
                    .for_around()
                    .expect("validated by algorithm()");
                let (resolved, reason) = cost::resolve_around_governed(
                    base,
                    centers.len(),
                    D,
                    cache.cached_center_algorithm(centers, self.rtree_fanout),
                    governor,
                )?;
                let (threads, _) = cost::threads_for_around(self.threads, points.len());
                let cfg = self
                    .around_config(centers.clone(), *max_radius)
                    .algorithm(resolved)
                    .threads(threads);
                let build = tel.phase(Phase::IndexBuild);
                let index = match resolved {
                    AroundAlgorithm::BruteForce => Arc::new(CenterIndex::Scan),
                    AroundAlgorithm::Indexed | AroundAlgorithm::Grid => {
                        cache.get_or_build_center_index(resolved, self.rtree_fanout, centers)
                    }
                    AroundAlgorithm::Auto => {
                        unreachable!("resolve_around_governed never returns Auto")
                    }
                };
                let mut op = SgbAround::with_center_index(cfg, index);
                drop(build);
                let join = tel.phase(Phase::Join);
                op.try_extend_from_slice(points, governor)?;
                drop(join);
                tel.add(
                    Counter::CandidatePairs,
                    self.around_candidates(points.len(), centers.len(), resolved),
                );
                let merge = tel.phase(Phase::Merge);
                let around = op.finish();
                drop(merge);
                Grouping::from_around(around, resolved.into(), reason, threads)
            }
        };
        cache.store_result(version, fingerprint, out.clone());
        Ok(self.finalize(out))
    }

    /// A total encoding of every knob that can influence this query's
    /// grouping *or its metadata* — the key of the whole-result cache.
    /// Floats enter by bit pattern (all finite by construction).
    fn fingerprint(&self) -> Vec<u64> {
        let mut fp = vec![
            self.metric as u64,
            self.algorithm as u64,
            self.seed,
            self.hull_threshold as u64,
            self.rtree_fanout as u64,
            self.threads as u64,
        ];
        match &self.op {
            OpSpec::All { eps, overlap } => {
                fp.extend([1, eps.to_bits(), *overlap as u64]);
            }
            OpSpec::Any { eps } => fp.extend([2, eps.to_bits()]),
            OpSpec::Around {
                centers,
                max_radius,
            } => {
                fp.extend([
                    3,
                    max_radius.is_some() as u64,
                    max_radius.unwrap_or(0.0).to_bits(),
                    centers.len() as u64,
                ]);
                fp.extend(
                    centers
                        .iter()
                        .flat_map(|p| p.coords().iter().map(|c| c.to_bits())),
                );
            }
        }
        fp
    }

    /// Turns the query into a streaming operator: push points in arrival
    /// order, then [`finish`](SgbStream::finish).
    ///
    /// A stream's final cardinality is unknown at construction, so
    /// [`Algorithm::Auto`] resolves to the scalable regime for SGB-All /
    /// SGB-Any (see [`cost::resolve_all_streaming`]); SGB-Around knows its
    /// center count up front and resolves exactly like [`run`](Self::run).
    #[must_use]
    pub fn stream(self) -> SgbStream<D> {
        let (inner, algorithm, selection) = match &self.op {
            OpSpec::All { eps, overlap } => {
                let (resolved, reason) =
                    cost::resolve_all_streaming_with_reason(self.algorithm.for_all(), D);
                let cfg = self.all_config(*eps, *overlap).algorithm(resolved);
                (
                    StreamInner::All(Box::new(SgbAll::new(cfg))),
                    resolved.into(),
                    reason,
                )
            }
            OpSpec::Any { eps } => {
                let base = self.algorithm.for_any().expect("validated by algorithm()");
                let (resolved, reason) = cost::resolve_any_streaming_with_reason(base, D);
                let cfg = self.any_config(*eps).algorithm(resolved);
                (
                    StreamInner::Any(Box::new(SgbAny::new(cfg))),
                    resolved.into(),
                    reason,
                )
            }
            OpSpec::Around {
                centers,
                max_radius,
            } => {
                let base = self
                    .algorithm
                    .for_around()
                    .expect("validated by algorithm()");
                let (resolved, reason) = cost::resolve_around(base, centers.len(), D);
                let cfg = self
                    .around_config(centers.clone(), *max_radius)
                    .algorithm(resolved);
                (
                    StreamInner::Around(Box::new(SgbAround::new(cfg))),
                    resolved.into(),
                    reason,
                )
            }
        };
        SgbStream {
            inner,
            algorithm,
            selection,
        }
    }
}

/// The per-operator engine behind a [`SgbStream`]. The engines are boxed:
/// their sizes differ by hundreds of bytes (SGB-All carries the overlap
/// machinery), and a stream is created once per query, so one allocation
/// buys a small uniform stack footprint.
#[derive(Debug)]
enum StreamInner<const D: usize> {
    All(Box<SgbAll<D>>),
    Any(Box<SgbAny<D>>),
    Around(Box<SgbAround<D>>),
}

/// The unified streaming operator: push points in arrival order, then
/// [`finish`](Self::finish) to materialise the [`Grouping`].
///
/// ```
/// use sgb_core::SgbQuery;
/// use sgb_geom::Point;
///
/// let mut stream = SgbQuery::any(3.0).stream();
/// for p in [[1.0, 1.0], [2.0, 2.0], [9.0, 9.0]] {
///     stream.push(Point::new(p));
/// }
/// assert_eq!(stream.len(), 3);
/// assert_eq!(stream.finish().sorted_sizes(), vec![2, 1]);
/// ```
#[derive(Debug)]
pub struct SgbStream<const D: usize> {
    inner: StreamInner<D>,
    algorithm: Algorithm,
    selection: String,
}

impl<const D: usize> SgbStream<D> {
    /// Processes one point, returning its record id (its zero-based
    /// arrival position).
    pub fn push(&mut self, p: Point<D>) -> RecordId {
        match &mut self.inner {
            StreamInner::All(op) => op.push(p),
            StreamInner::Any(op) => op.push(p),
            StreamInner::Around(op) => op.push(p),
        }
    }

    /// Number of points processed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            StreamInner::All(op) => op.len(),
            StreamInner::Any(op) => op.len(),
            StreamInner::Around(op) => op.len(),
        }
    }

    /// `true` before the first point arrives.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The concrete execution path this stream runs with
    /// ([`Algorithm::Auto`] resolved at construction).
    #[must_use]
    pub fn resolved_algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Why [`resolved_algorithm`](Self::resolved_algorithm) was chosen.
    #[must_use]
    pub fn selection_reason(&self) -> &str {
        &self.selection
    }

    /// Completes the operator and materialises the answer groups.
    #[must_use]
    pub fn finish(self) -> Grouping {
        // Streams process points in arrival order one at a time; every
        // streaming path is sequential by construction.
        match self.inner {
            StreamInner::All(op) => {
                Grouping::from_flat(op.finish(), self.algorithm, self.selection, 1)
            }
            StreamInner::Any(op) => {
                Grouping::from_flat(op.finish(), self.algorithm, self.selection, 1)
            }
            StreamInner::Around(op) => {
                Grouping::from_around(op.finish(), self.algorithm, self.selection, 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sgb_all, sgb_any};

    fn pts(raw: &[[f64; 2]]) -> Vec<Point<2>> {
        raw.iter().map(|&c| Point::new(c)).collect()
    }

    /// Figure 2 of the paper.
    fn fig2() -> Vec<Point<2>> {
        pts(&[[1.0, 7.0], [2.0, 6.0], [6.0, 2.0], [7.0, 1.0], [4.0, 4.0]])
    }

    #[test]
    fn run_matches_legacy_entry_points() {
        let points = fig2();
        for algorithm in [
            Algorithm::Auto,
            Algorithm::AllPairs,
            Algorithm::BoundsChecking,
            Algorithm::Indexed,
            Algorithm::Grid,
        ] {
            let new = SgbQuery::all(3.0)
                .metric(Metric::LInf)
                .algorithm(algorithm)
                .run(&points);
            let old = sgb_all(
                &points,
                &SgbAllConfig::new(3.0)
                    .metric(Metric::LInf)
                    .algorithm(algorithm.for_all()),
            );
            assert_eq!(new.groups(), old.groups.as_slice(), "{algorithm}");
            assert_eq!(new.eliminated(), old.eliminated.as_slice(), "{algorithm}");
        }
        let new = SgbQuery::any(3.0).metric(Metric::LInf).run(&points);
        let old = sgb_any(&points, &SgbAnyConfig::new(3.0).metric(Metric::LInf));
        assert_eq!(new.groups(), old.groups.as_slice());
    }

    #[test]
    fn around_outliers_are_explicit_and_output_groups_append_them() {
        let centers = pts(&[[0.0, 0.0], [10.0, 10.0]]);
        let points = pts(&[[1.0, 1.0], [9.0, 9.5], [5.0, 5.0]]);
        let out = SgbQuery::around(centers).max_radius(3.0).run(&points);
        assert_eq!(out.groups(), &[vec![0], vec![1]]);
        assert_eq!(out.outliers(), &[2]);
        assert_eq!(out.num_groups(), 2);
        let shaped: Vec<&[RecordId]> = out.output_groups().collect();
        assert_eq!(shaped, vec![&[0][..], &[1][..], &[2][..]]);
        out.check_partition(3);
    }

    #[test]
    fn resolution_is_recorded() {
        let out = SgbQuery::any(0.5).run(&pts(&[[0.0, 0.0], [1.0, 1.0]]));
        assert_eq!(out.resolved_algorithm(), Algorithm::AllPairs);
        assert!(out.selection_reason().contains("n = 2"));
        let explicit = SgbQuery::any(0.5)
            .algorithm(Algorithm::Grid)
            .run(&pts(&[[0.0, 0.0]]));
        assert_eq!(explicit.resolved_algorithm(), Algorithm::Grid);
        assert_eq!(explicit.selection_reason(), "configured explicitly");
    }

    #[test]
    fn equality_ignores_execution_metadata() {
        let points = fig2();
        let a = SgbQuery::all(3.0)
            .metric(Metric::LInf)
            .algorithm(Algorithm::AllPairs)
            .run(&points);
        let b = SgbQuery::all(3.0)
            .metric(Metric::LInf)
            .algorithm(Algorithm::Indexed)
            .run(&points);
        assert_ne!(a.resolved_algorithm(), b.resolved_algorithm());
        assert_eq!(a, b);
    }

    #[test]
    fn stream_matches_run_for_order_independent_ops() {
        let points = fig2();
        let mut stream = SgbQuery::any(3.0).metric(Metric::LInf).stream();
        for p in &points {
            stream.push(*p);
        }
        assert_eq!(
            stream.finish(),
            SgbQuery::any(3.0).metric(Metric::LInf).run(&points)
        );

        let centers = pts(&[[1.0, 7.0], [7.0, 1.0]]);
        let q = SgbQuery::around(centers).max_radius(2.5);
        let mut stream = q.clone().stream();
        assert!(stream.is_empty());
        for p in &points {
            stream.push(*p);
        }
        assert_eq!(stream.len(), points.len());
        assert_eq!(stream.finish(), q.run(&points));
    }

    #[test]
    fn streaming_auto_resolves_to_the_scalable_regime() {
        let s = SgbQuery::<2>::all(1.0).stream();
        assert_eq!(s.resolved_algorithm(), Algorithm::Indexed);
        assert!(s.selection_reason().contains("streaming"));
        let s = SgbQuery::<2>::any(1.0).stream();
        assert_eq!(s.resolved_algorithm(), Algorithm::Grid);
    }

    #[test]
    #[should_panic(expected = "not an execution path of SGB-Any")]
    fn bounds_checking_rejected_for_any() {
        let _ = SgbQuery::<2>::any(1.0).algorithm(Algorithm::BoundsChecking);
    }

    #[test]
    #[should_panic(expected = "not an execution path of SGB-Around")]
    fn bounds_checking_rejected_for_around() {
        let _ = SgbQuery::around(pts(&[[0.0, 0.0]])).algorithm(Algorithm::BoundsChecking);
    }

    #[test]
    #[should_panic(expected = "ON-OVERLAP applies only to SGB-All")]
    fn overlap_rejected_for_any() {
        let _ = SgbQuery::<2>::any(1.0).overlap(OverlapAction::Eliminate);
    }

    #[test]
    #[should_panic(expected = "radius bound applies only to SGB-Around")]
    fn radius_rejected_for_all() {
        let _ = SgbQuery::<2>::all(1.0).max_radius(1.0);
    }

    #[test]
    #[should_panic(expected = "seed applies only to SGB-All")]
    fn seed_rejected_for_around() {
        let _ = SgbQuery::around(pts(&[[0.0, 0.0]])).seed(7);
    }

    #[test]
    #[should_panic(expected = "at least one center")]
    fn around_rejects_empty_centers() {
        let _ = SgbQuery::<2>::around(Vec::new());
    }

    #[test]
    fn threads_knob_is_accepted_on_every_operator() {
        let points = fig2();
        // SGB-All accepts the knob but always runs sequentially: the
        // ON-OVERLAP arbitration is arrival-order sensitive.
        let out = SgbQuery::all(3.0).threads(7).run(&points);
        assert_eq!(out.threads(), 1);
        assert_eq!(out, SgbQuery::all(3.0).run(&points));
        // SGB-Any: the knob is honored only on the grid path.
        let out = SgbQuery::any(3.0)
            .algorithm(Algorithm::Grid)
            .threads(2)
            .run(&points);
        assert_eq!(out.threads(), 2);
        let out = SgbQuery::any(3.0)
            .algorithm(Algorithm::AllPairs)
            .threads(2)
            .run(&points);
        assert_eq!(out.threads(), 1);
        // SGB-Around parallelises on every path.
        let out = SgbQuery::around(pts(&[[0.0, 0.0]])).threads(3).run(&points);
        assert_eq!(out.threads(), 3);
        // Auto stays sequential below the cost-model threshold.
        let out = SgbQuery::any(3.0).run(&points);
        assert_eq!(out.threads(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn run_rejects_non_finite_points_for_all() {
        let _ = SgbQuery::all(1.0).run(&[Point::new([f64::NAN, 0.0])]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn run_rejects_non_finite_points_for_any() {
        let _ = SgbQuery::any(1.0).run(&[Point::new([0.0, f64::INFINITY])]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn run_rejects_non_finite_points_for_around() {
        let _ = SgbQuery::around(pts(&[[0.0, 0.0]])).run(&[Point::new([f64::NEG_INFINITY, 0.0])]);
    }

    #[test]
    fn telemetry_profiles_every_operator_without_changing_results() {
        let points = fig2();
        // SGB-All: validate + join + merge timed, candidates counted.
        let tel = Telemetry::new();
        let out = SgbQuery::all(3.0).telemetry(tel.clone()).run(&points);
        assert_eq!(out, SgbQuery::all(3.0).run(&points));
        let p = out.profile().unwrap();
        assert!(p.phase_nanos(Phase::Validate) > 0);
        assert!(p.phase_nanos(Phase::Join) > 0);
        assert_eq!(p.counter(Counter::Groups), out.num_groups() as u64);
        assert!(p.counter(Counter::CandidatePairs) > 0);

        // SGB-Any, every concrete path.
        for algorithm in [Algorithm::AllPairs, Algorithm::Indexed, Algorithm::Grid] {
            let q = SgbQuery::any(3.0)
                .algorithm(algorithm)
                .telemetry(Telemetry::new());
            let out = q.run(&points);
            assert_eq!(out, SgbQuery::any(3.0).run(&points), "{algorithm}");
            let p = out.profile().unwrap();
            assert_eq!(p.counter(Counter::Groups), out.num_groups() as u64);
            assert!(p.phase_nanos(Phase::Join) > 0, "{algorithm}");
        }

        // SGB-Around: eager index build + assign join, outliers counted.
        let q = SgbQuery::around(pts(&[[1.0, 7.0], [7.0, 1.0]]))
            .max_radius(2.0)
            .telemetry(Telemetry::new());
        let out = q.run(&points);
        let p = out.profile().unwrap();
        assert_eq!(p.counter(Counter::Outliers), out.outliers().len() as u64);
        assert!(p.counter(Counter::Outliers) > 0);
        assert!(p.phase_nanos(Phase::Join) > 0);

        // A query without a handle reports no profile.
        assert_eq!(SgbQuery::any(3.0).run(&points).profile(), None);
    }

    #[test]
    fn telemetry_counts_result_cache_hits_and_misses() {
        let points = fig2();
        let cache = SgbCache::new();
        let tel = Telemetry::new();
        let q = SgbQuery::any(3.0).telemetry(tel.clone());
        let cold = q.run_cached(&points, &cache, 1);
        let warm = q.run_cached(&points, &cache, 1);
        assert_eq!(cold, warm);
        let p = tel.profile().unwrap();
        assert_eq!(p.counter(Counter::CacheMisses), 1);
        assert_eq!(p.counter(Counter::CacheHits), 1);
        // Both executions reported group counts into the shared profile.
        assert_eq!(p.counter(Counter::Groups), 2 * cold.num_groups() as u64);
        // The cache-probe phase was timed; the warm hit recorded no
        // further join work beyond the cold run's.
        assert!(p.phase_nanos(Phase::CacheProbe) > 0);

        // Telemetry never leaks into cache identity: an observed query and
        // its silent twin share one cache entry (the hit above proves the
        // same; this pins the fingerprint directly).
        let silent = SgbQuery::<2>::any(3.0);
        assert_eq!(silent.fingerprint(), q.fingerprint());

        // Governed twin: hit/miss counters behave identically.
        let tel = Telemetry::new();
        let free = QueryGovernor::unrestricted();
        let q = SgbQuery::all(3.0).telemetry(tel.clone());
        q.try_run_cached(&points, &cache, 1, &free).unwrap();
        q.try_run_cached(&points, &cache, 1, &free).unwrap();
        let p = tel.profile().unwrap();
        assert_eq!(p.counter(Counter::CacheMisses), 1);
        assert_eq!(p.counter(Counter::CacheHits), 1);
        assert!(p.counter(Counter::GovernorPolls) > 0);
    }

    #[test]
    fn introspection_reports_the_configuration() {
        let q = SgbQuery::around(pts(&[[1.0, 2.0]]))
            .metric(Metric::L1)
            .max_radius(0.5);
        assert_eq!(q.operator(), "SGB-Around");
        assert_eq!(q.configured_metric(), Metric::L1);
        assert_eq!(q.configured_algorithm(), Algorithm::Auto);
        assert_eq!(q.eps(), None);
        assert_eq!(q.radius_bound(), Some(0.5));
        assert_eq!(q.centers().unwrap().len(), 1);

        let q = SgbQuery::<2>::all(0.25);
        assert_eq!(q.operator(), "SGB-All");
        assert_eq!(q.eps(), Some(0.25));
        assert_eq!(q.centers(), None);
    }
}
