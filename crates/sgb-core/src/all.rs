//! The SGB-All operator (Section 6): distance-to-all (clique) grouping.
//!
//! A point belongs to a group only when it is within ε of *every* member
//! (each group is a clique of the ε-threshold graph). Points qualifying for
//! several groups are arbitrated by the `ON-OVERLAP` clause. The framework
//! (Procedure 1) processes points in arrival order:
//!
//! 1. `FindCloseGroups` splits the existing groups into *candidates* (all
//!    members within ε of the new point) and *overlap groups* (some but not
//!    all members within ε). Three interchangeable strategies implement it:
//!    [`AllAlgorithm::AllPairs`] (Procedure 2, scans every point),
//!    [`AllAlgorithm::BoundsChecking`] (Procedure 4, constant-time ε-All
//!    rectangle tests per group) and [`AllAlgorithm::Indexed`] (Procedure 5,
//!    metric-aware range query on an on-the-fly R-tree of group
//!    rectangles). Under the conservative metrics (`L1`/`L2`, see
//!    [`sgb_geom::metric::RectFilter`]) the rectangle filter admits false
//!    positives, refined by the convex hull test (Procedure 6).
//! 2. `ProcessGroupingALL` (Procedure 3) places the point: into a new group
//!    (no candidates), the unique candidate, or per the `ON-OVERLAP` clause.
//! 3. `ProcessOverlap` realises `ELIMINATE` / `FORM-NEW-GROUP` on the
//!    overlap groups' affected members; `FORM-NEW-GROUP` re-groups the
//!    deferred set `S'` recursively at the end.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sgb_geom::{ConvexHull, EpsAllRegion, Point, Rect, RectFilter};
use sgb_spatial::{Grid, RTree};

use crate::{cost, AllAlgorithm, Grouping, OverlapAction, RecordId, SgbAllConfig};

type GroupId = usize;

/// Narrows a `D`-dimensional point to 2-D; only called when `D == 2`, where
/// it is a plain copy.
#[inline]
fn to2<const D: usize>(p: &Point<D>) -> Point<2> {
    debug_assert_eq!(D, 2);
    Point::new([p.coord(0), p.coord(1)])
}

/// State of one (possibly emptied) group.
#[derive(Clone, Debug)]
struct GroupState<const D: usize> {
    /// Members in join order, with their points (so overlap processing and
    /// hull rebuilds never need an external lookup).
    members: Vec<(RecordId, Point<D>)>,
    /// ε-All region + member MBR (Definition 5), maintained incrementally.
    region: EpsAllRegion<D>,
    /// Cached convex hull of the members — the false-positive refinement of
    /// Section 6.4. Maintained only for conservative-filter metrics
    /// (`L1`/`L2`) in 2-D and only once the group reaches the configured
    /// hull threshold; otherwise (`None`) the exact check falls back to a
    /// member scan.
    hull: Option<ConvexHull>,
    /// Rectangle currently registered for this group in `Groups_IX`.
    indexed_rect: Option<Rect<D>>,
}

impl<const D: usize> GroupState<D> {
    fn is_dead(&self) -> bool {
        self.members.is_empty()
    }
}

/// Outcome of testing one group against the incoming point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GroupTest {
    /// Not a candidate; no member within ε (or overlap tracking is off).
    Far,
    /// Every member is within ε — `CandidateGroups` material.
    Candidate,
    /// Some but not all members within ε — `OverlapGroups` material.
    Overlap,
}

/// Refinement after the allowed-rectangle filter passed, driven by the
/// metric's [`RectFilter`] policy rather than per-metric special cases:
/// with an exact rectangle filter (`L∞`) the hit *is* the answer; with a
/// conservative one (`L1`/`L2` — any metric whose ε-ball is a proper subset
/// of the ε-square) the convex-hull test (Procedure 6) or a member scan
/// settles candidacy, and a false positive may still be an overlap group.
#[inline(always)]
fn refine_candidate<const D: usize>(
    g: &GroupState<D>,
    p: &Point<D>,
    cfg: &SgbAllConfig,
    track_overlaps: bool,
) -> GroupTest {
    if g.is_dead() {
        return GroupTest::Far;
    }
    match cfg.metric.rect_filter() {
        RectFilter::Exact => GroupTest::Candidate,
        RectFilter::Conservative => {
            let exact = match &g.hull {
                // Procedure 6: inside the hull, or within ε of the
                // farthest hull vertex — valid for every metric with
                // convex balls (see `ConvexHull::admits`).
                Some(h) => h.admits(&to2(p), cfg.eps, cfg.metric),
                // No hull cache (small group or 3-D): verify against
                // every member.
                None => {
                    let (eps, metric) = (cfg.eps, cfg.metric);
                    g.members.iter().all(|(_, q)| metric.within(p, q, eps))
                }
            };
            if exact {
                GroupTest::Candidate
            } else if track_overlaps {
                // The rect filter passed, so p is inside the reach region:
                // only the member scan is left.
                scan_overlap(g, p, cfg)
            } else {
                GroupTest::Far
            }
        }
    }
}

/// Final overlap check: is any member within ε of `p`?
#[inline(always)]
fn scan_overlap<const D: usize>(g: &GroupState<D>, p: &Point<D>, cfg: &SgbAllConfig) -> GroupTest {
    let (eps, metric) = (cfg.eps, cfg.metric);
    if g.members.iter().any(|(_, q)| metric.within(p, q, eps)) {
        GroupTest::Overlap
    } else {
        GroupTest::Far
    }
}

/// One processing pass of the SGB-All framework over a stream of points.
/// `FORM-NEW-GROUP` runs several passes (the recursion over `S'`), each on a
/// fresh `Engine`. `Clone` lets the incremental engine materialise a
/// snapshot (clone + [`SgbAll::finish`]) without disturbing the live state.
#[derive(Clone, Debug)]
struct Engine<const D: usize> {
    cfg: SgbAllConfig,
    /// The concrete search strategy ([`AllAlgorithm::Auto`] resolved at
    /// construction — streams have unknown cardinality, so `Auto` assumes
    /// the scalable regime; the one-shot [`sgb_all`] resolves from the
    /// true `n` before building the engine).
    algorithm: AllAlgorithm,
    groups: Vec<GroupState<D>>,
    /// Structure-of-arrays mirror of each group's allowed region, so the
    /// Bounds-Checking scan streams through a dense rectangle directory
    /// (the paper keeps the rectangles in the aggregate hash-table
    /// directory for the same reason). Dead groups hold an empty rect.
    allowed_cache: Vec<Rect<D>>,
    /// Mirror of each group's reach region (MBR dilated by ε); only read
    /// when overlap groups are tracked.
    reach_cache: Vec<Rect<D>>,
    live_groups: usize,
    /// `Groups_IX` of Procedure 5 (only for [`AllAlgorithm::Indexed`]).
    index: Option<RTree<D, GroupId>>,
    /// ε-grid over the live members (only for [`AllAlgorithm::Grid`]):
    /// cell side = ε, payload = record id. Members removed by overlap
    /// processing stay in the grid as tombstones — [`Engine::membership`]
    /// is the source of truth, so stale entries simply resolve to no
    /// group (removed members are either eliminated or deferred to a
    /// fresh engine, never re-inserted here).
    grid: Option<Grid<D, RecordId>>,
    /// Live-member record → current group, maintained only alongside
    /// `grid`.
    membership: HashMap<RecordId, GroupId>,
    rng: SmallRng,
    /// `S'`: points deferred by FORM-NEW-GROUP.
    deferred: Vec<(RecordId, Point<D>)>,
    /// Records dropped by ELIMINATE, in drop order.
    eliminated: Vec<RecordId>,
    /// Scratch buffers reused across `process` calls.
    scratch_candidates: Vec<GroupId>,
    scratch_overlaps: Vec<GroupId>,
    scratch_window: Vec<GroupId>,
    /// Traversal scratch for the R-tree range probe, so the indexed hot
    /// loop allocates nothing per point.
    scratch_stack: Vec<usize>,
    /// Candidate/overlap groups surfaced by `FindCloseGroups` across every
    /// processed point — the SGB-All analogue of a join's candidate-pair
    /// count, surfaced through the query telemetry.
    candidates_tested: u64,
}

impl<const D: usize> Engine<D> {
    fn new(cfg: SgbAllConfig, rng: SmallRng) -> Self {
        let algorithm = cost::resolve_all_streaming(cfg.algorithm, D);
        let index = match algorithm {
            AllAlgorithm::Indexed => Some(RTree::with_max_entries(cfg.rtree_fanout)),
            _ => None,
        };
        let grid = match algorithm {
            AllAlgorithm::Grid => Some(Grid::new(Grid::<D, RecordId>::side_for_eps(cfg.eps))),
            _ => None,
        };
        Self {
            cfg,
            algorithm,
            groups: Vec::new(),
            allowed_cache: Vec::new(),
            reach_cache: Vec::new(),
            live_groups: 0,
            index,
            grid,
            membership: HashMap::new(),
            rng,
            deferred: Vec::new(),
            eliminated: Vec::new(),
            scratch_candidates: Vec::new(),
            scratch_overlaps: Vec::new(),
            scratch_window: Vec::new(),
            scratch_stack: Vec::new(),
            candidates_tested: 0,
        }
    }

    /// Whether the per-group convex hull cache applies: 2-D data under a
    /// metric whose rectangle filter is conservative (`L1`/`L2`).
    #[inline]
    fn hull_maintained(&self) -> bool {
        self.cfg.metric.needs_refinement() && D == 2
    }

    /// Procedure 1 body for one point.
    fn process(&mut self, ext: RecordId, p: Point<D>) {
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        let mut overlaps = std::mem::take(&mut self.scratch_overlaps);
        candidates.clear();
        overlaps.clear();

        self.find_close_groups(&p, &mut candidates, &mut overlaps);
        self.candidates_tested += (candidates.len() + overlaps.len()) as u64;
        self.process_grouping(ext, p, &candidates);
        if self.cfg.overlap != OverlapAction::JoinAny && !overlaps.is_empty() {
            self.process_overlap(&p, &overlaps);
        }

        self.scratch_candidates = candidates;
        self.scratch_overlaps = overlaps;
    }

    /// `FindCloseGroups`: fills `candidates` (point may join) and
    /// `overlaps` (some but not all members within ε), both ordered by
    /// group id so every algorithm yields identical arbitration inputs.
    fn find_close_groups(
        &mut self,
        p: &Point<D>,
        candidates: &mut Vec<GroupId>,
        overlaps: &mut Vec<GroupId>,
    ) {
        let track_overlaps = self.cfg.overlap != OverlapAction::JoinAny;
        match self.algorithm {
            AllAlgorithm::AllPairs => {
                // Procedure 2: inspect every member of every group.
                let (eps, metric) = (self.cfg.eps, self.cfg.metric);
                for (gid, g) in self.groups.iter().enumerate() {
                    if g.is_dead() {
                        continue;
                    }
                    let mut candidate = true;
                    let mut overlap = false;
                    for (_, q) in &g.members {
                        if metric.within(p, q, eps) {
                            overlap = true;
                        } else {
                            candidate = false;
                            // Procedure 2, lines 11–13: only JOIN-ANY bails
                            // on the first miss; the other clauses keep
                            // scanning every member (this is the baseline
                            // the paper measures — no extra short-circuits).
                            if !track_overlaps {
                                break;
                            }
                        }
                    }
                    if candidate {
                        candidates.push(gid);
                    } else if track_overlaps && overlap {
                        overlaps.push(gid);
                    }
                }
            }
            AllAlgorithm::BoundsChecking => {
                // Procedure 4: constant-time rectangle tests per group,
                // streaming through the dense rectangle directory (the
                // rect caches), touching group state only on filter hits.
                for gid in 0..self.allowed_cache.len() {
                    let test = if self.allowed_cache[gid].contains_point(p) {
                        refine_candidate(&self.groups[gid], p, &self.cfg, track_overlaps)
                    } else if track_overlaps && self.reach_cache[gid].contains_point(p) {
                        scan_overlap(&self.groups[gid], p, &self.cfg)
                    } else {
                        GroupTest::Far
                    };
                    match test {
                        GroupTest::Candidate => candidates.push(gid),
                        GroupTest::Overlap => overlaps.push(gid),
                        GroupTest::Far => {}
                    }
                }
            }
            AllAlgorithm::Indexed => {
                // Procedure 5: metric-aware range query on Groups_IX
                // retrieves every group whose MBR comes within ε of `p`
                // under the configured norm — a superset of all candidates
                // and overlap groups (any member within ε of `p` bounds the
                // MBR's mindist by ε), pruned with the metric's own ball
                // instead of its enclosing rectangle. The query's relaxed
                // threshold guarantees no predicate-accepted member is
                // missed to floating-point rounding.
                let mut gset = std::mem::take(&mut self.scratch_window);
                gset.clear();
                if let Some(ix) = &self.index {
                    ix.for_each_within(
                        p,
                        self.cfg.eps,
                        self.cfg.metric,
                        &mut self.scratch_stack,
                        |_, &gid| gset.push(gid),
                    );
                }
                gset.sort_unstable();
                for &gid in &gset {
                    let g = &self.groups[gid];
                    let test = if g.region.point_in_region(p) {
                        refine_candidate(g, p, &self.cfg, track_overlaps)
                    } else if track_overlaps && g.region.may_overlap(p) {
                        scan_overlap(g, p, &self.cfg)
                    } else {
                        GroupTest::Far
                    };
                    match test {
                        GroupTest::Candidate => candidates.push(gid),
                        GroupTest::Overlap => overlaps.push(gid),
                        GroupTest::Far => {}
                    }
                }
                self.scratch_window = gset;
            }
            AllAlgorithm::Grid => {
                // ε-grid probe over the live members: the canonical-verified
                // hits are exactly the points within ε of `p`, and the set
                // of their groups is exactly CandidateGroups ∪
                // OverlapGroups (a candidate's members are all within ε, an
                // overlap group has some member within ε — both therefore
                // surface at least one hit). Classification then mirrors
                // the indexed arm: a group whose allowed region contains
                // `p` goes through the exact refinement; any other surfaced
                // group already proved a within-ε member, so it is an
                // overlap group outright.
                let mut gset = std::mem::take(&mut self.scratch_window);
                gset.clear();
                if let Some(grid) = &self.grid {
                    let (eps, metric) = (self.cfg.eps, self.cfg.metric);
                    let membership = &self.membership;
                    grid.for_each_within(p, eps, metric, |q, ext| {
                        if metric.within(p, q, eps) {
                            if let Some(&gid) = membership.get(ext) {
                                gset.push(gid);
                            }
                        }
                    });
                }
                gset.sort_unstable();
                gset.dedup();
                for &gid in &gset {
                    let g = &self.groups[gid];
                    debug_assert!(!g.is_dead(), "membership maps only live members");
                    let test = if g.region.point_in_region(p) {
                        refine_candidate(g, p, &self.cfg, track_overlaps)
                    } else if track_overlaps {
                        GroupTest::Overlap
                    } else {
                        GroupTest::Far
                    };
                    match test {
                        GroupTest::Candidate => candidates.push(gid),
                        GroupTest::Overlap => overlaps.push(gid),
                        GroupTest::Far => {}
                    }
                }
                self.scratch_window = gset;
            }
            AllAlgorithm::Auto => unreachable!("Engine::new resolves Auto"),
        }
    }

    /// `ProcessGroupingALL` (Procedure 3).
    fn process_grouping(&mut self, ext: RecordId, p: Point<D>, candidates: &[GroupId]) {
        match candidates {
            [] => self.create_group(ext, p),
            [gid] => self.insert_member(*gid, ext, p),
            many => match self.cfg.overlap {
                OverlapAction::JoinAny => {
                    let pick = many[self.rng.gen_range(0..many.len())];
                    self.insert_member(pick, ext, p);
                }
                OverlapAction::Eliminate => self.eliminated.push(ext),
                OverlapAction::FormNewGroup => self.deferred.push((ext, p)),
            },
        }
    }

    /// `ProcessOverlap` (Section 6.2.2): members of overlap groups that
    /// satisfy the predicate with `p` are dropped (ELIMINATE) or deferred
    /// to `S'` (FORM-NEW-GROUP).
    fn process_overlap(&mut self, p: &Point<D>, overlaps: &[GroupId]) {
        let (eps, metric) = (self.cfg.eps, self.cfg.metric);
        for &gid in overlaps {
            let g = &mut self.groups[gid];
            debug_assert!(!g.is_dead());
            let mut removed = Vec::new();
            g.members.retain(|(id, q)| {
                if metric.within(p, q, eps) {
                    removed.push((*id, *q));
                    false
                } else {
                    true
                }
            });
            debug_assert!(
                !removed.is_empty(),
                "overlap group without overlapped members"
            );
            // Removed members leave the live-membership map (their grid
            // entries become inert tombstones); they are either dropped
            // for good or re-grouped by a fresh engine with its own grid.
            if self.grid.is_some() {
                for (id, _) in &removed {
                    self.membership.remove(id);
                }
            }
            match self.cfg.overlap {
                OverlapAction::Eliminate => {
                    self.eliminated.extend(removed.iter().map(|(id, _)| *id));
                }
                OverlapAction::FormNewGroup => self.deferred.extend(removed),
                OverlapAction::JoinAny => unreachable!("JOIN-ANY never processes overlaps"),
            }
            self.rebuild_group(gid);
        }
    }

    fn create_group(&mut self, ext: RecordId, p: Point<D>) {
        let gid = self.groups.len();
        let mut state = GroupState {
            members: vec![(ext, p)],
            region: EpsAllRegion::with_first(self.cfg.eps, p),
            hull: None,
            indexed_rect: None,
        };
        if let Some(ix) = &mut self.index {
            let rect = state.region.mbr();
            ix.insert(rect, gid);
            state.indexed_rect = Some(rect);
        }
        if let Some(grid) = &mut self.grid {
            grid.insert(p, ext);
            self.membership.insert(ext, gid);
        }
        self.allowed_cache.push(state.region.allowed());
        self.reach_cache.push(state.region.reach());
        self.groups.push(state);
        self.live_groups += 1;
    }

    fn insert_member(&mut self, gid: GroupId, ext: RecordId, p: Point<D>) {
        if let Some(grid) = &mut self.grid {
            grid.insert(p, ext);
            self.membership.insert(ext, gid);
        }
        let maintain_hull = self.hull_maintained();
        let g = &mut self.groups[gid];
        debug_assert!(!g.is_dead(), "cannot join a dead group");
        g.members.push((ext, p));
        g.region.insert(&p);
        if let Some(h) = &g.hull {
            // Incremental maintenance: hull(S ∪ {p}) = hull(vertices ∪ {p}).
            let p2 = to2(&p);
            if !h.contains(&p2) {
                let mut vs = h.vertices().to_vec();
                vs.push(p2);
                g.hull = Some(ConvexHull::build(&vs));
            }
        } else if maintain_hull && g.members.len() >= self.cfg.hull_threshold {
            let pts2: Vec<Point<2>> = g.members.iter().map(|(_, q)| to2(q)).collect();
            g.hull = Some(ConvexHull::build(&pts2));
        }
        self.allowed_cache[gid] = g.region.allowed();
        self.reach_cache[gid] = g.region.reach();
        self.sync_index(gid);
    }

    /// Recomputes a group's region/hull after member removal and updates
    /// the index (groups shrink under ELIMINATE / FORM-NEW-GROUP).
    fn rebuild_group(&mut self, gid: GroupId) {
        let maintain_hull = self.hull_maintained();
        let g = &mut self.groups[gid];
        let points: Vec<Point<D>> = g.members.iter().map(|(_, q)| *q).collect();
        g.region.rebuild(points.iter());
        if g.is_dead() {
            g.hull = None;
            self.live_groups -= 1;
        } else if maintain_hull && g.members.len() >= self.cfg.hull_threshold {
            let pts2: Vec<Point<2>> = points.iter().map(to2).collect();
            g.hull = Some(ConvexHull::build(&pts2));
        } else {
            g.hull = None;
        }
        self.allowed_cache[gid] = if g.is_dead() {
            Rect::empty()
        } else {
            g.region.allowed()
        };
        self.reach_cache[gid] = if g.is_dead() {
            Rect::empty()
        } else {
            g.region.reach()
        };
        self.sync_index(gid);
    }

    /// Keeps the `Groups_IX` entry in sync with the group's MBR.
    fn sync_index(&mut self, gid: GroupId) {
        let Some(ix) = &mut self.index else { return };
        let g = &mut self.groups[gid];
        let current = (!g.is_dead()).then(|| g.region.mbr());
        match (g.indexed_rect, current) {
            (Some(old), Some(new)) if old != new => {
                let moved = ix.update(&old, new, gid);
                debug_assert!(moved, "group {gid} missing from index");
                g.indexed_rect = Some(new);
            }
            (Some(old), None) => {
                let removed = ix.remove(&old, &gid);
                debug_assert!(removed, "dead group {gid} missing from index");
                g.indexed_rect = None;
            }
            (None, Some(new)) => {
                ix.insert(new, gid);
                g.indexed_rect = Some(new);
            }
            _ => {}
        }
    }

    /// Removes a record that forms a live **singleton** group, marking the
    /// group dead in place. Returns `false` when no live singleton group
    /// holds `ext`.
    ///
    /// This is only sound for records that are ε-isolated from every other
    /// input point: such a record created its own group on arrival, never
    /// appeared in any other point's candidate or overlap sets (so it
    /// consumed no arbitration randomness and triggered no overlap
    /// processing), and its group's regions never admitted another point.
    /// Marking the group dead therefore leaves the engine in exactly the
    /// state a from-scratch run over the remaining points (in the same
    /// relative order) produces, up to dead-group padding that every scan
    /// skips and that group creation order ignores.
    fn remove_isolated_singleton(&mut self, ext: RecordId) -> bool {
        let Some(gid) = self
            .groups
            .iter()
            .position(|g| !g.is_dead() && g.members.len() == 1 && g.members[0].0 == ext)
        else {
            return false;
        };
        self.groups[gid].members.clear();
        if self.grid.is_some() {
            // The grid entry stays behind as an inert tombstone, exactly
            // like overlap-processing removals; membership is the source
            // of truth.
            self.membership.remove(&ext);
        }
        self.rebuild_group(gid);
        true
    }

    /// Drains the live groups (record ids in join order, groups in creation
    /// order) into `out`.
    fn drain_groups_into(&mut self, out: &mut Vec<Vec<RecordId>>) {
        for g in &mut self.groups {
            if !g.is_dead() {
                out.push(g.members.iter().map(|(id, _)| *id).collect());
            }
        }
    }
}

/// Streaming SGB-All operator.
///
/// Push points in arrival order, then call [`finish`](Self::finish).
///
/// ```
/// use sgb_core::{OverlapAction, SgbAll, SgbAllConfig};
/// use sgb_geom::{Metric, Point};
///
/// let cfg = SgbAllConfig::new(3.0)
///     .metric(Metric::LInf)
///     .overlap(OverlapAction::Eliminate);
/// let mut op = SgbAll::new(cfg);
/// for p in [[1.0, 7.0], [2.0, 6.0], [6.0, 2.0], [7.0, 1.0], [4.0, 4.0]] {
///     op.push(Point::new(p));
/// }
/// let out = op.finish();
/// assert_eq!(out.sorted_sizes(), vec![2, 2]); // the overlapping point is dropped
/// assert_eq!(out.eliminated, vec![4]);
/// ```
#[derive(Clone, Debug)]
pub struct SgbAll<const D: usize> {
    engine: Engine<D>,
    pushed: usize,
}

impl<const D: usize> SgbAll<D> {
    /// Creates the operator.
    pub fn new(cfg: SgbAllConfig) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        Self {
            engine: Engine::new(cfg, rng),
            pushed: 0,
        }
    }

    /// The configuration this operator runs with.
    pub fn config(&self) -> &SgbAllConfig {
        &self.engine.cfg
    }

    /// The concrete search strategy this operator runs with
    /// ([`AllAlgorithm::Auto`] resolved at construction).
    pub fn resolved_algorithm(&self) -> AllAlgorithm {
        self.engine.algorithm
    }

    /// Number of points processed so far.
    pub fn len(&self) -> usize {
        self.pushed
    }

    /// `true` before the first point arrives.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Number of live groups formed so far (before the FORM-NEW-GROUP
    /// recursion re-groups the deferred set).
    pub fn num_groups(&self) -> usize {
        self.engine.live_groups
    }

    /// Candidate/overlap groups inspected so far by `FindCloseGroups` —
    /// the main-pass candidate count surfaced through query telemetry
    /// (FORM-NEW-GROUP sub-passes are not included; read before
    /// [`SgbAll::finish`]).
    pub(crate) fn candidates_tested(&self) -> u64 {
        self.engine.candidates_tested
    }

    /// Processes one point (Procedure 1 body), returning its record id.
    pub fn push(&mut self, p: Point<D>) -> RecordId {
        assert!(p.is_finite(), "points must have finite coordinates");
        let id = self.pushed;
        self.pushed += 1;
        self.engine.process(id, p);
        id
    }

    /// Removes a previously pushed record that is ε-isolated from every
    /// other input point (the incremental engine's delete fast path — see
    /// `Engine::remove_isolated_singleton` for why isolation makes the
    /// in-place removal exact). Returns `false` when `ext` is not held by a
    /// live singleton group; callers must then fall back to a rebuild.
    pub(crate) fn remove_isolated_singleton(&mut self, ext: RecordId) -> bool {
        self.engine.remove_isolated_singleton(ext)
    }

    /// Completes the operator: runs the FORM-NEW-GROUP recursion over `S'`
    /// (Section 6.2.1) and materialises the answer groups.
    pub fn finish(mut self) -> Grouping {
        let mut groups = Vec::new();
        self.engine.drain_groups_into(&mut groups);
        let mut eliminated = std::mem::take(&mut self.engine.eliminated);
        let mut pending = std::mem::take(&mut self.engine.deferred);
        let cfg = self.engine.cfg.clone();
        let mut rng = self.engine.rng.clone();
        drop(self.engine);

        // FORM-NEW-GROUP: regroup S' with a fresh pass until it drains.
        // Each pass keeps at least one point (the last point processed in a
        // pass either joins/creates a group that survives, or its candidate
        // groups' members survive), so this terminates.
        while !pending.is_empty() {
            let mut sub = Engine::new(cfg.clone(), rng.clone());
            let before = pending.len();
            for (ext, p) in pending.drain(..) {
                sub.process(ext, p);
            }
            sub.drain_groups_into(&mut groups);
            eliminated.append(&mut sub.eliminated);
            pending = std::mem::take(&mut sub.deferred);
            rng = sub.rng;
            assert!(
                pending.len() < before,
                "FORM-NEW-GROUP recursion failed to make progress"
            );
        }
        Grouping { groups, eliminated }
    }
}

/// One-shot convenience: runs SGB-All over a slice of points.
/// [`AllAlgorithm::Auto`] resolves from the true cardinality here
/// ([`cost::resolve_all`]); results never depend on the resolution — every
/// concrete strategy is bit-identical.
pub fn sgb_all<const D: usize>(points: &[Point<D>], cfg: &SgbAllConfig) -> Grouping {
    let (algorithm, _) = cost::resolve_all(cfg.algorithm, points.len(), D);
    let mut op = SgbAll::new(cfg.clone().algorithm(algorithm));
    for p in points {
        op.push(*p);
    }
    op.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SgbAnyConfig;
    use sgb_geom::Metric;

    const ALGOS: [AllAlgorithm; 4] = [
        AllAlgorithm::AllPairs,
        AllAlgorithm::BoundsChecking,
        AllAlgorithm::Indexed,
        AllAlgorithm::Grid,
    ];

    fn pts(raw: &[[f64; 2]]) -> Vec<Point<2>> {
        raw.iter().map(|&c| Point::new(c)).collect()
    }

    /// Figure 2 of the paper: groups g1 {a1, a2} and g2 {a3, a4}; a5 is
    /// within ε = 3 (L∞) of all four points.
    fn fig2_points() -> Vec<Point<2>> {
        pts(&[
            [1.0, 7.0], // a1
            [2.0, 6.0], // a2
            [6.0, 2.0], // a3
            [7.0, 1.0], // a4
            [4.0, 4.0], // a5 — overlaps both groups
        ])
    }

    #[test]
    fn example1_join_any_yields_3_2() {
        for algo in ALGOS {
            let cfg = SgbAllConfig::new(3.0).metric(Metric::LInf).algorithm(algo);
            let out = sgb_all(&fig2_points(), &cfg);
            assert_eq!(out.sorted_sizes(), vec![3, 2], "{algo:?}");
            assert!(out.eliminated.is_empty());
            out.check_partition(5);
        }
    }

    #[test]
    fn example1_eliminate_yields_2_2() {
        for algo in ALGOS {
            let cfg = SgbAllConfig::new(3.0)
                .metric(Metric::LInf)
                .overlap(OverlapAction::Eliminate)
                .algorithm(algo);
            let out = sgb_all(&fig2_points(), &cfg);
            assert_eq!(out.sorted_sizes(), vec![2, 2], "{algo:?}");
            assert_eq!(out.eliminated, vec![4], "{algo:?}");
            out.check_partition(5);
        }
    }

    #[test]
    fn example1_form_new_group_yields_2_2_1() {
        for algo in ALGOS {
            let cfg = SgbAllConfig::new(3.0)
                .metric(Metric::LInf)
                .overlap(OverlapAction::FormNewGroup)
                .algorithm(algo);
            let out = sgb_all(&fig2_points(), &cfg);
            assert_eq!(out.sorted_sizes(), vec![2, 2, 1], "{algo:?}");
            // a5 ends up alone in the newly formed group.
            assert!(out.groups.iter().any(|g| g == &vec![4]), "{algo:?}");
            out.check_partition(5);
        }
    }

    /// Figure 4 of the paper (ε = 4, L∞): when x arrives,
    /// CandidateGroups = {g2, g3} and OverlapGroups = {g1} via a3.
    fn fig4_points() -> Vec<Point<2>> {
        pts(&[
            [0.0, 10.0], // a1   g1
            [1.0, 9.0],  // a2   g1
            [3.0, 7.0],  // a3   g1 — within 4 of x
            [4.0, 0.0],  // b1   g2
            [5.0, 1.0],  // b2   g2
            [9.0, 7.0],  // c1   g3
            [10.0, 8.0], // c2   g3
            [9.0, 8.0],  // c3   g3
            [16.0, 0.0], // d1   g4
            [17.0, 1.0], // d2   g4
            [6.0, 4.0],  // x
        ])
    }

    #[test]
    fn fig4_eliminate_drops_x_and_a3() {
        for algo in ALGOS {
            let cfg = SgbAllConfig::new(4.0)
                .metric(Metric::LInf)
                .overlap(OverlapAction::Eliminate)
                .algorithm(algo);
            let out = sgb_all(&fig4_points(), &cfg);
            let mut eliminated = out.eliminated.clone();
            eliminated.sort_unstable();
            assert_eq!(eliminated, vec![2, 10], "{algo:?}"); // a3 and x
            assert_eq!(out.sorted_sizes(), vec![3, 2, 2, 2], "{algo:?}");
            out.check_partition(11);
        }
    }

    #[test]
    fn fig4_form_new_group_regroups_x_with_a3() {
        for algo in ALGOS {
            let cfg = SgbAllConfig::new(4.0)
                .metric(Metric::LInf)
                .overlap(OverlapAction::FormNewGroup)
                .algorithm(algo);
            let out = sgb_all(&fig4_points(), &cfg);
            // x and a3 are deferred, then form a group of their own
            // (they are within 4 of each other).
            assert!(
                out.groups.iter().any(|g| {
                    let mut g = g.clone();
                    g.sort_unstable();
                    g == vec![2, 10]
                }),
                "{algo:?}: {:?}",
                out.groups
            );
            assert_eq!(out.sorted_sizes(), vec![3, 2, 2, 2, 2], "{algo:?}");
            out.check_partition(11);
        }
    }

    #[test]
    fn fig4_join_any_keeps_groups_intact() {
        for algo in ALGOS {
            let cfg = SgbAllConfig::new(4.0)
                .metric(Metric::LInf)
                .overlap(OverlapAction::JoinAny)
                .algorithm(algo)
                .seed(99);
            let out = sgb_all(&fig4_points(), &cfg);
            assert_eq!(out.grouped_records(), 11, "{algo:?}");
            // x joined exactly one of g2/g3; g1 keeps a3.
            let sizes = out.sorted_sizes();
            assert!(
                sizes == vec![3, 3, 3, 2] || sizes == vec![4, 3, 2, 2],
                "{algo:?}: {sizes:?}"
            );
            out.check_partition(11);
        }
    }

    #[test]
    fn empty_and_single_input() {
        for algo in ALGOS {
            let cfg = SgbAllConfig::new(1.0).algorithm(algo);
            assert_eq!(sgb_all::<2>(&[], &cfg).num_groups(), 0);
            let one = sgb_all(&pts(&[[5.0, 5.0]]), &cfg);
            assert_eq!(one.groups, vec![vec![0]]);
        }
    }

    #[test]
    fn all_members_pairwise_within_eps_invariant() {
        // Core clique invariant, random cloud, every algorithm and metric.
        let mut state: u64 = 7;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let points: Vec<Point<2>> = (0..300)
            .map(|_| Point::new([next() * 8.0, next() * 8.0]))
            .collect();
        for metric in Metric::ALL {
            for overlap in [
                OverlapAction::JoinAny,
                OverlapAction::Eliminate,
                OverlapAction::FormNewGroup,
            ] {
                for algo in ALGOS {
                    let cfg = SgbAllConfig::new(0.8)
                        .metric(metric)
                        .overlap(overlap)
                        .algorithm(algo);
                    let out = sgb_all(&points, &cfg);
                    out.check_partition(points.len());
                    for g in &out.groups {
                        for i in 0..g.len() {
                            for j in (i + 1)..g.len() {
                                assert!(
                                    metric.within(&points[g[i]], &points[g[j]], 0.8),
                                    "clique violated: {algo:?} {metric:?} {overlap:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn algorithms_agree_exactly() {
        // All three FindCloseGroups strategies must produce identical
        // groupings (same seed ⇒ same JOIN-ANY arbitration).
        let mut state: u64 = 99;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let points: Vec<Point<2>> = (0..400)
            .map(|_| Point::new([next() * 6.0, next() * 6.0]))
            .collect();
        for metric in Metric::ALL {
            for overlap in [
                OverlapAction::JoinAny,
                OverlapAction::Eliminate,
                OverlapAction::FormNewGroup,
            ] {
                let runs: Vec<Grouping> = ALGOS
                    .iter()
                    .map(|&algo| {
                        let cfg = SgbAllConfig::new(0.5)
                            .metric(metric)
                            .overlap(overlap)
                            .algorithm(algo)
                            .seed(1234);
                        sgb_all(&points, &cfg)
                    })
                    .collect();
                for (i, run) in runs.iter().enumerate().skip(1) {
                    assert_eq!(
                        &runs[0], run,
                        "AllPairs vs {:?} {metric:?} {overlap:?}",
                        ALGOS[i]
                    );
                }
            }
        }
    }

    #[test]
    fn conservative_metric_false_positive_is_rejected() {
        // Figure 7b: the corner of the ε-All rectangle passes the rectangle
        // filter but is not within ε of the existing member under the
        // conservative metrics (L1 ball is the diamond, L2 ball the disc).
        let eps = 1.0;
        let a = Point::new([0.0, 0.0]);
        let corner = Point::new([0.95, 0.95]); // L∞ 0.95 ≤ 1, L2 ≈ 1.34, L1 = 1.9
        for algo in ALGOS {
            for metric in [Metric::L1, Metric::L2] {
                let out = sgb_all(
                    &[a, corner],
                    &SgbAllConfig::new(eps).metric(metric).algorithm(algo),
                );
                assert_eq!(out.num_groups(), 2, "{algo:?} must split under {metric}");
            }
            let linf = sgb_all(
                &[a, corner],
                &SgbAllConfig::new(eps).metric(Metric::LInf).algorithm(algo),
            );
            assert_eq!(linf.num_groups(), 1, "{algo:?} must merge under L∞");
        }
    }

    #[test]
    fn l1_separates_what_l2_accepts() {
        // Between the diamond and the disc: Δ = (0.7, 0.6) has δ2 ≈ 0.92 ≤ 1
        // but δ1 = 1.3 > 1, so L1 must split a pair L2 groups.
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([0.7, 0.6]);
        for algo in ALGOS {
            let l2 = sgb_all(
                &[a, b],
                &SgbAllConfig::new(1.0).metric(Metric::L2).algorithm(algo),
            );
            assert_eq!(l2.num_groups(), 1, "{algo:?}");
            let l1 = sgb_all(
                &[a, b],
                &SgbAllConfig::new(1.0).metric(Metric::L1).algorithm(algo),
            );
            assert_eq!(l1.num_groups(), 2, "{algo:?}");
        }
    }

    #[test]
    fn l1_hull_refinement_agrees_with_member_scan() {
        // Force the hull path (threshold 1) and the scan path (threshold
        // MAX) under L1: identical output on a dense cloud.
        let mut state: u64 = 21;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let points: Vec<Point<2>> = (0..250)
            .map(|_| Point::new([next() * 4.0, next() * 4.0]))
            .collect();
        for overlap in [
            OverlapAction::JoinAny,
            OverlapAction::Eliminate,
            OverlapAction::FormNewGroup,
        ] {
            let cfg = |hull_threshold: usize| {
                SgbAllConfig::new(0.9)
                    .metric(Metric::L1)
                    .overlap(overlap)
                    .hull_threshold(hull_threshold)
                    .seed(11)
            };
            let hull = sgb_all(&points, &cfg(1));
            let scan = sgb_all(&points, &cfg(usize::MAX));
            assert_eq!(hull, scan, "{overlap:?}");
        }
    }

    #[test]
    fn join_any_is_deterministic_per_seed() {
        let points = fig2_points();
        let cfg = |seed| {
            SgbAllConfig::new(3.0)
                .metric(Metric::LInf)
                .algorithm(AllAlgorithm::Indexed)
                .seed(seed)
        };
        let a = sgb_all(&points, &cfg(42));
        let b = sgb_all(&points, &cfg(42));
        assert_eq!(a, b);
        // Across many seeds both choices should appear.
        let mut joined_first = false;
        let mut joined_second = false;
        for seed in 0..32 {
            let out = sgb_all(&points, &cfg(seed));
            let sizes = out.sizes();
            if sizes[0] == 3 {
                joined_first = true;
            } else {
                joined_second = true;
            }
        }
        assert!(joined_first && joined_second, "JOIN-ANY must actually vary");
    }

    #[test]
    fn eliminate_shrinks_overlap_groups() {
        // g1 = {p0 (−0.5, 0), p1 (0.5, 0)}; two singleton groups s1, s2.
        // x (1.4, 0) is a candidate of both singletons (ε = 1.6, L∞) and
        // within ε of p1 but not p0 → g1 is an overlap group: x and p1 are
        // both eliminated, p0 survives.
        let points = pts(&[
            [-0.5, 0.0], // p0
            [0.5, 0.0],  // p1
            [3.0, 1.2],  // s1
            [3.0, -1.2], // s2
            [1.4, 0.0],  // x
        ]);
        for algo in ALGOS {
            let cfg = SgbAllConfig::new(1.6)
                .metric(Metric::LInf)
                .overlap(OverlapAction::Eliminate)
                .algorithm(algo);
            let out = sgb_all(&points, &cfg);
            let mut eliminated = out.eliminated.clone();
            eliminated.sort_unstable();
            assert_eq!(eliminated, vec![1, 4], "{algo:?}");
            assert_eq!(out.sorted_sizes(), vec![1, 1, 1], "{algo:?}");
            out.check_partition(5);
        }
    }

    #[test]
    fn form_new_group_multi_round_recursion() {
        // The deferred set itself contains overlapping structure, forcing
        // at least two recursion rounds.
        let points = pts(&[
            [0.0, 0.0],  // g1
            [10.0, 0.0], // g2
            [5.0, 0.0],  // x1: candidate for neither (ε=6 L∞ → within of both!)
            [20.0, 0.0], // g3
            [30.0, 0.0], // g4
            [25.0, 0.0], // x2: within of g3, g4
        ]);
        for algo in ALGOS {
            let cfg = SgbAllConfig::new(6.0)
                .metric(Metric::LInf)
                .overlap(OverlapAction::FormNewGroup)
                .algorithm(algo);
            let out = sgb_all(&points, &cfg);
            out.check_partition(6);
            // x1, x2 deferred; in round 2 they are 20 apart → two singletons.
            assert_eq!(out.sorted_sizes(), vec![1, 1, 1, 1, 1, 1], "{algo:?}");
        }
    }

    #[test]
    fn three_dimensional_grouping() {
        let points: Vec<Point<3>> = vec![
            Point::new([0.0, 0.0, 0.0]),
            Point::new([0.3, 0.3, 0.3]),
            Point::new([0.0, 0.0, 2.0]),
            Point::new([0.3, 0.3, 2.3]),
        ];
        for algo in ALGOS {
            for metric in Metric::ALL {
                let cfg = SgbAllConfig::new(1.0).metric(metric).algorithm(algo);
                let out = sgb_all(&points, &cfg);
                assert_eq!(out.sorted_sizes(), vec![2, 2], "{algo:?} {metric:?}");
            }
        }
    }

    #[test]
    fn auto_resolves_and_matches_every_concrete_algorithm() {
        let mut state: u64 = 0xA07;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let points: Vec<Point<2>> = (0..350)
            .map(|_| Point::new([next() * 6.0, next() * 6.0]))
            .collect();
        // Streaming Auto assumes the scalable regime (group R-tree).
        let op = SgbAll::<2>::new(SgbAllConfig::new(0.5));
        assert_eq!(op.resolved_algorithm(), AllAlgorithm::Indexed);
        for overlap in [
            OverlapAction::JoinAny,
            OverlapAction::Eliminate,
            OverlapAction::FormNewGroup,
        ] {
            let auto = sgb_all(&points, &SgbAllConfig::new(0.5).overlap(overlap).seed(1234));
            for algo in ALGOS {
                let concrete = sgb_all(
                    &points,
                    &SgbAllConfig::new(0.5)
                        .overlap(overlap)
                        .algorithm(algo)
                        .seed(1234),
                );
                assert_eq!(auto, concrete, "{algo:?} {overlap:?}");
            }
        }
    }

    #[test]
    fn sgb_all_groups_are_subsets_of_sgb_any_components() {
        // Every SGB-All clique lives inside one SGB-Any connected component.
        let mut state: u64 = 5;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let points: Vec<Point<2>> = (0..200)
            .map(|_| Point::new([next() * 5.0, next() * 5.0]))
            .collect();
        let eps = 0.7;
        let all = sgb_all(&points, &SgbAllConfig::new(eps));
        let any = crate::sgb_any(&points, &SgbAnyConfig::new(eps));
        let comp = any.assignment(points.len());
        for g in &all.groups {
            let c0 = comp[g[0]].unwrap();
            assert!(g.iter().all(|&r| comp[r] == Some(c0)));
        }
    }
}
