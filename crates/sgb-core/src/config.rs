//! Operator configuration: thresholds, metrics, overlap semantics, and
//! algorithm selection.

use sgb_geom::{Metric, Point};

/// The `ON-OVERLAP` arbitration clause of SGB-All (Section 4.1).
///
/// When a point satisfies the membership criterion of more than one group,
/// one of three actions is taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum OverlapAction {
    /// `JOIN-ANY`: insert the point into one of the overlapping groups,
    /// chosen pseudo-randomly (seeded, for reproducibility).
    #[default]
    JoinAny,
    /// `ELIMINATE`: discard the point; also discard points of existing
    /// groups that fall within ε of it (the overlap set `Oset`).
    Eliminate,
    /// `FORM-NEW-GROUP`: defer the point (and the overlapped points of
    /// existing groups) to a set `S'`, regrouped recursively at the end.
    FormNewGroup,
}

impl OverlapAction {
    /// The SQL keyword used by the paper's grammar.
    pub fn sql_keyword(&self) -> &'static str {
        match self {
            OverlapAction::JoinAny => "JOIN-ANY",
            OverlapAction::Eliminate => "ELIMINATE",
            OverlapAction::FormNewGroup => "FORM-NEW-GROUP",
        }
    }

    /// Parses the SQL keyword (case-insensitive, `-`/`_` interchangeable).
    pub fn from_sql_keyword(word: &str) -> Option<Self> {
        match word.to_ascii_uppercase().replace('_', "-").as_str() {
            "JOIN-ANY" | "JOINANY" => Some(OverlapAction::JoinAny),
            "ELIMINATE" => Some(OverlapAction::Eliminate),
            "FORM-NEW-GROUP" | "FORM-NEW" | "FORMNEWGROUP" => Some(OverlapAction::FormNewGroup),
            _ => None,
        }
    }
}

/// The unified, operator-independent algorithm selector of the
/// [`crate::SgbQuery`] surface.
///
/// Every member of the SGB family offers the same *kinds* of execution
/// path — a plain scan, an R-tree, an ε-grid, and a cost-based default —
/// plus one operator-specific extra (SGB-All's rectangle directory). This
/// enum names each kind once; [`Algorithm::for_all`] /
/// [`Algorithm::for_any`] / [`Algorithm::for_around`] translate to the
/// per-operator execution enums (and reject combinations that do not
/// exist, e.g. `BoundsChecking` for SGB-Any). The reverse [`From`]
/// conversions let resolved per-operator choices report back through one
/// vocabulary — `EXPLAIN`'s `path:` line and
/// [`crate::query::Grouping::resolved_algorithm`] speak this type.
///
/// Selection never affects results: all concrete paths of an operator are
/// proven bit-identical, so the choice only moves *when* the answer
/// arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Cost-based selection among the concrete paths (the default; see
    /// [`crate::cost`]).
    #[default]
    Auto,
    /// Plain scan: all-pairs point comparison (SGB-All/Any) or the brute
    /// center scan (SGB-Around). Wins at small cardinalities where
    /// nothing amortises index construction.
    AllPairs,
    /// SGB-All's dense rectangle directory (Procedure 4). Not applicable
    /// to SGB-Any / SGB-Around.
    BoundsChecking,
    /// R-tree-indexed search: on-the-fly group/point trees for
    /// SGB-All/Any, an STR bulk-loaded center tree for SGB-Around.
    Indexed,
    /// ε-grid search: neighbour-cell probes, no tree descent.
    Grid,
}

impl Algorithm {
    /// Every variant, for sweeps and tests.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Auto,
        Algorithm::AllPairs,
        Algorithm::BoundsChecking,
        Algorithm::Indexed,
        Algorithm::Grid,
    ];

    /// Translates to the SGB-All execution enum (every variant applies).
    #[must_use]
    pub fn for_all(self) -> AllAlgorithm {
        match self {
            Algorithm::Auto => AllAlgorithm::Auto,
            Algorithm::AllPairs => AllAlgorithm::AllPairs,
            Algorithm::BoundsChecking => AllAlgorithm::BoundsChecking,
            Algorithm::Indexed => AllAlgorithm::Indexed,
            Algorithm::Grid => AllAlgorithm::Grid,
        }
    }

    /// Translates to the SGB-Any execution enum; `None` for
    /// [`Algorithm::BoundsChecking`], which only SGB-All implements.
    #[must_use]
    pub fn for_any(self) -> Option<AnyAlgorithm> {
        match self {
            Algorithm::Auto => Some(AnyAlgorithm::Auto),
            Algorithm::AllPairs => Some(AnyAlgorithm::AllPairs),
            Algorithm::BoundsChecking => None,
            Algorithm::Indexed => Some(AnyAlgorithm::Indexed),
            Algorithm::Grid => Some(AnyAlgorithm::Grid),
        }
    }

    /// Translates to the SGB-Around execution enum (`AllPairs` is the
    /// brute center scan); `None` for [`Algorithm::BoundsChecking`].
    #[must_use]
    pub fn for_around(self) -> Option<AroundAlgorithm> {
        match self {
            Algorithm::Auto => Some(AroundAlgorithm::Auto),
            Algorithm::AllPairs => Some(AroundAlgorithm::BruteForce),
            Algorithm::BoundsChecking => None,
            Algorithm::Indexed => Some(AroundAlgorithm::Indexed),
            Algorithm::Grid => Some(AroundAlgorithm::Grid),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The Debug names are the public vocabulary (EXPLAIN pins them).
        write!(f, "{self:?}")
    }
}

impl From<AllAlgorithm> for Algorithm {
    fn from(a: AllAlgorithm) -> Self {
        match a {
            AllAlgorithm::AllPairs => Algorithm::AllPairs,
            AllAlgorithm::BoundsChecking => Algorithm::BoundsChecking,
            AllAlgorithm::Indexed => Algorithm::Indexed,
            AllAlgorithm::Grid => Algorithm::Grid,
            AllAlgorithm::Auto => Algorithm::Auto,
        }
    }
}

impl From<AnyAlgorithm> for Algorithm {
    fn from(a: AnyAlgorithm) -> Self {
        match a {
            AnyAlgorithm::AllPairs => Algorithm::AllPairs,
            AnyAlgorithm::Indexed => Algorithm::Indexed,
            AnyAlgorithm::Grid => Algorithm::Grid,
            AnyAlgorithm::Auto => Algorithm::Auto,
        }
    }
}

impl From<AroundAlgorithm> for Algorithm {
    fn from(a: AroundAlgorithm) -> Self {
        match a {
            AroundAlgorithm::BruteForce => Algorithm::AllPairs,
            AroundAlgorithm::Indexed => Algorithm::Indexed,
            AroundAlgorithm::Grid => Algorithm::Grid,
            AroundAlgorithm::Auto => Algorithm::Auto,
        }
    }
}

/// Algorithm used to realise SGB-All (Section 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum AllAlgorithm {
    /// Naive `FindCloseGroups` (Procedure 2): evaluate the predicate
    /// against every previously processed point. `O(n²)`.
    AllPairs,
    /// Bounds-Checking (Procedure 4): constant-time ε-All rectangle tests
    /// per group, linear scan over groups. `O(n · |G|)`.
    BoundsChecking,
    /// Index Bounds-Checking (Procedure 5): on-the-fly R-tree over group
    /// rectangles, window query per point. `O(n · log |G|)`.
    Indexed,
    /// ε-grid over the live group members: a probe inspects only the
    /// point's own grid cell and its neighbours, mapping the hits back to
    /// their groups — no tree descent, no per-group scan. Expected `O(n)`
    /// for ε-sized groups.
    Grid,
    /// Cost-based selection among the concrete algorithms from the input
    /// cardinality and dimensionality (see [`crate::cost::resolve_all`]).
    /// All concrete paths produce bit-identical groupings, so `Auto` only
    /// affects speed, never results.
    #[default]
    Auto,
}

/// Algorithm used to realise SGB-Any (Section 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum AnyAlgorithm {
    /// Evaluate the predicate against every previously processed point.
    AllPairs,
    /// On-the-fly R-tree over points + Union-Find over groups
    /// (Procedure 8). `O(n log n)`.
    Indexed,
    /// ε-grid over the points + Union-Find over the neighbour-cell hits:
    /// the ε-join at the heart of the operator becomes a constant number
    /// of hash probes per point. Expected `O(n)` for bounded ε-density.
    Grid,
    /// Cost-based selection among the concrete algorithms from the input
    /// cardinality and dimensionality (see [`crate::cost::resolve_any`]).
    /// All concrete paths produce bit-identical groupings, so `Auto` only
    /// affects speed, never results.
    #[default]
    Auto,
}

/// Configuration of the SGB-All operator
/// (`GROUP BY … DISTANCE-TO-ALL [L1|L2|LINF] WITHIN ε ON-OVERLAP …`).
#[derive(Clone, Debug, PartialEq)]
pub struct SgbAllConfig {
    /// Similarity threshold ε of the predicate `δ(a, b) ≤ ε`.
    pub eps: f64,
    /// Distance function δ.
    pub metric: Metric,
    /// Arbitration for points matching several groups.
    pub overlap: OverlapAction,
    /// Search strategy.
    pub algorithm: AllAlgorithm,
    /// Seed for the `JOIN-ANY` pseudo-random choice.
    pub seed: u64,
    /// Member count from which a group's convex hull is cached for the
    /// `L1`/`L2` false-positive refinement (Section 6.4); below it the
    /// exact check scans the members. `usize::MAX` disables the hull
    /// entirely (ablation).
    pub hull_threshold: usize,
    /// Fan-out of the on-the-fly R-tree (`Groups_IX`) used by
    /// [`AllAlgorithm::Indexed`].
    pub rtree_fanout: usize,
}

impl SgbAllConfig {
    /// A configuration with the default metric (`L2`), overlap action
    /// (`JOIN-ANY`), algorithm (`Auto`) and seed.
    #[must_use]
    pub fn new(eps: f64) -> Self {
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "epsilon must be finite and non-negative"
        );
        Self {
            eps,
            metric: Metric::default(),
            overlap: OverlapAction::default(),
            algorithm: AllAlgorithm::default(),
            seed: 0x5EED_u64,
            hull_threshold: 16,
            rtree_fanout: 12,
        }
    }

    /// Sets the distance function.
    #[must_use]
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the `ON-OVERLAP` action.
    #[must_use]
    pub fn overlap(mut self, overlap: OverlapAction) -> Self {
        self.overlap = overlap;
        self
    }

    /// Sets the search algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: AllAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the `JOIN-ANY` randomisation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the convex-hull caching threshold (`usize::MAX` disables the
    /// hull refinement, falling back to member scans).
    #[must_use]
    pub fn hull_threshold(mut self, members: usize) -> Self {
        self.hull_threshold = members.max(1);
        self
    }

    /// Sets the R-tree fan-out of the on-the-fly group index.
    #[must_use]
    pub fn rtree_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout >= 4, "R-tree fan-out must be at least 4");
        self.rtree_fanout = fanout;
        self
    }
}

/// Configuration of the SGB-Any operator
/// (`GROUP BY … DISTANCE-TO-ANY [L1|L2|LINF] WITHIN ε`).
#[derive(Clone, Debug, PartialEq)]
pub struct SgbAnyConfig {
    /// Similarity threshold ε.
    pub eps: f64,
    /// Distance function δ.
    pub metric: Metric,
    /// Search strategy.
    pub algorithm: AnyAlgorithm,
    /// Fan-out of the on-the-fly R-tree (`Points_IX`) used by
    /// [`AnyAlgorithm::Indexed`].
    pub rtree_fanout: usize,
    /// Worker threads for the one-shot grid ε-join (0 = auto, see
    /// [`crate::cost::resolve_threads`]). Only [`AnyAlgorithm::Grid`]
    /// parallelises; the other paths ignore the knob. Never affects
    /// results — the sharded join is bit-identical to the sequential one.
    pub threads: usize,
}

impl SgbAnyConfig {
    /// A configuration with the default metric (`L2`) and algorithm
    /// (`Auto`).
    #[must_use]
    pub fn new(eps: f64) -> Self {
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "epsilon must be finite and non-negative"
        );
        Self {
            eps,
            metric: Metric::default(),
            algorithm: AnyAlgorithm::default(),
            rtree_fanout: 12,
            threads: 0,
        }
    }

    /// Sets the distance function.
    #[must_use]
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the search algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: AnyAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the R-tree fan-out of the on-the-fly point index.
    #[must_use]
    pub fn rtree_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout >= 4, "R-tree fan-out must be at least 4");
        self.rtree_fanout = fanout;
        self
    }

    /// Sets the worker-thread count (0 = auto).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Algorithm used to realise SGB-Around.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum AroundAlgorithm {
    /// Evaluate the distance to every center for every tuple. `O(n · |C|)`.
    BruteForce,
    /// Bulk-load the centers into an R-tree once (sort-tile-recursive
    /// packing), then answer each tuple's nearest-center query against it.
    /// `O(n · log |C|)`.
    Indexed,
    /// Bulk-load the centers into a uniform grid sized for ~1 center per
    /// cell, then answer each tuple with an expanding-ring search.
    /// Expected `O(n)` for well-spread centers.
    Grid,
    /// Cost-based selection among the concrete algorithms from the center
    /// count and dimensionality (see [`crate::cost::resolve_around`] —
    /// calibrated so the operator no longer defaults to a path that loses
    /// below ~1k centers). All concrete paths produce bit-identical
    /// groupings, so `Auto` only affects speed, never results.
    #[default]
    Auto,
}

/// Configuration of the SGB-Around operator
/// (`GROUP BY … AROUND ((cx, cy), …) [L1|L2|LINF] [WITHIN r]`).
///
/// Unlike SGB-All / SGB-Any, the group seeds — the center points — are part
/// of the query, so the configuration is generic over the data dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct SgbAroundConfig<const D: usize> {
    /// The center points. Every tuple is assigned to its nearest center
    /// (ties broken towards the lowest center index).
    pub centers: Vec<Point<D>>,
    /// Distance function δ.
    pub metric: Metric,
    /// Optional maximum radius `r`: a tuple farther than `r` from its
    /// nearest center (canonical predicate `δ(p, c) ≤ r`) joins the
    /// outlier group instead. `None` disables the bound.
    pub max_radius: Option<f64>,
    /// Search strategy.
    pub algorithm: AroundAlgorithm,
    /// Fan-out of the center R-tree used by [`AroundAlgorithm::Indexed`].
    pub rtree_fanout: usize,
    /// Worker threads for the one-shot nearest-center assignment (0 =
    /// auto, see [`crate::cost::resolve_threads`]). Assignment is
    /// independent per tuple, so every concrete algorithm parallelises.
    /// Never affects results.
    pub threads: usize,
}

impl<const D: usize> SgbAroundConfig<D> {
    /// A configuration with the default metric (`L2`), no radius bound and
    /// the `Auto` algorithm. Panics on an empty center list or non-finite
    /// center coordinates (the SQL parser rejects both earlier with proper
    /// errors).
    #[must_use]
    pub fn new(centers: Vec<Point<D>>) -> Self {
        assert!(!centers.is_empty(), "AROUND requires at least one center");
        assert!(
            centers.iter().all(Point::is_finite),
            "centers must have finite coordinates"
        );
        Self {
            centers,
            metric: Metric::default(),
            max_radius: None,
            algorithm: AroundAlgorithm::default(),
            rtree_fanout: 12,
            threads: 0,
        }
    }

    /// Sets the distance function.
    #[must_use]
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the maximum radius (the `WITHIN r` clause).
    #[must_use]
    pub fn max_radius(mut self, r: f64) -> Self {
        assert!(
            r >= 0.0 && r.is_finite(),
            "radius must be finite and non-negative"
        );
        self.max_radius = Some(r);
        self
    }

    /// Sets the search algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: AroundAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the R-tree fan-out of the center index.
    #[must_use]
    pub fn rtree_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout >= 4, "R-tree fan-out must be at least 4");
        self.rtree_fanout = fanout;
        self
    }

    /// Sets the worker-thread count (0 = auto).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_keywords_round_trip() {
        for action in [
            OverlapAction::JoinAny,
            OverlapAction::Eliminate,
            OverlapAction::FormNewGroup,
        ] {
            assert_eq!(
                OverlapAction::from_sql_keyword(action.sql_keyword()),
                Some(action)
            );
        }
        assert_eq!(
            OverlapAction::from_sql_keyword("form_new_group"),
            Some(OverlapAction::FormNewGroup)
        );
        assert_eq!(
            OverlapAction::from_sql_keyword("join-any"),
            Some(OverlapAction::JoinAny)
        );
        assert_eq!(OverlapAction::from_sql_keyword("drop"), None);
    }

    #[test]
    fn builders_set_fields() {
        let cfg = SgbAllConfig::new(0.5)
            .metric(Metric::LInf)
            .overlap(OverlapAction::Eliminate)
            .algorithm(AllAlgorithm::BoundsChecking)
            .seed(7);
        assert_eq!(cfg.eps, 0.5);
        assert_eq!(cfg.metric, Metric::LInf);
        assert_eq!(cfg.overlap, OverlapAction::Eliminate);
        assert_eq!(cfg.algorithm, AllAlgorithm::BoundsChecking);
        assert_eq!(cfg.seed, 7);

        let cfg = SgbAnyConfig::new(1.0)
            .metric(Metric::LInf)
            .algorithm(AnyAlgorithm::AllPairs)
            .threads(3);
        assert_eq!(cfg.metric, Metric::LInf);
        assert_eq!(cfg.algorithm, AnyAlgorithm::AllPairs);
        assert_eq!(cfg.threads, 3);
        assert_eq!(SgbAnyConfig::new(1.0).threads, 0, "auto by default");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn all_config_rejects_nan_eps() {
        let _ = SgbAllConfig::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn any_config_rejects_negative_eps() {
        let _ = SgbAnyConfig::new(-0.1);
    }

    #[test]
    fn around_builder_sets_fields() {
        let cfg = SgbAroundConfig::new(vec![Point::new([0.0, 0.0]), Point::new([1.0, 1.0])])
            .metric(Metric::L1)
            .max_radius(0.5)
            .algorithm(AroundAlgorithm::BruteForce)
            .rtree_fanout(8)
            .threads(2);
        assert_eq!(cfg.centers.len(), 2);
        assert_eq!(cfg.metric, Metric::L1);
        assert_eq!(cfg.max_radius, Some(0.5));
        assert_eq!(cfg.algorithm, AroundAlgorithm::BruteForce);
        assert_eq!(cfg.rtree_fanout, 8);
        assert_eq!(cfg.threads, 2);
        let default = SgbAroundConfig::new(vec![Point::new([0.0, 0.0])]);
        assert_eq!(default.metric, Metric::L2);
        assert_eq!(default.max_radius, None);
        assert_eq!(default.algorithm, AroundAlgorithm::Auto);
        assert_eq!(default.threads, 0, "auto by default");
    }

    #[test]
    #[should_panic(expected = "at least one center")]
    fn around_config_rejects_empty_centers() {
        let _ = SgbAroundConfig::<2>::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn around_config_rejects_non_finite_centers() {
        let _ = SgbAroundConfig::new(vec![Point::new([f64::NAN, 0.0])]);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn around_config_rejects_negative_radius() {
        let _ = SgbAroundConfig::new(vec![Point::new([0.0, 0.0])]).max_radius(-1.0);
    }
}
