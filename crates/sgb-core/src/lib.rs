#![warn(missing_docs)]

//! # Similarity Group-By operators for multi-dimensional data
//!
//! This crate implements the two similarity-aware SQL group-by operators of
//! *"Similarity Group-by Operators for Multi-dimensional Relational Data"*
//! (Tang et al.): **SGB-All** and **SGB-Any**. Both group tuples whose
//! grouping attributes form points in a low-dimensional metric space, using
//! a similarity predicate `δ(a, b) ≤ ε` with δ either the Euclidean (`L2`)
//! or maximum (`L∞`) distance.
//!
//! * [`SgbAll`] (*distance-to-all*) forms **maximal cliques**: every pair of
//!   points in a group is within ε. A point matching several groups is
//!   arbitrated by the [`OverlapAction`] (`JOIN-ANY`, `ELIMINATE`,
//!   `FORM-NEW-GROUP`).
//! * [`SgbAny`] (*distance-to-any*) forms **connected components**: a point
//!   joins a group when it is within ε of at least one member; overlapping
//!   groups merge.
//!
//! Both operators are *streaming*: points are processed in arrival order
//! with filter-refine machinery (ε-All bounding rectangles, an on-the-fly
//! R-tree, convex-hull refinement for `L2`, Union-Find for merges), and
//! several algorithm variants are provided to reproduce the paper's
//! baseline/optimised comparisons.
//!
//! ```
//! use sgb_core::{sgb_all, sgb_any, SgbAllConfig, SgbAnyConfig};
//! use sgb_geom::Point;
//!
//! let points: Vec<Point<2>> = vec![
//!     Point::new([1.0, 1.0]),
//!     Point::new([2.0, 2.0]),
//!     Point::new([3.0, 3.0]),
//!     Point::new([9.0, 9.0]),
//! ];
//! // Cliques of pairwise-near points (ε = 1.5, L2 by default):
//! let all = sgb_all(&points, &SgbAllConfig::new(1.5));
//! assert_eq!(all.sorted_sizes(), vec![2, 1, 1]);
//! // Chain-connected components:
//! let any = sgb_any(&points, &SgbAnyConfig::new(1.5));
//! assert_eq!(any.sorted_sizes(), vec![3, 1]);
//! ```

pub mod aggregate;
pub mod all;
pub mod any;
pub mod config;
pub mod grouping;

pub use aggregate::{aggregate_groups, collect_groups, AggregateFn, GroupAggregates};
pub use all::{sgb_all, SgbAll};
pub use any::{sgb_any, SgbAny};
pub use config::{AllAlgorithm, AnyAlgorithm, OverlapAction, SgbAllConfig, SgbAnyConfig};
pub use grouping::{Grouping, RecordId};

// Re-export the geometry vocabulary so downstream users need one import.
pub use sgb_geom::{Metric, Point, Point2, Point3, Rect};
