#![warn(missing_docs)]

//! # Similarity Group-By operators for multi-dimensional data
//!
//! This crate implements the similarity-aware SQL group-by operator family
//! of *"Similarity Group-by Operators for Multi-dimensional Relational
//! Data"* (Tang et al.) and its companion on order-independent semantics.
//! All of them group tuples whose grouping attributes form points in a
//! low-dimensional metric space under an `L1` / `L2` / `L∞` distance δ.
//!
//! * [`SgbAll`] (*distance-to-all*) forms **maximal cliques**: every pair of
//!   points in a group is within ε. A point matching several groups is
//!   arbitrated by the [`OverlapAction`] (`JOIN-ANY`, `ELIMINATE`,
//!   `FORM-NEW-GROUP`).
//! * [`SgbAny`] (*distance-to-any*) forms **connected components**: a point
//!   joins a group when it is within ε of at least one member; overlapping
//!   groups merge.
//! * [`SgbAround`] (*nearest-center*) assigns every point to the nearest of
//!   a query-supplied set of **center points**, optionally bounded by a
//!   maximum radius with an explicit outlier group. Its grouping is
//!   trivially order-independent.
//!
//! The operators are *streaming*: points are processed in arrival order
//! with filter-refine machinery (ε-All bounding rectangles, an on-the-fly
//! R-tree, convex-hull refinement for `L2`, Union-Find for merges), and
//! several algorithm variants are provided to reproduce the paper's
//! baseline/optimised comparisons.
//!
//! ```
//! use sgb_core::{sgb_all, sgb_any, SgbAllConfig, SgbAnyConfig};
//! use sgb_geom::Point;
//!
//! let points: Vec<Point<2>> = vec![
//!     Point::new([1.0, 1.0]),
//!     Point::new([2.0, 2.0]),
//!     Point::new([3.0, 3.0]),
//!     Point::new([9.0, 9.0]),
//! ];
//! // Cliques of pairwise-near points (ε = 1.5, L2 by default):
//! let all = sgb_all(&points, &SgbAllConfig::new(1.5));
//! assert_eq!(all.sorted_sizes(), vec![2, 1, 1]);
//! // Chain-connected components:
//! let any = sgb_any(&points, &SgbAnyConfig::new(1.5));
//! assert_eq!(any.sorted_sizes(), vec![3, 1]);
//! ```
//!
//! Nearest-center grouping around query-supplied seeds:
//!
//! ```
//! use sgb_core::{sgb_around, SgbAroundConfig};
//! use sgb_geom::Point;
//!
//! let centers = vec![Point::new([1.0, 1.0]), Point::new([9.0, 9.0])];
//! let points: Vec<Point<2>> = vec![
//!     Point::new([1.5, 1.2]),
//!     Point::new([8.5, 9.0]),
//!     Point::new([2.0, 0.5]),
//! ];
//! let around = sgb_around(&points, &SgbAroundConfig::new(centers));
//! assert_eq!(around.groups, vec![vec![0, 2], vec![1]]);
//! ```

pub mod aggregate;
pub mod all;
pub mod any;
pub mod around;
pub mod config;
pub mod cost;
pub mod grouping;

pub use aggregate::{aggregate_groups, collect_groups, AggregateFn, GroupAggregates};
pub use all::{sgb_all, SgbAll};
pub use any::{sgb_any, SgbAny};
pub use around::{sgb_around, AroundGrouping, CenterId, SgbAround};
pub use config::{
    AllAlgorithm, AnyAlgorithm, AroundAlgorithm, OverlapAction, SgbAllConfig, SgbAnyConfig,
    SgbAroundConfig,
};
pub use grouping::{Grouping, RecordId};

// Re-export the geometry vocabulary so downstream users need one import.
pub use sgb_geom::{Metric, Point, Point2, Point3, Rect};
