#![warn(missing_docs)]

//! # Similarity Group-By operators for multi-dimensional data
//!
//! This crate implements the similarity-aware SQL group-by operator family
//! of *"Similarity Group-by Operators for Multi-dimensional Relational
//! Data"* (Tang et al.) and its companion on order-independent semantics.
//! All of them group tuples whose grouping attributes form points in a
//! low-dimensional metric space under an `L1` / `L2` / `L∞` distance δ.
//!
//! The family is queried through **one declarative surface**
//! ([`SgbQuery`]): one constructor per operator, the shared knobs declared
//! once, one unified [`Algorithm`] selector, and one [`query::Grouping`]
//! result that carries member lists, the eliminated set, the radius-bounded
//! outlier set, and the resolved execution path.
//!
//! * [`SgbQuery::all`] (*distance-to-all*) forms **maximal cliques**: every
//!   pair of points in a group is within ε. A point matching several groups
//!   is arbitrated by the [`OverlapAction`] (`JOIN-ANY`, `ELIMINATE`,
//!   `FORM-NEW-GROUP`).
//! * [`SgbQuery::any`] (*distance-to-any*) forms **connected components**:
//!   a point joins a group when it is within ε of at least one member;
//!   overlapping groups merge.
//! * [`SgbQuery::around`] (*nearest-center*) assigns every point to the
//!   nearest of a query-supplied set of **center points**, optionally
//!   bounded by a maximum radius with an explicit outlier set. Its
//!   grouping is trivially order-independent.
//!
//! ```
//! use sgb_core::SgbQuery;
//! use sgb_geom::Point;
//!
//! let points: Vec<Point<2>> = vec![
//!     Point::new([1.0, 1.0]),
//!     Point::new([2.0, 2.0]),
//!     Point::new([3.0, 3.0]),
//!     Point::new([9.0, 9.0]),
//! ];
//! // Cliques of pairwise-near points (ε = 1.5, L2 by default):
//! let all = SgbQuery::all(1.5).run(&points);
//! assert_eq!(all.sorted_sizes(), vec![2, 1, 1]);
//! // Chain-connected components:
//! let any = SgbQuery::any(1.5).run(&points);
//! assert_eq!(any.sorted_sizes(), vec![3, 1]);
//! ```
//!
//! Nearest-center grouping around query-supplied seeds:
//!
//! ```
//! use sgb_core::SgbQuery;
//! use sgb_geom::Point;
//!
//! let centers = vec![Point::new([1.0, 1.0]), Point::new([9.0, 9.0])];
//! let points: Vec<Point<2>> = vec![
//!     Point::new([1.5, 1.2]),
//!     Point::new([8.5, 9.0]),
//!     Point::new([2.0, 0.5]),
//! ];
//! let around = SgbQuery::around(centers).run(&points);
//! assert_eq!(around.groups(), &[vec![0, 2], vec![1]]);
//! ```
//!
//! The operators are *streaming* ([`SgbQuery::stream`]): points are
//! processed in arrival order with filter-refine machinery (ε-All bounding
//! rectangles, an on-the-fly R-tree, a uniform ε-grid, convex-hull
//! refinement for `L2`, Union-Find for merges), and several algorithm
//! variants reproduce the paper's baseline/optimised comparisons — all
//! selectable through the one [`Algorithm`] enum, with `Auto` resolved by
//! the cost model in [`cost`].
//!
//! The per-operator entry points (`sgb_all`/`sgb_any`/`sgb_around` with
//! their `Sgb*Config` types) remain available as the execution layer the
//! query surface lowers into; new code should prefer [`SgbQuery`].

pub mod aggregate;
pub mod all;
pub mod any;
pub mod around;
pub mod cache;
pub mod config;
pub mod cost;
pub mod governor;
pub mod grouping;
pub mod incremental;
pub mod query;

pub use aggregate::{aggregate_groups, collect_groups, AggregateFn, GroupAggregates};
pub use all::{sgb_all, SgbAll};
pub use any::{sgb_any, SgbAny};
pub use around::{sgb_around, AroundGrouping, CenterId, SgbAround};
pub use cache::{CacheStats, SgbCache};
pub use config::{
    Algorithm, AllAlgorithm, AnyAlgorithm, AroundAlgorithm, OverlapAction, SgbAllConfig,
    SgbAnyConfig, SgbAroundConfig,
};
pub use governor::{CancelToken, Pacer, QueryGovernor, SgbError};
pub use grouping::{Grouping, RecordId};
pub use incremental::{MaintainedGrouping, SlotId};
pub use query::{SgbQuery, SgbStream};

// Re-export the geometry vocabulary so downstream users need one import.
pub use sgb_geom::{Metric, Point, Point2, Point3, Rect};

// Re-export the telemetry vocabulary: queries accept a `Telemetry` handle
// and groupings carry the resulting `QueryProfile`.
pub use sgb_telemetry::{Counter, Phase, QueryProfile, Telemetry};
